//! # genedit-telemetry — observability for the GenEdit pipeline
//!
//! The paper's claims are *attributional*: each compounding operator
//! (§3.1.1) must add measurable value, and the ablation study (Table 2)
//! only makes sense if accuracy and cost can be traced to individual
//! operators. This crate is the measurement seam the rest of the
//! workspace hangs those numbers on:
//!
//! - [`Tracer`] / [`Trace`] / [`Span`] — a lightweight span recorder.
//!   One [`Trace`] per generation, one [`Span`] per operator / LLM call /
//!   self-correction attempt, with typed attributes and warning events.
//! - [`MetricsRegistry`] — named counters and histograms (p50/p95/p99)
//!   shareable via `Arc` across harness runs.
//! - [`export`] — JSON / JSONL exporters (and importers, so traces
//!   round-trip) for both traces and metric snapshots.
//! - [`aggregate`] — fold a batch of traces into per-span-name
//!   call-count / latency / LLM-call breakdowns ([`OperatorStats`]).
//! - [`hist`] — bounded log-linear (HDR-style) histograms with sharded
//!   atomic counters; lock-free `observe`, mergeable snapshots,
//!   percentiles within ≤ 1% relative error of exact nearest-rank.
//! - [`clock`] — the injectable `Clock`/`SimulatedClock` time source
//!   every time-windowed component (and `genedit_llm::resilient`) runs
//!   on.
//! - [`window`] / [`slo`] — interval-ring rollups and SLO burn-rate
//!   alerting (multi-window, Google-SRE style) with a deterministic
//!   state machine.
//! - [`recorder`] — the tail-sampling flight recorder: bounded rings of
//!   completed request traces, errors/degraded always retained, dumped
//!   as JSONL on SLO breach.
//! - [`prom`] — Prometheus text exposition of a registry, exemplars
//!   included.
//!
//! Zero dependencies beyond `std::time` and serde.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod aggregate;
pub mod clock;
pub mod export;
pub mod hist;
pub mod metrics;
pub mod prom;
pub mod recorder;
pub mod slo;
pub mod span;
pub mod window;

pub use aggregate::{operator_breakdown, OperatorStats};
pub use clock::{Clock, SimulatedClock, SystemClock};
pub use hist::{Exemplar, HistogramSnapshot, LogLinearHistogram};
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use recorder::{
    FlightRecorder, RecordedRequest, RecorderConfig, RecorderStats, RequestVerdict,
};
pub use slo::{AlertState, AlertTransition, BurnRateRule, SloConfig, SloReport, SloTracker};
pub use span::{AttrValue, Span, SpanGuard, Trace, Tracer};
pub use window::{IntervalRing, WindowCounts};

/// Canonical span names. Everything that records or aggregates spans goes
/// through these constants so the taxonomy stays greppable.
pub mod names {
    /// Root span of one `GenEditPipeline::generate` call.
    pub const GENERATE: &str = "pipeline.generate";
    /// Operator 1: canonical-form reformulation.
    pub const REFORMULATE: &str = "operator.reformulate";
    /// Operator 2: intent classification.
    pub const INTENT: &str = "operator.intent";
    /// Operator 3: example selection.
    pub const EXAMPLES: &str = "operator.examples";
    /// Operator 4: instruction selection (context expansion).
    pub const INSTRUCTIONS: &str = "operator.instructions";
    /// Operator 5: schema linking + re-rank filter.
    pub const SCHEMA_LINKING: &str = "operator.schema_linking";
    /// CoT plan generation.
    pub const PLAN: &str = "plan.generate";
    /// One generation round (attempt 1 = no self-correction yet).
    pub const SQL_ATTEMPT: &str = "sql.attempt";
    /// Parse + execute of one candidate during validation.
    pub const VALIDATE: &str = "sql.validate";
    /// One `LanguageModel::complete` call (recorded by `TracedModel`).
    pub const LLM_COMPLETE: &str = "llm.complete";
    /// One backoff between failed `llm.complete` attempts (recorded by
    /// `ResilientModel`).
    pub const LLM_RETRY: &str = "llm.retry";
    /// Feedback operator 1: Generate Targets (§4.1).
    pub const FEEDBACK_TARGETS: &str = "feedback.generate_targets";
    /// Feedback operator 2: Expand Feedback.
    pub const FEEDBACK_EXPAND: &str = "feedback.expand_feedback";
    /// Feedback operator 3: Planning of Edits.
    pub const FEEDBACK_PLAN: &str = "feedback.plan_edits";
    /// Feedback operator 4: Generate Edits.
    pub const FEEDBACK_EDITS: &str = "feedback.generate_edits";
    /// Knowledge-set pre-processing (§3.2): one span per phase.
    pub const PREPROCESS: &str = "knowledge.preprocess";
    /// Durable-store crash recovery (snapshot load + journal replay).
    pub const STORE_RECOVER: &str = "store.recover";
    /// Durable-store compaction (snapshot write + journal reset).
    pub const STORE_COMPACT: &str = "store.compact";
    /// One journaled merge of a staged batch into the durable store.
    pub const STORE_COMMIT: &str = "store.commit";
    /// One request's residency in the serving runtime (queue + execute).
    pub const SERVE_REQUEST: &str = "serve.request";
    /// One shadow-paged flush of a tenant's pages after a durable commit.
    pub const STORE_PAGE_FLUSH: &str = "store.page.flush";
    /// One cold-tenant page-in: WAL-validated page load + index build.
    pub const SERVE_TENANT_PAGE_IN: &str = "serve.tenant.page_in";

    // Buffer-pool counters/gauges (see docs/RUNBOOK.md for semantics).
    /// Counter: page requests served from a resident frame.
    pub const POOL_HIT: &str = "store.pool.hit";
    /// Counter: page requests that had to load from disk.
    pub const POOL_MISS: &str = "store.pool.miss";
    /// Counter: unpinned frames evicted to stay under the budget.
    pub const POOL_EVICTIONS: &str = "store.pool.evictions";
    /// Counter: pins granted past the budget because every frame was
    /// pinned (transient overcommit; sustained growth means the budget is
    /// too small for the working set).
    pub const POOL_OVERCOMMITS: &str = "store.pool.overcommits";
    /// Gauge: bytes of page data currently resident in the pool.
    pub const POOL_RESIDENT_BYTES: &str = "store.pool.resident_bytes";
    /// Gauge: frames currently pinned (readers mid-flight).
    pub const POOL_PINNED: &str = "store.pool.pinned";
    /// Counter: pages read and checksum-verified from disk.
    pub const PAGE_READS: &str = "store.page.reads";
    /// Counter: sealed pages written to disk.
    pub const PAGE_WRITES: &str = "store.page.writes";
    /// Counter: pages rejected by checksum/format validation (torn or
    /// corrupt after a crash — each one triggers a WAL rebuild).
    pub const PAGE_CHECKSUM_FAILURES: &str = "store.page.checksum_failures";
    /// Counter: tenant page files rebuilt from the WAL.
    pub const PAGE_REBUILDS: &str = "store.page.rebuilds";
}

/// Render a trace as an indented tree with durations and attributes —
/// the human-readable view of what [`export::trace_to_json`] emits.
pub fn render_trace(trace: &Trace) -> String {
    fn render_span(span: &Span, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!(
            "{indent}{} [{:.3}ms]",
            span.name,
            span.duration.as_secs_f64() * 1e3
        ));
        if !span.attrs.is_empty() {
            let attrs: Vec<String> = span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            out.push_str(&format!("  {{{}}}", attrs.join(", ")));
        }
        out.push('\n');
        for child in &span.children {
            render_span(child, depth + 1, out);
        }
    }
    let mut out = format!("trace: {}\n", trace.name);
    for span in &trace.spans {
        render_span(span, 1, &mut out);
    }
    for w in &trace.warnings {
        out.push_str(&format!("  warning: {w}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_shows_tree_attrs_and_warnings() {
        let tracer = Tracer::new("t");
        {
            let outer = tracer.span(names::GENERATE);
            outer.attr("question", "q");
            let inner = tracer.span(names::REFORMULATE);
            inner.attr("chars", 12usize);
            tracer.warning("fell back");
        }
        let trace = tracer.finish();
        let text = render_trace(&trace);
        assert!(text.contains("pipeline.generate"));
        assert!(text.contains("  operator.reformulate"), "{text}");
        assert!(text.contains("chars=12"));
        assert!(text.contains("warning: fell back"));
    }
}
