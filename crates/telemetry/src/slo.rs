//! SLO definitions and Google-SRE-style multi-window burn-rate alerts.
//!
//! An SLO says "at least `objective` of requests succeed within the
//! latency threshold". The remaining `1 − objective` is the **error
//! budget**; the **burn rate** of a window is how many times faster than
//! budget-neutral the service is consuming it
//! (`bad_fraction / (1 − objective)` — burn 1.0 exhausts the budget
//! exactly at the SLO period's end). A [`BurnRateRule`] pairs a long
//! window (confidence: is this sustained?) with a short window
//! (reset speed: has it stopped?) and fires only when **both** exceed the
//! rule's factor — the multi-window multi-burn-rate recipe from the
//! Google SRE workbook, which is what keeps a brief latency blip from
//! paging anyone while a sustained burn still alerts in minutes.
//!
//! [`SloTracker`] feeds request outcomes into an [`IntervalRing`] and
//! runs a tiny alert state machine (`Ok ⇄ Firing`). All time comes from
//! an injected [`Clock`], so breach schedules replay deterministically
//! under a `SimulatedClock` — the `obs_sweep` gate depends on that.

use crate::clock::Clock;
use crate::window::{IntervalRing, WindowCounts};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// One multi-window burn-rate alerting rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRateRule {
    /// Long window: evidence the burn is sustained.
    pub long: Duration,
    /// Short window: evidence the burn is still happening.
    pub short: Duration,
    /// Fire when both windows burn at ≥ this multiple of budget-neutral.
    pub factor: f64,
}

/// An SLO over one request stream: a success objective and the latency
/// bound a request must meet to count as good.
#[derive(Debug, Clone, PartialEq)]
pub struct SloConfig {
    /// Human name, used in alerts and dumps (e.g. `"serve.request"`).
    pub name: String,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub objective: f64,
    /// A request slower than this is bad even if it succeeded.
    pub latency_threshold_ms: f64,
    /// Windows with fewer events than this never fire (cold-start and
    /// trickle-traffic guard).
    pub min_samples: u64,
    /// Burn-rate rules, checked independently; any may fire the alert.
    pub rules: Vec<BurnRateRule>,
}

impl SloConfig {
    /// A conventional two-rule page config scaled to short benchmarks:
    /// fast-burn (factor 14.4) over 60s/5s, slow-burn (factor 6) over
    /// 300s/30s.
    pub fn default_rules(name: &str, objective: f64, latency_threshold_ms: f64) -> SloConfig {
        SloConfig {
            name: name.to_string(),
            objective,
            latency_threshold_ms,
            min_samples: 10,
            rules: vec![
                BurnRateRule {
                    long: Duration::from_secs(60),
                    short: Duration::from_secs(5),
                    factor: 14.4,
                },
                BurnRateRule {
                    long: Duration::from_secs(300),
                    short: Duration::from_secs(30),
                    factor: 6.0,
                },
            ],
        }
    }

    /// Error budget: the tolerated bad fraction.
    pub fn error_budget(&self) -> f64 {
        (1.0 - self.objective).max(1e-9)
    }
}

/// Burn-rate evaluation of one rule at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleBurn {
    /// Burn rate over the rule's long window.
    pub long_burn: f64,
    /// Burn rate over the rule's short window.
    pub short_burn: f64,
    /// Whether this rule's condition held (both ≥ factor, enough
    /// samples).
    pub firing: bool,
}

/// Alert state machine states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Burn within budget (or insufficient evidence).
    Ok,
    /// At least one rule fired and no short window has cooled off yet.
    Firing,
}

/// A state-machine transition produced by [`SloTracker::evaluate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertTransition {
    /// `Ok → Firing`: some rule's long *and* short windows both burn
    /// above its factor.
    Fired,
    /// `Firing → Ok`: every rule's short window dropped below its
    /// factor.
    Resolved,
}

/// Point-in-time SLO evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The SLO's name.
    pub name: String,
    /// Alert state after this evaluation.
    pub state: AlertState,
    /// Transition taken by this evaluation, if any.
    pub transition: Option<AlertTransition>,
    /// Per-rule burn rates, in config order.
    pub rules: Vec<RuleBurn>,
    /// Counts over the longest configured window.
    pub window: WindowCounts,
}

/// Tracks one SLO: ingests request outcomes, answers burn-rate queries,
/// and steps the alert state machine.
pub struct SloTracker {
    config: SloConfig,
    clock: Arc<dyn Clock>,
    ring: IntervalRing,
    state: Mutex<AlertState>,
}

impl SloTracker {
    /// Tracker whose interval ring is sized to cover the longest rule
    /// window at a resolution fine enough for the shortest.
    pub fn new(config: SloConfig, clock: Arc<dyn Clock>) -> SloTracker {
        let longest = config
            .rules
            .iter()
            .map(|r| r.long)
            .max()
            .unwrap_or(Duration::from_secs(60));
        let shortest = config
            .rules
            .iter()
            .map(|r| r.short)
            .min()
            .unwrap_or(Duration::from_secs(5));
        // ≥ 5 slots across the shortest window keeps its rollup within
        // 20% time-quantization of the nominal width.
        let slot = (shortest / 5).max(Duration::from_millis(10));
        let slots = (longest.as_nanos().div_ceil(slot.as_nanos().max(1)) as usize + 1).max(2);
        SloTracker {
            config,
            clock,
            ring: IntervalRing::new(slot, slots),
            state: Mutex::new(AlertState::Ok),
        }
    }

    /// The SLO definition this tracker enforces.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Ingest one finished request. Bad = errored, or slower than the
    /// latency threshold.
    pub fn record(&self, latency_ms: f64, error: bool) {
        let bad = error || latency_ms > self.config.latency_threshold_ms;
        self.ring.record(self.clock.now(), bad);
    }

    /// Whether the alert is currently firing.
    pub fn is_firing(&self) -> bool {
        *self.lock_state() == AlertState::Firing
    }

    fn lock_state(&self) -> MutexGuard<'_, AlertState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn burn(&self, counts: WindowCounts) -> f64 {
        if counts.total < self.config.min_samples {
            return 0.0;
        }
        counts.bad_fraction() / self.config.error_budget()
    }

    /// Evaluate every rule at the current clock time and step the alert
    /// state machine.
    pub fn evaluate(&self) -> SloReport {
        let now = self.clock.now();
        let mut rules = Vec::with_capacity(self.config.rules.len());
        let mut any_firing = false;
        let mut any_short_hot = false;
        let mut longest = Duration::ZERO;
        for rule in &self.config.rules {
            let long_burn = self.burn(self.ring.rollup(now, rule.long));
            let short_burn = self.burn(self.ring.rollup(now, rule.short));
            let firing = long_burn >= rule.factor && short_burn >= rule.factor;
            any_firing |= firing;
            any_short_hot |= short_burn >= rule.factor;
            longest = longest.max(rule.long);
            rules.push(RuleBurn {
                long_burn,
                short_burn,
                firing,
            });
        }
        let mut state = self.lock_state();
        let transition = match (*state, any_firing, any_short_hot) {
            (AlertState::Ok, true, _) => {
                *state = AlertState::Firing;
                Some(AlertTransition::Fired)
            }
            // Resolve only once every short window cools: the long
            // windows stay hot for a while after a burst, and that must
            // not re-page.
            (AlertState::Firing, false, false) => {
                *state = AlertState::Ok;
                Some(AlertTransition::Resolved)
            }
            _ => None,
        };
        SloReport {
            name: self.config.name.clone(),
            state: *state,
            transition,
            rules,
            window: self.ring.rollup(now, longest),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::SimulatedClock;

    fn tracker(clock: Arc<SimulatedClock>) -> SloTracker {
        // 99% objective (1% budget), 100ms latency bound, one rule:
        // factor 10 over 60s/5s windows.
        SloTracker::new(
            SloConfig {
                name: "test".into(),
                objective: 0.99,
                latency_threshold_ms: 100.0,
                min_samples: 10,
                rules: vec![BurnRateRule {
                    long: Duration::from_secs(60),
                    short: Duration::from_secs(5),
                    factor: 10.0,
                }],
            },
            clock,
        )
    }

    fn drive(t: &SloTracker, clock: &SimulatedClock, secs: u64, per_sec: u64, bad_fraction: f64) {
        for _ in 0..secs {
            for i in 0..per_sec {
                let bad = (i as f64) < bad_fraction * per_sec as f64;
                t.record(if bad { 500.0 } else { 10.0 }, false);
            }
            clock.advance(Duration::from_secs(1));
        }
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let clock = Arc::new(SimulatedClock::new());
        let t = tracker(Arc::clone(&clock));
        drive(&t, &clock, 120, 20, 0.0);
        let report = t.evaluate();
        assert_eq!(report.state, AlertState::Ok);
        assert!(report.transition.is_none());
        assert!(report.rules[0].long_burn < 1.0);
    }

    #[test]
    fn sustained_burn_fires_then_resolves_after_recovery() {
        let clock = Arc::new(SimulatedClock::new());
        let t = tracker(Arc::clone(&clock));
        // Warm up healthy, then burn 50% bad (burn rate 50× budget).
        drive(&t, &clock, 60, 20, 0.0);
        drive(&t, &clock, 30, 20, 0.5);
        let report = t.evaluate();
        assert_eq!(report.state, AlertState::Firing);
        assert_eq!(report.transition, Some(AlertTransition::Fired));
        assert!(report.rules[0].firing);
        assert!(report.rules[0].short_burn >= 10.0);
        // Still firing while the burn continues — no duplicate event.
        drive(&t, &clock, 5, 20, 0.5);
        assert_eq!(t.evaluate().transition, None);
        assert!(t.is_firing());
        // Recovery: short window cools quickly even though the long
        // window still remembers the burst.
        drive(&t, &clock, 10, 20, 0.0);
        let report = t.evaluate();
        assert_eq!(report.transition, Some(AlertTransition::Resolved));
        assert_eq!(report.state, AlertState::Ok);
    }

    #[test]
    fn slow_requests_count_against_the_budget() {
        let clock = Arc::new(SimulatedClock::new());
        let t = tracker(Arc::clone(&clock));
        for _ in 0..100 {
            t.record(5_000.0, false); // no error, but way over 100ms
        }
        let report = t.evaluate();
        assert!((report.window.bad_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(report.state, AlertState::Firing);
    }

    #[test]
    fn min_samples_suppresses_trickle_alerts() {
        let clock = Arc::new(SimulatedClock::new());
        let t = tracker(Arc::clone(&clock));
        // 5 total errors < min_samples 10: burn reads 0, no alert.
        for _ in 0..5 {
            t.record(10.0, true);
        }
        let report = t.evaluate();
        assert_eq!(report.state, AlertState::Ok);
        assert_eq!(report.rules[0].long_burn, 0.0);
    }

    #[test]
    fn schedule_is_deterministic_under_simulated_clock() {
        let run = || {
            let clock = Arc::new(SimulatedClock::new());
            let t = tracker(Arc::clone(&clock));
            let mut transitions = Vec::new();
            for step in 0..200u64 {
                let bad = (60..90).contains(&step);
                for i in 0..20 {
                    t.record(if bad && i < 10 { 900.0 } else { 5.0 }, false);
                }
                clock.advance(Duration::from_secs(1));
                if let Some(tr) = t.evaluate().transition {
                    transitions.push((step, tr));
                }
            }
            transitions
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2, "exactly one fire + one resolve: {a:?}");
        assert_eq!(a[0].1, AlertTransition::Fired);
        assert_eq!(a[1].1, AlertTransition::Resolved);
        assert!(a[0].0 >= 60 && a[0].0 < 90);
        assert!(a[1].0 >= 90);
    }

    #[test]
    fn default_rules_shape() {
        let config = SloConfig::default_rules("serve.request", 0.99, 250.0);
        assert_eq!(config.rules.len(), 2);
        assert!((config.error_budget() - 0.01).abs() < 1e-12);
        assert!(config.rules[0].factor > config.rules[1].factor);
    }
}
