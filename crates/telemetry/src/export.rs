//! JSON / JSONL exporters (and importers) for traces and metric
//! snapshots. JSONL is the batch format: one trace per line, so harness
//! runs can stream thousands of generations into a single file that
//! ordinary line-oriented tooling can slice.

use crate::metrics::MetricsSnapshot;
use crate::span::Trace;
use serde::{Deserialize, Serialize};

/// Serialization of the in-crate telemetry types cannot fail, but this
/// crate denies `unwrap`/`expect` outside tests — degrade to a JSON
/// `null` rather than panic inside instrumentation.
fn to_json_or_null<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "null".to_string())
}

/// One trace as a JSON object.
pub fn trace_to_json(trace: &Trace) -> String {
    to_json_or_null(trace)
}

/// One trace as indented JSON, for human inspection.
pub fn trace_to_json_pretty(trace: &Trace) -> String {
    serde_json::to_string_pretty(trace).unwrap_or_else(|_| "null".to_string())
}

/// Parse a trace back from [`trace_to_json`] output.
pub fn trace_from_json(json: &str) -> Result<Trace, serde_json::Error> {
    serde_json::from_str(json)
}

/// A metrics snapshot as a JSON object.
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> String {
    serde_json::to_string_pretty(snapshot).unwrap_or_else(|_| "null".to_string())
}

/// Serialize items one-JSON-object-per-line.
pub fn to_jsonl<T: Serialize>(items: &[T]) -> String {
    let mut out = String::new();
    for item in items {
        out.push_str(&to_json_or_null(item));
        out.push('\n');
    }
    out
}

/// Parse a JSONL document produced by [`to_jsonl`]. Blank lines are
/// skipped; any malformed line is an error.
pub fn from_jsonl<T: Deserialize>(jsonl: &str) -> Result<Vec<T>, serde_json::Error> {
    jsonl
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// Traces as JSONL, one per line.
pub fn traces_to_jsonl(traces: &[Trace]) -> String {
    to_jsonl(traces)
}

/// Parse traces back from [`traces_to_jsonl`] output.
pub fn traces_from_jsonl(jsonl: &str) -> Result<Vec<Trace>, serde_json::Error> {
    from_jsonl(jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample_trace(tag: &str) -> Trace {
        let tracer = Tracer::new(tag);
        {
            let root = tracer.span("root");
            root.attr("q", "question")
                .attr("n", 3usize)
                .attr("x", 0.5)
                .attr("ok", true);
            tracer.span("child").finish();
            tracer.warning("careful");
        }
        tracer.finish()
    }

    #[test]
    fn json_round_trips() {
        let trace = sample_trace("t");
        let json = trace_to_json(&trace);
        let back = trace_from_json(&json).unwrap();
        assert_eq!(trace, back);
        let pretty = trace_to_json_pretty(&trace);
        assert_eq!(trace_from_json(&pretty).unwrap(), trace);
    }

    #[test]
    fn jsonl_round_trips_multiple_traces() {
        let traces = vec![sample_trace("a"), sample_trace("b"), sample_trace("c")];
        let jsonl = traces_to_jsonl(&traces);
        assert_eq!(jsonl.trim().lines().count(), 3);
        let back = traces_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, traces);
        // Blank lines are tolerated.
        let padded = format!("\n{jsonl}\n\n");
        assert_eq!(traces_from_jsonl(&padded).unwrap(), traces);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(traces_from_jsonl("{not json}").is_err());
    }

    #[test]
    fn snapshot_serializes() {
        let m = crate::MetricsRegistry::new();
        m.incr("c", 2);
        m.observe("h", 1.5);
        let json = snapshot_to_json(&m.snapshot());
        assert!(json.contains("\"c\""));
        assert!(json.contains("p95"));
    }
}
