//! Tail-sampling flight recorder: a bounded ring of recently completed
//! request traces, biased toward the requests worth a postmortem.
//!
//! Head sampling (decide at admission) throws away exactly the traces
//! you want when p99 blows up. The [`FlightRecorder`] decides at
//! **completion**, when the verdict and latency are known:
//!
//! - **Interesting** requests — errored, degraded, cancelled, or slower
//!   than the latency threshold — are *always* kept, in their own ring,
//!   so a flood of healthy traffic can never evict the evidence.
//! - **Normal** requests are kept probabilistically (seeded FNV-1a hash
//!   of the request ID, so a given ID's fate is deterministic and
//!   replayable) into a second ring, as baseline context.
//!
//! Both rings are bounded, so memory is fixed no matter the traffic.
//! On an SLO breach the serving layer calls [`FlightRecorder::dump_jsonl`]
//! and writes the result next to its metrics — each line a
//! [`RecordedRequest`] whose `request_id` joins against metric exemplars
//! and span attributes (`trace_report --recorder` renders these).

use crate::export::to_jsonl;
use crate::span::Trace;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// Final classification of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestVerdict {
    /// Completed normally.
    Ok,
    /// Completed on a degradation path (operator fallback, etc.).
    Degraded,
    /// Failed outright.
    Error,
    /// Cancelled before completion (client gone, shed, timeout).
    Cancelled,
    /// The worker thread panicked mid-request; the serving layer caught
    /// the unwind, resolved the ticket, and retired the worker. Always
    /// retained: a panic is the single most postmortem-worthy verdict.
    Panicked,
}

/// One completed request as the flight recorder keeps it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecordedRequest {
    /// The request ID assigned at serve admission.
    pub request_id: String,
    /// Final classification.
    pub verdict: RequestVerdict,
    /// End-to-end latency, milliseconds.
    pub latency_ms: f64,
    /// The request's full span trace.
    pub trace: Trace,
}

impl RecordedRequest {
    /// Whether this request is unconditionally retained.
    pub fn is_interesting(&self, latency_threshold_ms: f64) -> bool {
        self.verdict != RequestVerdict::Ok || self.latency_ms > latency_threshold_ms
    }
}

/// Flight-recorder policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Ring capacity for interesting (error/degraded/cancelled/slow)
    /// requests.
    pub interesting_capacity: usize,
    /// Ring capacity for sampled-in normal requests.
    pub normal_capacity: usize,
    /// Latency above which an otherwise-Ok request counts interesting.
    pub latency_threshold_ms: f64,
    /// Keep roughly one in this many normal requests (0 or 1 keeps all).
    pub keep_normal_one_in: u64,
    /// Seed for the deterministic sampling hash.
    pub seed: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            interesting_capacity: 256,
            normal_capacity: 64,
            latency_threshold_ms: 1_000.0,
            keep_normal_one_in: 10,
            seed: 0,
        }
    }
}

/// Retention accounting, reported alongside dumps and asserted by the
/// `obs_sweep` gate (`evicted_interesting == 0` under the sweep's
/// sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Requests offered to the recorder.
    pub seen: u64,
    /// Of those, classified interesting.
    pub seen_interesting: u64,
    /// Normal requests sampled in.
    pub kept_normal: u64,
    /// Normal requests sampled out (never stored).
    pub sampled_out: u64,
    /// Interesting requests evicted because their ring was full.
    pub evicted_interesting: u64,
    /// Normal requests evicted by ring rotation.
    pub evicted_normal: u64,
}

struct Rings {
    interesting: VecDeque<RecordedRequest>,
    normal: VecDeque<RecordedRequest>,
    stats: RecorderStats,
}

/// Bounded tail-sampling store of completed request traces.
pub struct FlightRecorder {
    config: RecorderConfig,
    rings: Mutex<Rings>,
}

/// Seeded FNV-1a over the request ID: cheap, dependency-free, and
/// deterministic, so sampling decisions replay.
fn fnv1a(seed: u64, s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x0100_0000_01b3);
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

impl FlightRecorder {
    /// Recorder with the given policy. Capacities are clamped up to 1.
    pub fn new(config: RecorderConfig) -> FlightRecorder {
        FlightRecorder {
            config,
            rings: Mutex::new(Rings {
                interesting: VecDeque::new(),
                normal: VecDeque::new(),
                stats: RecorderStats::default(),
            }),
        }
    }

    /// The policy this recorder runs.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, Rings> {
        self.rings
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Offer one completed request. Interesting requests are always
    /// stored; normal ones pass the deterministic sampler first.
    pub fn record(&self, request: RecordedRequest) {
        let interesting = request.is_interesting(self.config.latency_threshold_ms);
        let mut rings = self.lock();
        rings.stats.seen += 1;
        if interesting {
            rings.stats.seen_interesting += 1;
            if rings.interesting.len() >= self.config.interesting_capacity.max(1) {
                rings.interesting.pop_front();
                rings.stats.evicted_interesting += 1;
            }
            rings.interesting.push_back(request);
            return;
        }
        let one_in = self.config.keep_normal_one_in.max(1);
        if !fnv1a(self.config.seed, &request.request_id).is_multiple_of(one_in) {
            rings.stats.sampled_out += 1;
            return;
        }
        rings.stats.kept_normal += 1;
        if rings.normal.len() >= self.config.normal_capacity.max(1) {
            rings.normal.pop_front();
            rings.stats.evicted_normal += 1;
        }
        rings.normal.push_back(request);
    }

    /// Retention accounting so far.
    pub fn stats(&self) -> RecorderStats {
        self.lock().stats
    }

    /// Currently retained requests: interesting first (oldest→newest),
    /// then sampled normals.
    pub fn contents(&self) -> Vec<RecordedRequest> {
        let rings = self.lock();
        rings
            .interesting
            .iter()
            .chain(rings.normal.iter())
            .cloned()
            .collect()
    }

    /// Requests currently held (both rings).
    pub fn len(&self) -> usize {
        let rings = self.lock();
        rings.interesting.len() + rings.normal.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize the current contents as JSONL, one [`RecordedRequest`]
    /// per line — the postmortem artifact dumped on SLO breach.
    pub fn dump_jsonl(&self) -> String {
        to_jsonl(&self.contents())
    }

    /// Drop everything retained (stats are kept).
    pub fn clear(&self) {
        let mut rings = self.lock();
        rings.interesting.clear();
        rings.normal.clear();
    }
}

/// Parse a flight-recorder JSONL dump back into records
/// (`trace_report --recorder` uses this).
pub fn dump_from_jsonl(jsonl: &str) -> Result<Vec<RecordedRequest>, serde_json::Error> {
    crate::export::from_jsonl(jsonl)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: &str, verdict: RequestVerdict, latency_ms: f64) -> RecordedRequest {
        RecordedRequest {
            request_id: id.to_string(),
            verdict,
            latency_ms,
            trace: Trace::empty(id),
        }
    }

    fn config() -> RecorderConfig {
        RecorderConfig {
            interesting_capacity: 8,
            normal_capacity: 4,
            latency_threshold_ms: 100.0,
            keep_normal_one_in: 4,
            seed: 42,
        }
    }

    #[test]
    fn interesting_requests_survive_normal_floods() {
        let rec = FlightRecorder::new(config());
        rec.record(request("req-err", RequestVerdict::Error, 10.0));
        rec.record(request("req-deg", RequestVerdict::Degraded, 10.0));
        rec.record(request("req-slow", RequestVerdict::Ok, 500.0));
        rec.record(request("req-cancel", RequestVerdict::Cancelled, 1.0));
        for i in 0..10_000 {
            rec.record(request(&format!("req-{i:08x}"), RequestVerdict::Ok, 5.0));
        }
        let stats = rec.stats();
        assert_eq!(stats.evicted_interesting, 0);
        assert_eq!(stats.seen_interesting, 4);
        let kept: Vec<String> = rec
            .contents()
            .iter()
            .filter(|r| r.is_interesting(100.0))
            .map(|r| r.request_id.clone())
            .collect();
        assert_eq!(kept, vec!["req-err", "req-deg", "req-slow", "req-cancel"]);
        // Memory stayed bounded.
        assert!(rec.len() <= 8 + 4);
    }

    #[test]
    fn interesting_ring_is_bounded_and_counts_evictions() {
        let rec = FlightRecorder::new(config());
        for i in 0..20 {
            rec.record(request(&format!("e{i}"), RequestVerdict::Error, 1.0));
        }
        assert_eq!(rec.stats().evicted_interesting, 12);
        let contents = rec.contents();
        assert_eq!(contents.len(), 8);
        assert_eq!(contents[0].request_id, "e12"); // oldest evicted first
    }

    #[test]
    fn normal_sampling_is_deterministic_and_roughly_one_in_n() {
        let run = || {
            let rec = FlightRecorder::new(config());
            for i in 0..1000 {
                rec.record(request(&format!("req-{i:08x}"), RequestVerdict::Ok, 5.0));
            }
            (
                rec.stats(),
                rec.contents()
                    .iter()
                    .map(|r| r.request_id.clone())
                    .collect::<Vec<_>>(),
            )
        };
        let (stats_a, ids_a) = run();
        let (stats_b, ids_b) = run();
        assert_eq!(stats_a, stats_b);
        assert_eq!(ids_a, ids_b);
        // ~1 in 4 kept: loose bounds, exact value fixed by the seed.
        assert!(
            stats_a.kept_normal > 150 && stats_a.kept_normal < 350,
            "{stats_a:?}"
        );
        assert_eq!(stats_a.kept_normal + stats_a.sampled_out, 1000);
    }

    #[test]
    fn keep_one_in_one_keeps_everything() {
        let mut config = config();
        config.keep_normal_one_in = 1;
        let rec = FlightRecorder::new(config);
        for i in 0..3 {
            rec.record(request(&format!("n{i}"), RequestVerdict::Ok, 1.0));
        }
        assert_eq!(rec.stats().kept_normal, 3);
        assert_eq!(rec.stats().sampled_out, 0);
    }

    #[test]
    fn dump_round_trips_through_jsonl() {
        let rec = FlightRecorder::new(config());
        rec.record(request("req-err", RequestVerdict::Error, 12.5));
        rec.record(request("req-ok", RequestVerdict::Ok, 1.0));
        let dump = rec.dump_jsonl();
        let back = dump_from_jsonl(&dump).unwrap();
        assert_eq!(back, rec.contents());
        assert!(back.iter().any(|r| r.request_id == "req-err"
            && r.verdict == RequestVerdict::Error
            && r.latency_ms == 12.5));
    }

    #[test]
    fn clear_drops_contents_but_keeps_stats() {
        let rec = FlightRecorder::new(config());
        rec.record(request("req-err", RequestVerdict::Error, 1.0));
        assert!(!rec.is_empty());
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.stats().seen, 1);
    }
}
