//! Prometheus-style text exposition of a [`MetricsRegistry`].
//!
//! Renders counters, gauges, and histograms in the classic text format:
//! `genedit_`-prefixed sanitized names, `# TYPE` headers, cumulative
//! `_bucket{le="…"}` lines derived from the log-linear layout (only
//! buckets that change the cumulative count are emitted, plus `+Inf`, so
//! a 3k-bucket histogram exposes ~as many lines as it has distinct
//! occupied buckets), and `_sum`/`_count`. Exemplars — observations
//! tagged with their request ID — are appended OpenMetrics-style after
//! the `+Inf` bucket, which is what makes a dashboard's p99 click
//! through to a flight-recorder trace.

use crate::hist::{bucket_bounds, HistogramSnapshot, NUM_BUCKETS};
use crate::metrics::MetricsRegistry;
use std::fmt::Write as _;

/// `genedit_`-prefix plus the metric name with every character outside
/// `[a-zA-Z0-9_]` replaced by `_` (so `serve.request` →
/// `genedit_serve_request`).
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("genedit_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, snap: &HistogramSnapshot, exemplars: &str) {
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for (index, count) in &snap.counts {
        cumulative += count;
        let upper = if (*index as usize) >= NUM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            bucket_bounds(*index as usize).1
        };
        if upper.is_finite() {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{}\"}} {cumulative}",
                fmt_f64(upper)
            );
        }
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{le=\"+Inf\"}} {}{exemplars}",
        snap.count
    );
    let _ = writeln!(out, "{name}_sum {}", fmt_f64(snap.sum));
    let _ = writeln!(out, "{name}_count {}", snap.count);
}

/// Render the registry's full state as Prometheus exposition text.
pub fn render(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, value) in registry.counter_values() {
        let name = sanitize_name(&name);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in registry.gauge_values() {
        let name = sanitize_name(&name);
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", fmt_f64(value));
    }
    let exemplars = registry.exemplars();
    for (name, snap) in registry.histogram_snapshots() {
        // OpenMetrics exemplar syntax: ` # {label="…"} value` appended to
        // a bucket line. We attach the most recent exemplar to +Inf.
        let exemplar_suffix = exemplars
            .get(&name)
            .and_then(|list| list.last())
            .map(|e| {
                format!(
                    " # {{request_id=\"{}\"}} {}",
                    e.request_id,
                    fmt_f64(e.value)
                )
            })
            .unwrap_or_default();
        render_histogram(&mut out, &sanitize_name(&name), &snap, &exemplar_suffix);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_metric_names() {
        assert_eq!(sanitize_name("serve.request"), "genedit_serve_request");
        assert_eq!(
            sanitize_name("span.llm.complete.ms"),
            "genedit_span_llm_complete_ms"
        );
        assert_eq!(sanitize_name("a-b c"), "genedit_a_b_c");
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let m = MetricsRegistry::new();
        m.incr("serve.admitted", 7);
        m.set_gauge("serve.queue_depth", 3.0);
        for v in [1.0, 2.0, 4.0] {
            m.observe("serve.request", v);
        }
        let text = render(&m);
        assert!(text.contains("# TYPE genedit_serve_admitted counter"));
        assert!(text.contains("genedit_serve_admitted 7"));
        assert!(text.contains("# TYPE genedit_serve_queue_depth gauge"));
        assert!(text.contains("genedit_serve_queue_depth 3.0"));
        assert!(text.contains("# TYPE genedit_serve_request histogram"));
        assert!(text.contains("genedit_serve_request_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("genedit_serve_request_count 3"));
        assert!(text.contains("genedit_serve_request_sum 7.0"));
    }

    #[test]
    fn buckets_are_cumulative_and_end_at_observed_count() {
        let m = MetricsRegistry::new();
        for v in 1..=100 {
            m.observe("lat", v as f64);
        }
        let text = render(&m);
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("genedit_lat_bucket"))
            .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
            .collect();
        assert!(!counts.is_empty());
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 100);
    }

    #[test]
    fn exemplars_attach_to_the_inf_bucket() {
        let m = MetricsRegistry::new();
        m.observe_with_exemplar("lat", 12.5, "req-00000007");
        let text = render(&m);
        let inf_line = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .expect("inf bucket rendered");
        assert!(
            inf_line.contains("# {request_id=\"req-00000007\"} 12.5"),
            "{inf_line}"
        );
    }

    #[test]
    fn empty_registry_renders_empty() {
        assert!(render(&MetricsRegistry::new()).is_empty());
    }
}
