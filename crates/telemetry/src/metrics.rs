//! Named counters and histograms, shareable via `Arc` across harness runs.
//!
//! Histograms keep raw samples (runs here are thousands of observations,
//! not millions) and summarize to count/sum/mean/min/max/p50/p95/p99 on
//! snapshot. Percentiles use the nearest-rank definition, so a histogram
//! over 1..=100 reports p50 = 50, p95 = 95, p99 = 99 exactly.

use crate::span::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Vec<f64>>,
}

/// Registry of named counters and histograms. All methods take `&self`;
/// wrap in `Arc` to share across components or threads. Lock poisoning is
/// absorbed, never propagated.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        let mut inner = self.lock();
        *inner.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .push(value);
    }

    /// Record a duration observation, in milliseconds.
    pub fn observe_duration(&self, name: &str, duration: Duration) {
        self.observe(name, duration.as_secs_f64() * 1e3);
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Fold a finished trace in: every span becomes a `span.<name>.count`
    /// increment and a `span.<name>.ms` latency observation; warnings
    /// increment `trace.warnings`.
    pub fn record_trace(&self, trace: &Trace) {
        for span in trace.all_spans() {
            self.incr(&format!("span.{}.count", span.name), 1);
            self.observe_duration(&format!("span.{}.ms", span.name), span.duration);
        }
        if !trace.warnings.is_empty() {
            self.incr("trace.warnings", trace.warnings.len() as u64);
        }
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.lock();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, samples)| (name.clone(), HistogramSummary::from_samples(samples)))
                .collect(),
        }
    }

    /// Drop all recorded values.
    pub fn reset(&self) {
        let mut inner = self.lock();
        inner.counters.clear();
        inner.histograms.clear();
    }
}

/// Serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Summary statistics of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    pub count: usize,
    pub sum: f64,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    pub p50: f64,
    pub p95: f64,
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarize raw samples. Empty input yields the all-zero summary.
    pub fn from_samples(samples: &[f64]) -> HistogramSummary {
        if samples.is_empty() {
            return HistogramSummary {
                count: 0,
                sum: 0.0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let sum: f64 = sorted.iter().sum();
        HistogramSummary {
            count: sorted.len(),
            sum,
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile(&sorted, 50.0),
            p95: percentile(&sorted, 95.0),
            p99: percentile(&sorted, 99.0),
        }
    }
}

/// Nearest-rank percentile over pre-sorted samples.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a", 1);
        m.incr("a", 2);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("missing"), 0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
    }

    #[test]
    fn percentiles_are_nearest_rank_exact() {
        let m = MetricsRegistry::new();
        for v in 1..=100 {
            m.observe("h", v as f64);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 100);
        assert_eq!(h.p50, 50.0);
        assert_eq!(h.p95, 95.0);
        assert_eq!(h.p99, 99.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert!((h.sum - 5050.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 99.0), 2.0);
        let empty = HistogramSummary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    fn record_trace_counts_spans_and_warnings() {
        let tracer = crate::Tracer::new("t");
        {
            let _a = tracer.span("op");
            tracer.span("op").finish();
            tracer.warning("w");
        }
        let trace = tracer.finish();
        let m = MetricsRegistry::new();
        m.record_trace(&trace);
        assert_eq!(m.counter("span.op.count"), 2);
        assert_eq!(m.counter("trace.warnings"), 1);
        let snap = m.snapshot();
        assert_eq!(snap.histograms["span.op.ms"].count, 2);
    }

    #[test]
    fn poisoned_lock_is_absorbed() {
        use std::sync::Arc;
        let m = Arc::new(MetricsRegistry::new());
        m.incr("a", 1);
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.inner.lock().unwrap();
            panic!("poison the registry lock");
        })
        .join();
        m.incr("a", 1);
        assert_eq!(m.counter("a"), 2);
    }

    #[test]
    fn shared_via_arc_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.incr("n", 1);
                        m.observe("h", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("n"), 400);
        assert_eq!(m.snapshot().histograms["h"].count, 400);
    }
}
