//! Named counters, gauges, and histograms, shareable via `Arc` across
//! harness runs and serving workers.
//!
//! Histograms are bounded log-linear ([`crate::hist`]) — fixed memory,
//! lock-free `observe`, percentiles within ≤ 1% relative error of exact
//! nearest-rank. The registry's name→metric maps sit behind `RwLock`s:
//! a recording call takes a shared read lock to find its metric's `Arc`,
//! then updates atomics; only the *first* observation of a new name takes
//! the write lock. Hot paths that cannot afford even the read lock cache
//! the [`LogLinearHistogram`]/counter handle once via
//! [`MetricsRegistry::histogram`] / [`MetricsRegistry::counter_handle`]
//! and record fully lock-free from then on.
//!
//! Non-finite observations (NaN, ±inf) are rejected — one NaN would
//! otherwise poison every percentile — and counted under
//! `telemetry.rejected_samples`. Gauges carry set/last-value semantics
//! (e.g. `serve.queue_depth`). Lock poisoning is absorbed, never
//! propagated.

use crate::hist::{Exemplar, HistogramSnapshot, LogLinearHistogram};
use crate::span::Trace;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

/// Counter name under which rejected (non-finite) observations are
/// counted.
pub const REJECTED_SAMPLES: &str = "telemetry.rejected_samples";

type Map<T> = RwLock<BTreeMap<String, Arc<T>>>;

fn read<T>(map: &Map<T>) -> RwLockReadGuard<'_, BTreeMap<String, Arc<T>>> {
    map.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn write<T>(map: &Map<T>) -> RwLockWriteGuard<'_, BTreeMap<String, Arc<T>>> {
    map.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn entry<T: Default>(map: &Map<T>, name: &str) -> Arc<T> {
    if let Some(existing) = read(map).get(name) {
        return Arc::clone(existing);
    }
    let mut guard = write(map);
    Arc::clone(guard.entry(name.to_string()).or_default())
}

/// Registry of named counters, gauges, and histograms. All methods take
/// `&self`; wrap in `Arc` to share across components or threads.
pub struct MetricsRegistry {
    enabled: bool,
    counters: Map<AtomicU64>,
    gauges: Map<AtomicU64>,
    histograms: Map<LogLinearHistogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// A fresh, recording registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            enabled: true,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// A no-op registry: every recording call returns immediately. The
    /// `obs_sweep` benchmark measures instrumentation overhead against
    /// this baseline.
    pub fn disabled() -> MetricsRegistry {
        MetricsRegistry {
            enabled: false,
            ..MetricsRegistry::new()
        }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Add `by` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, by: u64) {
        if !self.enabled {
            return;
        }
        self.counter_handle(name).fetch_add(by, Ordering::Relaxed);
    }

    /// The atomic behind a named counter, for hot paths that want to
    /// bump it without the name lookup.
    pub fn counter_handle(&self, name: &str) -> Arc<AtomicU64> {
        entry(&self.counters, name)
    }

    /// Record one observation into the named histogram. Non-finite
    /// values are dropped and counted under [`REJECTED_SAMPLES`].
    pub fn observe(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        if !value.is_finite() {
            self.incr(REJECTED_SAMPLES, 1);
            return;
        }
        self.histogram(name).observe(value);
    }

    /// Record a duration observation, in milliseconds.
    pub fn observe_duration(&self, name: &str, duration: Duration) {
        self.observe(name, duration.as_secs_f64() * 1e3);
    }

    /// Record an observation annotated with the request that produced it;
    /// the exemplar is kept alongside the histogram and reported in
    /// snapshots and Prometheus exposition.
    pub fn observe_with_exemplar(&self, name: &str, value: f64, request_id: &str) {
        if !self.enabled {
            return;
        }
        if !value.is_finite() {
            self.incr(REJECTED_SAMPLES, 1);
            return;
        }
        self.histogram(name)
            .observe_with_exemplar(value, request_id);
    }

    /// The named histogram (created empty on first use), for hot paths
    /// that cache the handle and observe lock-free.
    pub fn histogram(&self, name: &str) -> Arc<LogLinearHistogram> {
        entry(&self.histograms, name)
    }

    /// Set the named gauge to `value` (last-write-wins semantics).
    /// Non-finite values are rejected like histogram observations.
    pub fn set_gauge(&self, name: &str, value: f64) {
        if !self.enabled {
            return;
        }
        if !value.is_finite() {
            self.incr(REJECTED_SAMPLES, 1);
            return;
        }
        entry(&self.gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value of a gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        read(&self.gauges)
            .get(name)
            .map(|g| f64::from_bits(g.load(Ordering::Relaxed)))
    }

    /// Current value of a counter (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        read(&self.counters)
            .get(name)
            .map(|c| c.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Fold a finished trace in: every span becomes a `span.<name>.count`
    /// increment and a `span.<name>.ms` latency observation; warnings
    /// increment `trace.warnings`.
    pub fn record_trace(&self, trace: &Trace) {
        if !self.enabled {
            return;
        }
        for span in trace.all_spans() {
            self.incr(&format!("span.{}.count", span.name), 1);
            self.observe_duration(&format!("span.{}.ms", span.name), span.duration);
        }
        if !trace.warnings.is_empty() {
            self.incr("trace.warnings", trace.warnings.len() as u64);
        }
    }

    /// Point-in-time summary of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = read(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect();
        let gauges = read(&self.gauges)
            .iter()
            .map(|(name, g)| (name.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect();
        let mut histograms = BTreeMap::new();
        let mut exemplars = BTreeMap::new();
        for (name, hist) in read(&self.histograms).iter() {
            histograms.insert(name.clone(), hist.snapshot().summary());
            let ex = hist.exemplars();
            if !ex.is_empty() {
                exemplars.insert(name.clone(), ex);
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            exemplars,
        }
    }

    /// Full bucket-level snapshots of every histogram — the mergeable
    /// view Prometheus exposition and rollups are built from.
    pub fn histogram_snapshots(&self) -> BTreeMap<String, HistogramSnapshot> {
        read(&self.histograms)
            .iter()
            .map(|(name, hist)| (name.clone(), hist.snapshot()))
            .collect()
    }

    /// The exemplars attached to every histogram that has any.
    pub fn exemplars(&self) -> BTreeMap<String, Vec<Exemplar>> {
        read(&self.histograms)
            .iter()
            .filter_map(|(name, hist)| {
                let ex = hist.exemplars();
                (!ex.is_empty()).then(|| (name.clone(), ex))
            })
            .collect()
    }

    /// Current counter values, name-sorted.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        read(&self.counters)
            .iter()
            .map(|(name, c)| (name.clone(), c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Current gauge values, name-sorted.
    pub fn gauge_values(&self) -> BTreeMap<String, f64> {
        read(&self.gauges)
            .iter()
            .map(|(name, g)| (name.clone(), f64::from_bits(g.load(Ordering::Relaxed))))
            .collect()
    }

    /// Drop all recorded values.
    pub fn reset(&self) {
        write(&self.counters).clear();
        write(&self.gauges).clear();
        write(&self.histograms).clear();
    }
}

/// Serializable snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name (last value set).
    pub gauges: BTreeMap<String, f64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Recent exemplars by histogram name (only histograms that have
    /// any).
    pub exemplars: BTreeMap<String, Vec<Exemplar>>,
}

/// Summary statistics of one histogram. `count`/`sum`/`mean`/`min`/`max`
/// are exact; percentiles come from the log-linear bucket layout and are
/// within ≤ 1% relative error of the exact nearest-rank value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: usize,
    /// Exact sum of observations.
    pub sum: f64,
    /// Exact mean (0 when empty).
    pub mean: f64,
    /// Exact minimum (0 when empty).
    pub min: f64,
    /// Exact maximum (0 when empty).
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

impl HistogramSummary {
    /// Summarize raw samples with **exact** nearest-rank percentiles.
    /// Empty input yields the all-zero summary. This is the reference
    /// implementation the log-linear histograms are validated against
    /// (property tests, `obs_sweep`).
    pub fn from_samples(samples: &[f64]) -> HistogramSummary {
        if samples.is_empty() {
            return HistogramSummary {
                count: 0,
                sum: 0.0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let sum: f64 = sorted.iter().sum();
        HistogramSummary {
            count: sorted.len(),
            sum,
            mean: sum / sorted.len() as f64,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: nearest_rank(&sorted, 50.0),
            p95: nearest_rank(&sorted, 95.0),
            p99: nearest_rank(&sorted, 99.0),
        }
    }
}

/// Exact nearest-rank percentile over pre-sorted samples — the oracle
/// the bounded histograms are compared against.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::MAX_RELATIVE_ERROR;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a", 1);
        m.incr("a", 2);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.counter("missing"), 0);
        m.reset();
        assert_eq!(m.counter("a"), 0);
    }

    #[test]
    fn percentiles_track_nearest_rank_within_error_bound() {
        let m = MetricsRegistry::new();
        for v in 1..=100 {
            m.observe("h", v as f64);
        }
        let snap = m.snapshot();
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 100);
        for (p, exact) in [(h.p50, 50.0), (h.p95, 95.0), (h.p99, 99.0)] {
            let rel = (p - exact).abs() / exact;
            assert!(rel <= MAX_RELATIVE_ERROR, "{p} vs {exact}: rel {rel}");
        }
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert!((h.sum - 5050.0).abs() < 1e-9);
    }

    #[test]
    fn exact_summary_and_percentile_edge_cases() {
        let s = HistogramSummary::from_samples(&[7.0]);
        assert_eq!((s.p50, s.p99), (7.0, 7.0));
        assert_eq!(nearest_rank(&[1.0, 2.0], 50.0), 1.0);
        assert_eq!(nearest_rank(&[1.0, 2.0], 99.0), 2.0);
        let empty = HistogramSummary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
    }

    #[test]
    fn non_finite_observations_are_rejected_and_counted() {
        let m = MetricsRegistry::new();
        m.observe("h", 1.0);
        m.observe("h", f64::NAN);
        m.observe("h", f64::INFINITY);
        m.observe("h", f64::NEG_INFINITY);
        m.set_gauge("g", f64::NAN);
        let snap = m.snapshot();
        // The single finite sample is unpolluted.
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 1);
        assert_eq!(h.p50, 1.0);
        assert!(h.sum.is_finite() && h.mean.is_finite());
        assert_eq!(m.counter(REJECTED_SAMPLES), 4);
        assert_eq!(m.gauge("g"), None);
    }

    #[test]
    fn gauges_have_last_value_semantics() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("depth"), None);
        m.set_gauge("depth", 3.0);
        m.set_gauge("depth", 7.0);
        assert_eq!(m.gauge("depth"), Some(7.0));
        let snap = m.snapshot();
        assert_eq!(snap.gauges["depth"], 7.0);
        m.reset();
        assert_eq!(m.gauge("depth"), None);
    }

    #[test]
    fn exemplars_surface_in_snapshot() {
        let m = MetricsRegistry::new();
        m.observe_with_exemplar("lat", 12.5, "req-00000001");
        let snap = m.snapshot();
        let ex = &snap.exemplars["lat"];
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].request_id, "req-00000001");
        assert_eq!(ex[0].value, 12.5);
        // Histograms without exemplars don't appear in the exemplar map.
        m.observe("plain", 1.0);
        assert!(!m.snapshot().exemplars.contains_key("plain"));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let m = MetricsRegistry::disabled();
        assert!(!m.is_enabled());
        m.incr("c", 5);
        m.observe("h", 1.0);
        m.set_gauge("g", 2.0);
        m.observe_with_exemplar("h", 1.0, "req");
        let snap = m.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.gauges.is_empty());
    }

    #[test]
    fn record_trace_counts_spans_and_warnings() {
        let tracer = crate::Tracer::new("t");
        {
            let _a = tracer.span("op");
            tracer.span("op").finish();
            tracer.warning("w");
        }
        let trace = tracer.finish();
        let m = MetricsRegistry::new();
        m.record_trace(&trace);
        assert_eq!(m.counter("span.op.count"), 2);
        assert_eq!(m.counter("trace.warnings"), 1);
        let snap = m.snapshot();
        assert_eq!(snap.histograms["span.op.ms"].count, 2);
    }

    #[test]
    fn poisoned_lock_is_absorbed() {
        use std::sync::Arc;
        let m = Arc::new(MetricsRegistry::new());
        m.incr("a", 1);
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.counters.write().unwrap();
            panic!("poison the registry lock");
        })
        .join();
        m.incr("a", 1);
        assert_eq!(m.counter("a"), 2);
    }

    #[test]
    fn shared_via_arc_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.incr("n", 1);
                        m.observe("h", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter("n"), 400);
        assert_eq!(m.snapshot().histograms["h"].count, 400);
    }

    #[test]
    fn cached_handles_observe_without_lookup() {
        let m = MetricsRegistry::new();
        let h = m.histogram("hot");
        let c = m.counter_handle("hits");
        for i in 0..1000 {
            h.observe(i as f64 + 0.5);
            c.fetch_add(1, Ordering::Relaxed);
        }
        assert_eq!(m.counter("hits"), 1000);
        assert_eq!(m.snapshot().histograms["hot"].count, 1000);
    }
}
