//! Bounded log-linear (HDR-style) histograms with sharded atomic
//! counters.
//!
//! The old registry kept every observation in a `Vec<f64>` behind one
//! mutex: unbounded memory and a serialization point on the serve hot
//! path. A [`LogLinearHistogram`] replaces that with a **fixed** bucket
//! layout — 64 linear sub-buckets per power of two between 2⁻²⁰ and 2³¹,
//! plus one underflow and one overflow bucket — so memory is bounded by
//! construction and any percentile reads back within **≤ 1% relative
//! error** of the exact nearest-rank answer ([`MAX_RELATIVE_ERROR`] is
//! the tighter analytical bound).
//!
//! `observe` is lock-free: it indexes a bucket straight from the IEEE-754
//! bit pattern of the value (exponent ‖ top mantissa bits form a monotone
//! key) and bumps per-shard `AtomicU64`s. Shards are assigned round-robin
//! per thread, so concurrent writers on different cores touch different
//! cache lines. Snapshots fold the shards into a mergeable
//! [`HistogramSnapshot`], from which summaries and Prometheus bucket
//! exposition are derived.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Linear sub-buckets per power-of-two octave (2⁶ = 64).
const SUB_BITS: u32 = 6;
/// Bits dropped from the mantissa when forming a bucket key.
const KEY_SHIFT: u32 = 52 - SUB_BITS;
/// Smallest tracked value: 2⁻²⁰ (≈ 9.5e-7). Anything smaller — including
/// zero and negative values — lands in the underflow bucket.
const MIN_EXP: i64 = -20;
/// One past the largest tracked octave: values ≥ 2³¹ (≈ 2.1e9; 24 days
/// in milliseconds) land in the overflow bucket.
const LIM_EXP: i64 = 31;
/// Bucket key of the smallest tracked value.
const KEY_MIN: u64 = ((1023 + MIN_EXP) as u64) << SUB_BITS;
/// One past the largest tracked bucket key.
const KEY_LIM: u64 = ((1023 + LIM_EXP) as u64) << SUB_BITS;
/// Tracked log-linear buckets (excluding underflow/overflow).
const TRACKED: usize = (KEY_LIM - KEY_MIN) as usize;

/// Total buckets: underflow + tracked log-linear range + overflow.
pub const NUM_BUCKETS: usize = TRACKED + 2;

/// Smallest value that maps to a tracked (non-underflow) bucket.
pub const MIN_TRACKED: f64 = 1.0 / (1 << 20) as f64;
/// Smallest value that maps to the overflow bucket.
pub const MAX_TRACKED: f64 = (1u64 << 31) as f64;

/// Worst-case relative error of a bucket's representative value against
/// any sample inside the bucket: half the sub-bucket width, 1/(2·64).
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / 128.0;

/// Bucket index for a finite value. Total order: underflow (0), then the
/// log-linear range in increasing value order, then overflow.
#[inline]
pub fn bucket_index(value: f64) -> usize {
    debug_assert!(value.is_finite());
    if value.is_nan() || value < MIN_TRACKED {
        // Negative, zero, and sub-2⁻²⁰ values: underflow bucket. NaN
        // lands here too as a release-mode backstop — the key
        // computation below would index out of bounds on NaN bits.
        0
    } else if value >= MAX_TRACKED {
        NUM_BUCKETS - 1
    } else {
        // For positive finite f64, (exponent ‖ mantissa) bits are
        // monotone in the value, so the top SUB_BITS mantissa bits
        // select a linear sub-bucket inside the value's octave.
        ((value.to_bits() >> KEY_SHIFT) - KEY_MIN) as usize + 1
    }
}

/// Half-open value range `[lower, upper)` covered by bucket `index`.
pub fn bucket_bounds(index: usize) -> (f64, f64) {
    if index == 0 {
        (0.0, MIN_TRACKED)
    } else if index >= NUM_BUCKETS - 1 {
        (MAX_TRACKED, f64::INFINITY)
    } else {
        let key = KEY_MIN + (index as u64 - 1);
        (
            f64::from_bits(key << KEY_SHIFT),
            f64::from_bits((key + 1) << KEY_SHIFT),
        )
    }
}

/// Representative value reported for samples in bucket `index`: the
/// bucket midpoint, which bounds relative error by [`MAX_RELATIVE_ERROR`]
/// for tracked buckets.
fn representative(index: usize) -> f64 {
    if index == 0 {
        MIN_TRACKED * 0.5
    } else if index >= NUM_BUCKETS - 1 {
        MAX_TRACKED
    } else {
        let (lower, upper) = bucket_bounds(index);
        0.5 * (lower + upper)
    }
}

/// An exemplar: one concrete observation annotated with the request that
/// produced it, so aggregate metrics stay joinable with traces and
/// flight-recorder dumps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Exemplar {
    /// The observed value.
    pub value: f64,
    /// The request ID the observation belongs to.
    pub request_id: String,
}

/// Most recent exemplars kept per histogram.
const EXEMPLAR_CAPACITY: usize = 16;

/// Writer shards used by every histogram. Each shard is ~26 KiB of
/// bucket counters; four shards keep concurrent `observe` calls from
/// different threads off each other's cache lines without making the
/// per-histogram footprint excessive.
const SHARDS: usize = 4;

struct Shard {
    counts: Box<[AtomicU64]>,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        let counts: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Shard {
            counts: counts.into_boxed_slice(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        // f64 accumulators via CAS on the bit pattern: lock-free, and the
        // retry loop is contention-bounded by the shard fan-out.
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        update_extreme(&self.min_bits, value, |new, old| new < old);
        update_extreme(&self.max_bits, value, |new, old| new > old);
    }
}

fn update_extreme(slot: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut cur = slot.load(Ordering::Relaxed);
    while better(value, f64::from_bits(cur)) {
        match slot.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(actual) => cur = actual,
        }
    }
}

/// Per-thread shard slot, assigned round-robin at first use so threads
/// spread across shards regardless of how the runtime names or reuses
/// them.
fn shard_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SLOT.with(|slot| {
        let mut s = slot.get();
        if s == usize::MAX {
            s = NEXT.fetch_add(1, Ordering::Relaxed);
            slot.set(s);
        }
        s
    })
}

/// A bounded, concurrent log-linear histogram. `observe` is lock-free;
/// memory is fixed at construction (~`SHARDS` × 26 KiB) no matter how
/// many observations are recorded.
pub struct LogLinearHistogram {
    shards: Box<[Shard]>,
    exemplars: Mutex<VecDeque<Exemplar>>,
}

impl Default for LogLinearHistogram {
    fn default() -> Self {
        LogLinearHistogram::new()
    }
}

impl LogLinearHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> LogLinearHistogram {
        LogLinearHistogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            exemplars: Mutex::new(VecDeque::new()),
        }
    }

    /// Record one finite observation. Callers are expected to have
    /// rejected NaN/±inf already (the registry does); a non-finite value
    /// here is a debug assertion.
    #[inline]
    pub fn observe(&self, value: f64) {
        self.shards[shard_slot() % self.shards.len()].observe(value);
    }

    /// Record an observation and remember it as an exemplar tagged with
    /// `request_id`, so this histogram's aggregates stay joinable with
    /// the request's trace.
    pub fn observe_with_exemplar(&self, value: f64, request_id: &str) {
        self.observe(value);
        let mut exemplars = self.lock_exemplars();
        if exemplars.len() >= EXEMPLAR_CAPACITY {
            exemplars.pop_front();
        }
        exemplars.push_back(Exemplar {
            value,
            request_id: request_id.to_string(),
        });
    }

    fn lock_exemplars(&self) -> MutexGuard<'_, VecDeque<Exemplar>> {
        self.exemplars
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The most recent exemplars, oldest first.
    pub fn exemplars(&self) -> Vec<Exemplar> {
        self.lock_exemplars().iter().cloned().collect()
    }

    /// Fold every shard into a point-in-time, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut dense = vec![0u64; NUM_BUCKETS];
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for shard in self.shards.iter() {
            for (slot, count) in dense.iter_mut().zip(shard.counts.iter()) {
                *slot += count.load(Ordering::Relaxed);
            }
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
            min = min.min(f64::from_bits(shard.min_bits.load(Ordering::Relaxed)));
            max = max.max(f64::from_bits(shard.max_bits.load(Ordering::Relaxed)));
        }
        let counts: Vec<(u32, u64)> = dense
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as u32, *c))
            .collect();
        let count: u64 = counts.iter().map(|(_, c)| c).sum();
        if count == 0 {
            HistogramSnapshot::default()
        } else {
            HistogramSnapshot {
                counts,
                count,
                sum,
                min,
                max,
            }
        }
    }
}

/// A point-in-time view of a [`LogLinearHistogram`]: sparse bucket
/// counts plus exact count/sum/min/max. Snapshots merge, so per-shard or
/// per-process histograms roll up into fleet-wide percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bucket index, count)`, index-ascending.
    pub counts: Vec<(u32, u64)>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observations.
    pub sum: f64,
    /// Exact smallest observation (0 when empty).
    pub min: f64,
    /// Exact largest observation (0 when empty).
    pub max: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

impl HistogramSnapshot {
    /// Whether any observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut dense = vec![0u64; NUM_BUCKETS];
        for (i, c) in self.counts.iter().chain(other.counts.iter()) {
            dense[*i as usize] += c;
        }
        self.counts = dense
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (i as u32, *c))
            .collect();
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Nearest-rank percentile (`p` in 0..=100) reconstructed from the
    /// bucket layout. Within [`MAX_RELATIVE_ERROR`] of the exact
    /// nearest-rank answer for samples in the tracked range; exact when
    /// all samples share one value (the result clamps to `[min, max]`).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (index, count) in &self.counts {
            seen += count;
            if seen >= rank {
                return representative(*index as usize).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Summarize to the registry's standard summary shape.
    pub fn summary(&self) -> crate::metrics::HistogramSummary {
        crate::metrics::HistogramSummary {
            count: self.count as usize,
            sum: self.sum,
            mean: self.mean(),
            min: self.min,
            max: self.max,
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let values = [
            -5.0,
            0.0,
            1e-9,
            MIN_TRACKED,
            0.001,
            0.5,
            1.0,
            1.5,
            2.0,
            100.0,
            1e6,
            2e9,
            1e12,
        ];
        let mut last = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(i < NUM_BUCKETS);
            last = i;
        }
        assert_eq!(bucket_index(-1.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(1e15), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        for v in [0.0013, 0.9, 1.0, 7.32, 55.5, 1234.5, 9.9e8] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "{v} outside [{lo}, {hi})");
            // Tracked buckets are narrow: width/lower ≤ 1/64.
            if i > 0 && i < NUM_BUCKETS - 1 {
                assert!((hi - lo) / lo <= 1.0 / 64.0 + 1e-12);
            }
        }
    }

    #[test]
    fn percentiles_within_relative_error_bound() {
        let hist = LogLinearHistogram::new();
        let samples: Vec<f64> = (1..=10_000).map(|i| i as f64 * 0.37).collect();
        for v in &samples {
            hist.observe(*v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 10_000);
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            let exact = exact_percentile(&sorted, p);
            let approx = snap.percentile(p);
            let rel = (approx - exact).abs() / exact;
            assert!(
                rel <= MAX_RELATIVE_ERROR,
                "p{p}: exact {exact}, approx {approx}, rel {rel}"
            );
        }
        assert_eq!(snap.min, 0.37);
        assert!((snap.max - 3700.0).abs() < 1e-9);
        let exact_sum: f64 = samples.iter().sum();
        assert!((snap.sum - exact_sum).abs() / exact_sum < 1e-12);
    }

    #[test]
    fn single_and_identical_samples_are_exact() {
        let hist = LogLinearHistogram::new();
        hist.observe(7.32);
        let snap = hist.snapshot();
        assert_eq!(snap.percentile(50.0), 7.32);
        assert_eq!(snap.percentile(99.0), 7.32);
        for _ in 0..99 {
            hist.observe(7.32);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.percentile(50.0), 7.32);
        assert_eq!(snap.summary().p99, 7.32);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = LogLinearHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.percentile(99.0), 0.0);
        let s = snap.summary();
        assert_eq!(
            (s.count, s.sum, s.min, s.max, s.p50),
            (0, 0.0, 0.0, 0.0, 0.0)
        );
    }

    #[test]
    fn merge_equals_union() {
        let a = LogLinearHistogram::new();
        let b = LogLinearHistogram::new();
        let all = LogLinearHistogram::new();
        for i in 1..=500 {
            let v = i as f64 * 1.7;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            all.observe(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let union = all.snapshot();
        assert_eq!(merged.counts, union.counts);
        assert_eq!(merged.count, union.count);
        assert_eq!(merged.min, union.min);
        assert_eq!(merged.max, union.max);
        // Sums differ only by f64 addition order.
        assert!((merged.sum - union.sum).abs() / union.sum < 1e-12);
        // Merging an empty snapshot is a no-op.
        let before = merged.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
        // Merging into an empty snapshot copies.
        let mut empty = HistogramSnapshot::default();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn concurrent_observes_lose_nothing() {
        use std::sync::Arc;
        let hist = Arc::new(LogLinearHistogram::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        hist.observe((t * 10_000 + i) as f64 + 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.min, 1.0);
        assert_eq!(snap.max, 80_000.0);
    }

    #[test]
    fn exemplars_are_bounded_and_ordered() {
        let hist = LogLinearHistogram::new();
        for i in 0..40 {
            hist.observe_with_exemplar(i as f64 + 0.5, &format!("req-{i}"));
        }
        let exemplars = hist.exemplars();
        assert_eq!(exemplars.len(), EXEMPLAR_CAPACITY);
        assert_eq!(exemplars.last().unwrap().request_id, "req-39");
        assert_eq!(hist.snapshot().count, 40);
    }

    #[test]
    fn out_of_range_values_are_still_counted() {
        let hist = LogLinearHistogram::new();
        hist.observe(-3.0);
        hist.observe(0.0);
        hist.observe(1e15);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.min, -3.0);
        assert_eq!(snap.max, 1e15);
        // Percentiles stay inside the observed range even for outliers.
        let p = snap.percentile(50.0);
        assert!((-3.0..=1e15).contains(&p));
    }
}
