//! Injectable time source shared by every time-windowed component.
//!
//! This is the `Clock`/`SimulatedClock` pattern the resilience layer
//! (`genedit_llm::resilient`) established: production code runs on
//! [`SystemClock`]; tests and sweeps run on [`SimulatedClock`] so
//! backoffs, window rollups, and burn-rate alert schedules are
//! deterministic and never block on wall time. The trait lives here —
//! below every other crate — so the metrics windows ([`crate::window`]),
//! SLO trackers ([`crate::slo`]), and the model-retry layer all share one
//! definition (`genedit_llm` re-exports these types unchanged).

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// Injectable time source so time-windowed logic is testable without
/// wall-clock sleeps.
pub trait Clock: Send + Sync {
    /// Monotonic time since an arbitrary epoch.
    fn now(&self) -> Duration;
    /// Block (or pretend to block) for `duration`.
    fn sleep(&self, duration: Duration);
}

/// Real time: `Instant`-based `now`, `thread::sleep`-based `sleep`.
pub struct SystemClock {
    origin: std::time::Instant,
}

impl SystemClock {
    /// Clock whose zero is the moment of construction.
    pub fn new() -> SystemClock {
        SystemClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }

    fn sleep(&self, duration: Duration) {
        std::thread::sleep(duration);
    }
}

/// Virtual time: `sleep` advances an internal counter instantly. The
/// counter doubles as the total backoff a run would have waited — the
/// retry-overhead figure the chaos sweep reports.
#[derive(Default)]
pub struct SimulatedClock {
    state: Mutex<SimState>,
}

#[derive(Default, Clone, Copy)]
struct SimState {
    now: Duration,
    slept: Duration,
}

impl SimulatedClock {
    /// Virtual clock starting at zero elapsed time.
    pub fn new() -> SimulatedClock {
        SimulatedClock::default()
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Total virtual time slept so far (excludes [`SimulatedClock::advance`]).
    pub fn total_slept(&self) -> Duration {
        self.lock().slept
    }

    /// Advance virtual time without attributing it to a sleep.
    pub fn advance(&self, by: Duration) {
        self.lock().now += by;
    }
}

impl Clock for SimulatedClock {
    fn now(&self) -> Duration {
        self.lock().now
    }

    fn sleep(&self, duration: Duration) {
        let mut state = self.lock();
        state.now += duration;
        state.slept += duration;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn simulated_clock_advances_without_blocking() {
        let clock = SimulatedClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.sleep(Duration::from_secs(3));
        clock.advance(Duration::from_secs(2));
        assert_eq!(clock.now(), Duration::from_secs(5));
        assert_eq!(clock.total_slept(), Duration::from_secs(3));
    }

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn usable_as_trait_object() {
        let clock: Arc<dyn Clock> = Arc::new(SimulatedClock::new());
        clock.sleep(Duration::from_millis(10));
        assert_eq!(clock.now(), Duration::from_millis(10));
    }
}
