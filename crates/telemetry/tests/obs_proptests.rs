//! Property tests for the observability plane: log-linear histogram
//! percentiles against the exact nearest-rank oracle, snapshot merge
//! laws, and flight-recorder retention invariants.

use genedit_telemetry::hist::{MAX_RELATIVE_ERROR, MAX_TRACKED, MIN_TRACKED};
use genedit_telemetry::metrics::nearest_rank;
use genedit_telemetry::{
    FlightRecorder, LogLinearHistogram, RecordedRequest, RecorderConfig, RequestVerdict, Trace,
};
use proptest::prelude::*;

/// The bound the tentpole promises: a log-linear percentile is within
/// `MAX_RELATIVE_ERROR` of the exact nearest-rank value (clamped to the
/// observed min/max, so the bound holds at the extremes too).
fn assert_percentile_close(samples: &[f64], p: f64) -> Result<(), TestCaseError> {
    let hist = LogLinearHistogram::new();
    for &s in samples {
        hist.observe(s);
    }
    let snapshot = hist.snapshot();
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let exact = nearest_rank(&sorted, p);
    let approx = snapshot.percentile(p);
    let tolerance = MAX_RELATIVE_ERROR * exact.abs() + 1e-12;
    prop_assert!(
        (approx - exact).abs() <= tolerance,
        "p{p}: approx {approx} vs exact {exact} over {} samples",
        samples.len()
    );
    Ok(())
}

/// Strategy: sample values spanning the tracked range's useful middle
/// (sub-millisecond to hours-in-ms), exercising many octaves.
fn samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            0.001f64..1.0,     // sub-millisecond latencies
            1.0f64..1_000.0,   // the common serving band
            1_000.0f64..3.6e6, // tail: seconds to an hour, in ms
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every percentile the dashboards read stays within the promised
    /// relative-error bound of exact nearest-rank.
    #[test]
    fn percentiles_match_nearest_rank(values in samples(), p in 0.0f64..=100.0) {
        assert_percentile_close(&values, p)?;
        for fixed in [50.0, 95.0, 99.0] {
            assert_percentile_close(&values, fixed)?;
        }
    }

    /// Heavily-skewed distributions (most mass at one point, a far
    /// outlier tail) keep the bound too — the case plain linear buckets
    /// get wrong.
    #[test]
    fn skewed_distributions_hold_the_bound(
        base in 0.01f64..10.0,
        tail in 10_000.0f64..1e6,
        tail_count in 1usize..20,
        base_count in 50usize..300,
    ) {
        let mut values = vec![base; base_count];
        values.extend(std::iter::repeat_n(tail, tail_count));
        for p in [50.0, 90.0, 95.0, 99.0, 99.9] {
            assert_percentile_close(&values, p)?;
        }
    }

    /// Count and sum are exact (not approximated), and the mean follows.
    #[test]
    fn count_and_sum_are_exact(values in samples()) {
        let hist = LogLinearHistogram::new();
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let exact_sum: f64 = values.iter().sum();
        prop_assert!((snap.sum - exact_sum).abs() <= 1e-9 * exact_sum.abs() + 1e-12);
        prop_assert!((snap.mean() - exact_sum / values.len() as f64).abs() <= 1e-6);
    }

    /// Merging per-shard (here: per-partition) snapshots is lossless:
    /// the merged histogram answers every percentile exactly as one
    /// histogram fed the union would.
    #[test]
    fn merge_is_equivalent_to_union(values in samples(), split in 0usize..400) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);
        let observe_all = |vs: &[f64]| {
            let h = LogLinearHistogram::new();
            for &v in vs {
                h.observe(v);
            }
            h.snapshot()
        };
        let mut merged = observe_all(left);
        merged.merge(&observe_all(right));
        let union = observe_all(&values);
        prop_assert_eq!(&merged.counts, &union.counts);
        prop_assert_eq!(merged.count, union.count);
        prop_assert_eq!(merged.min, union.min);
        prop_assert_eq!(merged.max, union.max);
        for p in [1.0, 50.0, 95.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), union.percentile(p));
        }
    }

    /// Out-of-range values clamp into the underflow/overflow buckets
    /// without panicking or corrupting the count.
    #[test]
    fn out_of_range_values_clamp(values in prop::collection::vec(
        prop_oneof![
            (MIN_TRACKED / 1e6)..MIN_TRACKED,
            MAX_TRACKED..(MAX_TRACKED * 1e3),
            0.001f64..1_000.0,
        ],
        1..100,
    )) {
        let hist = LogLinearHistogram::new();
        for &v in &values {
            hist.observe(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        let p50 = snap.percentile(50.0);
        prop_assert!(p50.is_finite());
        prop_assert!(p50 >= snap.min && p50 <= snap.max);
    }

    /// A single repeated value reports *exact* percentiles (the clamp to
    /// [min, max] guarantees it) — existing callers assert equality on
    /// single-valued histograms.
    #[test]
    fn single_value_is_exact(v in 0.001f64..1e6, n in 1usize..50, p in 0.0f64..=100.0) {
        let hist = LogLinearHistogram::new();
        for _ in 0..n {
            hist.observe(v);
        }
        prop_assert_eq!(hist.snapshot().percentile(p), v);
    }

    /// Flight-recorder retention law: whatever the interleaving of
    /// verdicts, every interesting request within capacity is retained,
    /// memory stays bounded, and the stats ledger balances.
    #[test]
    fn recorder_retains_interesting_within_capacity(
        verdicts in prop::collection::vec(0u8..4, 0..300),
        keep_one_in in 1u64..8,
        seed in 0u64..1000,
    ) {
        let config = RecorderConfig {
            interesting_capacity: 512,
            normal_capacity: 16,
            latency_threshold_ms: 1e9,
            keep_normal_one_in: keep_one_in,
            seed,
        };
        let recorder = FlightRecorder::new(config);
        let mut interesting_ids = Vec::new();
        for (i, v) in verdicts.iter().enumerate() {
            let verdict = match v {
                0 => RequestVerdict::Ok,
                1 => RequestVerdict::Degraded,
                2 => RequestVerdict::Error,
                _ => RequestVerdict::Cancelled,
            };
            let id = format!("req-{i:08x}");
            if verdict != RequestVerdict::Ok {
                interesting_ids.push(id.clone());
            }
            recorder.record(RecordedRequest {
                request_id: id.clone(),
                verdict,
                latency_ms: 1.0,
                trace: Trace::empty(&id),
            });
        }
        let stats = recorder.stats();
        prop_assert_eq!(stats.evicted_interesting, 0);
        prop_assert_eq!(stats.seen, verdicts.len() as u64);
        prop_assert_eq!(stats.seen_interesting, interesting_ids.len() as u64);
        prop_assert_eq!(
            stats.seen,
            stats.seen_interesting + stats.kept_normal + stats.sampled_out
        );
        let kept: std::collections::HashSet<String> = recorder
            .contents()
            .into_iter()
            .map(|r| r.request_id)
            .collect();
        for id in &interesting_ids {
            prop_assert!(kept.contains(id), "lost interesting request {id}");
        }
        prop_assert!(recorder.len() <= 512 + 16);
    }
}
