//! Enterprise domain specification and seeded data generation.
//!
//! The BIRD benchmark spans 95 real databases; this substitute generates
//! several *enterprise star-schema* domains in the mold of the paper's
//! running example (a sports holding company with `SPORTS_FINANCIALS` and
//! `SPORTS_VIEWERSHIP` fact tables, an ownership flag behind "our", and
//! acronym metrics like QoQFP and RPV). Each domain instantiates the same
//! shape with its own vocabulary, so task templates are written once.

use genedit_knowledge::Intent;
use genedit_sql::catalog::{Column, Database, Table};
use genedit_sql::value::{DataType, Date, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Static description of one enterprise domain.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Short key, e.g. `sports`.
    pub key: &'static str,
    /// Database name.
    pub db_name: &'static str,
    /// Word for the entities in questions ("sports organisations").
    pub entity_word: &'static str,
    /// Word for the primary metric in questions ("revenue").
    pub metric_word: &'static str,
    /// Word for the secondary metric ("viewership").
    pub metric2_word: &'static str,

    pub entity_table: &'static str,
    /// Entity name column (join key, as in the paper's `ORG_NAME`).
    pub entity_col: &'static str,
    pub region_col: &'static str,
    pub flag_col: &'static str,
    /// Flag value marking "our" entities (the paper's `COC`).
    pub flag_val: &'static str,
    pub flag_other: &'static str,
    pub category_col: &'static str,

    pub fact1_table: &'static str,
    pub fact1_col: &'static str,
    pub fact1_date: &'static str,
    pub fact2_table: &'static str,
    pub fact2_col: &'static str,
    pub fact2_date: &'static str,

    /// An unrelated table that acts as a schema distractor.
    pub distractor_table: &'static str,

    /// Domain term for "our entities" (instruction-only knowledge).
    pub our_term: &'static str,
    pub our_meaning: &'static str,
    /// Ratio metric term = fact1 / fact2 (instruction + example).
    pub ratio_term: &'static str,
    pub ratio_meaning: &'static str,
    /// Quarter-over-quarter term (instruction-only; implies the `-1 *`
    /// ranking convention from the paper's Fig. 2 instruction).
    pub qoq_term: &'static str,
    pub qoq_meaning: &'static str,

    pub regions: &'static [&'static str],
    pub categories: &'static [&'static str],
    pub entity_names: &'static [&'static str],
}

impl DomainSpec {
    /// Intent keys for this domain.
    pub fn performance_intent(&self) -> String {
        format!("{}_performance", self.key)
    }

    pub fn engagement_intent(&self) -> String {
        format!("{}_engagement", self.key)
    }

    pub fn directory_intent(&self) -> String {
        format!("{}_directory", self.key)
    }

    pub fn intents(&self) -> Vec<Intent> {
        vec![
            Intent::new(
                self.performance_intent(),
                format!("{} performance", self.metric_word),
                format!(
                    "Questions about {} and {} trends of {}",
                    self.metric_word, self.qoq_term, self.entity_word
                ),
            ),
            Intent::new(
                self.engagement_intent(),
                format!("{} numbers", self.metric2_word),
                format!(
                    "Questions about {} of {}",
                    self.metric2_word, self.entity_word
                ),
            ),
            Intent::new(
                self.directory_intent(),
                format!("{} directory", self.entity_word),
                format!("Lookups and listings of {}", self.entity_word),
            ),
        ]
    }

    /// `(intent, table)` associations for schema grouping.
    pub fn intent_tables(&self) -> Vec<(String, String)> {
        vec![
            (self.performance_intent(), self.fact1_table.to_string()),
            (self.performance_intent(), self.entity_table.to_string()),
            (self.engagement_intent(), self.fact2_table.to_string()),
            (self.engagement_intent(), self.entity_table.to_string()),
            (self.directory_intent(), self.entity_table.to_string()),
        ]
    }
}

/// Generate the seeded database for a domain: entity dimension, two
/// monthly fact tables (2022-01 … 2023-12), and a distractor table.
pub fn generate_database(spec: &DomainSpec, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ fnv(spec.key.as_bytes()));
    let mut db = Database::new(spec.db_name);

    let mut entities = Table::new(
        spec.entity_table,
        vec![
            Column::new(spec.entity_col, DataType::Text)
                .with_description(format!("name of the {}", spec.entity_word)),
            Column::new(spec.region_col, DataType::Text).with_description("operating region"),
            Column::new(spec.flag_col, DataType::Text)
                .with_description(format!("{} = {}", spec.flag_val, spec.our_meaning)),
            Column::new(spec.category_col, DataType::Text),
            Column::new("FOUNDED_YEAR", DataType::Integer),
        ],
    )
    .with_description(format!("directory of {}", spec.entity_word));

    // Deterministic entity attributes: spread regions/flags so every
    // (region, flag) combination is populated — term corruptions must
    // change results to be observable.
    let names: Vec<&str> = spec.entity_names.to_vec();
    let mut rows = Vec::new();
    for (i, name) in names.iter().enumerate() {
        // region (mod 4) and category (mod 3) are coprime cycles, so the
        // 20 entities cover (almost) every region × category × flag cell —
        // task templates slice on all three.
        let region = spec.regions[i % spec.regions.len()];
        let flag = if i % 5 < 3 {
            spec.flag_val
        } else {
            spec.flag_other
        };
        let category = spec.categories[i % spec.categories.len()];
        let founded = 1950 + rng.gen_range(0..70);
        rows.push((i, name.to_string(), region, flag, category, founded));
        entities
            .push_row(vec![
                (*name).into(),
                region.into(),
                flag.into(),
                category.into(),
                Value::Integer(founded as i64),
            ])
            .expect("arity");
    }
    db.add_table(entities).expect("fresh db");

    let mut fact1 = Table::new(
        spec.fact1_table,
        vec![
            Column::new(spec.entity_col, DataType::Text),
            Column::new(spec.fact1_date, DataType::Date),
            Column::new(spec.fact1_col, DataType::Integer)
                .with_description(format!("monthly {}", spec.metric_word)),
            Column::new(spec.region_col, DataType::Text),
            Column::new(spec.flag_col, DataType::Text),
        ],
    )
    .with_description(format!("monthly {} facts", spec.metric_word));
    let mut fact2 = Table::new(
        spec.fact2_table,
        vec![
            Column::new(spec.entity_col, DataType::Text),
            Column::new(spec.fact2_date, DataType::Date),
            Column::new(spec.fact2_col, DataType::Integer)
                .with_description(format!("monthly {}", spec.metric2_word)),
            Column::new(spec.region_col, DataType::Text),
            Column::new(spec.flag_col, DataType::Text),
        ],
    )
    .with_description(format!("monthly {} facts", spec.metric2_word));

    for (i, name, region, flag, _cat, _f) in &rows {
        // A fixed slice of entities lacks fact2 coverage entirely, so
        // "no recorded {metric2}" questions have non-trivial answers —
        // including at least one flagged and one unflagged entity in the
        // region the templates query (indices 12 and 8), so the "our"
        // corruption stays observable on those tasks.
        let has_fact2 = !(*i % 5 == 2 || *i == 8);
        for year in [2022, 2023] {
            for month in 1..=12u8 {
                let date = Date::new(year, month, 1).expect("valid date");
                let base = 50 + (fnv(name.as_bytes()) % 400) as i64;
                let v1 = base + rng.gen_range(0..250);
                fact1
                    .push_row(vec![
                        name.clone().into(),
                        Value::Date(date),
                        Value::Integer(v1),
                        (*region).into(),
                        (*flag).into(),
                    ])
                    .expect("arity");
                if has_fact2 {
                    let v2 = 1_000 + rng.gen_range(0..90_000);
                    fact2
                        .push_row(vec![
                            name.clone().into(),
                            Value::Date(date),
                            Value::Integer(v2),
                            (*region).into(),
                            (*flag).into(),
                        ])
                        .expect("arity");
                }
            }
        }
    }
    db.add_table(fact1).expect("fresh db");
    db.add_table(fact2).expect("fresh db");

    let mut distractor = Table::new(
        spec.distractor_table,
        vec![
            Column::new(spec.entity_col, DataType::Text),
            Column::new("PERSON_NAME", DataType::Text),
            Column::new("ROLE", DataType::Text),
        ],
    )
    .with_description("staff roster (rarely relevant to analytics questions)");
    for (_, name, _, _, _, _) in rows.iter().take(8) {
        for role in ["manager", "analyst"] {
            distractor
                .push_row(vec![
                    name.clone().into(),
                    format!("person_{}", rng.gen_range(0..1000)).into(),
                    role.into(),
                ])
                .expect("arity");
        }
    }
    db.add_table(distractor).expect("fresh db");
    db
}

pub(crate) fn fnv(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::SPORTS;
    use genedit_sql::execute_sql;

    #[test]
    fn database_has_all_tables() {
        let db = generate_database(&SPORTS, 42);
        assert!(db.table(SPORTS.entity_table).is_some());
        assert!(db.table(SPORTS.fact1_table).is_some());
        assert!(db.table(SPORTS.fact2_table).is_some());
        assert!(db.table(SPORTS.distractor_table).is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_database(&SPORTS, 42);
        let b = generate_database(&SPORTS, 42);
        let q = format!(
            "SELECT SUM({}) FROM {}",
            SPORTS.fact1_col, SPORTS.fact1_table
        );
        let ra = execute_sql(&a, &q).unwrap();
        let rb = execute_sql(&b, &q).unwrap();
        assert!(ra.ex_equal(&rb));
        let c = generate_database(&SPORTS, 43);
        let rc = execute_sql(&c, &q).unwrap();
        assert!(!ra.ex_equal(&rc), "different seeds should differ");
    }

    #[test]
    fn flag_filter_changes_results() {
        // The "our" corruption (dropping the flag filter) must change the
        // answer, or the corruption would be unobservable.
        let db = generate_database(&SPORTS, 42);
        let ours = execute_sql(
            &db,
            &format!(
                "SELECT SUM({c}) FROM {t} WHERE {f} = '{v}'",
                c = SPORTS.fact1_col,
                t = SPORTS.fact1_table,
                f = SPORTS.flag_col,
                v = SPORTS.flag_val
            ),
        )
        .unwrap();
        let all = execute_sql(
            &db,
            &format!(
                "SELECT SUM({c}) FROM {t}",
                c = SPORTS.fact1_col,
                t = SPORTS.fact1_table
            ),
        )
        .unwrap();
        assert!(!ours.ex_equal(&all));
    }

    #[test]
    fn every_region_has_both_flags() {
        let db = generate_database(&SPORTS, 42);
        for region in SPORTS.regions {
            for flag in [SPORTS.flag_val, SPORTS.flag_other] {
                let rs = execute_sql(
                    &db,
                    &format!(
                        "SELECT COUNT(*) FROM {t} WHERE {r} = '{region}' AND {f} = '{flag}'",
                        t = SPORTS.entity_table,
                        r = SPORTS.region_col,
                        f = SPORTS.flag_col
                    ),
                )
                .unwrap();
                assert!(rs.rows[0][0].as_i64().unwrap() > 0, "{region}/{flag} empty");
            }
        }
    }

    #[test]
    fn some_entities_lack_fact2() {
        let db = generate_database(&SPORTS, 42);
        let rs = execute_sql(
            &db,
            &format!(
                "SELECT COUNT(*) FROM {e} WHERE {n} NOT IN (SELECT {n} FROM {f2})",
                e = SPORTS.entity_table,
                n = SPORTS.entity_col,
                f2 = SPORTS.fact2_table
            ),
        )
        .unwrap();
        assert!(rs.rows[0][0].as_i64().unwrap() > 0);
    }

    #[test]
    fn schema_descriptions_present() {
        let db = generate_database(&SPORTS, 42);
        let t = db.table(SPORTS.fact1_table).unwrap();
        assert!(t.description.as_deref().unwrap().contains("monthly"));
    }
}
