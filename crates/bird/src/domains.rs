//! The four enterprise domains of the benchmark suite.
//!
//! `SPORTS` mirrors the paper's running example (a holding company with
//! ownership in multiple sports organizations, QoQFP/RPV terminology, the
//! `COC` ownership flag behind "our"); the other three re-instantiate the
//! same enterprise shape with different vocabulary, standing in for BIRD's
//! domain diversity.

use crate::spec::DomainSpec;

pub static SPORTS: DomainSpec = DomainSpec {
    key: "sports",
    db_name: "sports_holding",
    entity_word: "sports organisations",
    metric_word: "revenue",
    metric2_word: "viewership",
    entity_table: "SPORTS_ORGS",
    entity_col: "ORG_NAME",
    region_col: "COUNTRY",
    flag_col: "OWNERSHIP_FLAG",
    flag_val: "COC",
    flag_other: "EXT",
    category_col: "SPORT",
    fact1_table: "SPORTS_FINANCIALS",
    fact1_col: "REVENUE",
    fact1_date: "FIN_MONTH",
    fact2_table: "SPORTS_VIEWERSHIP",
    fact2_col: "VIEWS",
    fact2_date: "VIEW_MONTH",
    distractor_table: "SPORTS_ROSTER",
    our_term: "COC",
    our_meaning: "organizations owned by the holding company; 'our' means OWNERSHIP_FLAG = 'COC'",
    ratio_term: "RPV",
    ratio_meaning: "revenue per viewer: total REVENUE divided by total VIEWS",
    qoq_term: "QoQFP",
    qoq_meaning: "quarter-over-quarter financial performance; rank changes with a -1 multiplier so declines rank first when asked for worst",
    regions: &["Canada", "USA", "Mexico", "Brazil"],
    categories: &["hockey", "soccer", "basketball"],
    entity_names: &[
        "Aurora Blades", "Borealis FC", "Cascade Hoops", "Delta Pumas", "Ember Foxes",
        "Frostline SC", "Glacier Kings", "Harbor Sharks", "Ironwood United", "Juniper Jets",
        "Koda Bears", "Lumen Lynx", "Meridian Owls", "Northgate Wolves", "Opal Raptors",
        "Pinecrest Rovers", "Quartz Titans", "Redrock Bulls", "Summit Eagles", "Tundra Hawks",
    ],
};

pub static RETAIL: DomainSpec = DomainSpec {
    key: "retail",
    db_name: "retail_chain",
    entity_word: "store brands",
    metric_word: "sales",
    metric2_word: "foot traffic",
    entity_table: "RETAIL_BRANDS",
    entity_col: "BRAND_NAME",
    region_col: "REGION",
    flag_col: "FRANCHISE_FLAG",
    flag_val: "OWN",
    flag_other: "FRN",
    category_col: "SEGMENT",
    fact1_table: "RETAIL_SALES",
    fact1_col: "SALES_AMT",
    fact1_date: "SALES_MONTH",
    fact2_table: "RETAIL_TRAFFIC",
    fact2_col: "VISITS",
    fact2_date: "TRAFFIC_MONTH",
    distractor_table: "RETAIL_STAFF",
    our_term: "OWN",
    our_meaning: "corporate-owned brands; 'our' means FRANCHISE_FLAG = 'OWN'",
    ratio_term: "SPV",
    ratio_meaning: "sales per visit: total SALES_AMT divided by total VISITS",
    qoq_term: "QoQSG",
    qoq_meaning: "quarter-over-quarter sales growth; rank changes with a -1 multiplier so declines rank first when asked for worst",
    regions: &["North", "South", "East", "West"],
    categories: &["grocery", "apparel", "electronics"],
    entity_names: &[
        "Acorn Market", "Birch Basket", "Cedar Cart", "Dune Depot", "Elm Emporium",
        "Fern Foods", "Grove Goods", "Hazel House", "Iris Outfitters", "Jade Junction",
        "Kelp Corner", "Linden Lane", "Maple Mart", "Nettle Nook", "Oak Outlet",
        "Poppy Plaza", "Quince Quarter", "Rowan Retail", "Sage Stop", "Thistle Trade",
    ],
};

pub static HEALTH: DomainSpec = DomainSpec {
    key: "health",
    db_name: "health_network",
    entity_word: "clinics",
    metric_word: "billing",
    metric2_word: "patient visits",
    entity_table: "HEALTH_CLINICS",
    entity_col: "CLINIC_NAME",
    region_col: "STATE",
    flag_col: "NETWORK_FLAG",
    flag_val: "INN",
    flag_other: "OON",
    category_col: "SPECIALTY",
    fact1_table: "HEALTH_BILLING",
    fact1_col: "BILLED_AMT",
    fact1_date: "BILL_MONTH",
    fact2_table: "HEALTH_VISITS",
    fact2_col: "VISIT_COUNT",
    fact2_date: "VISIT_MONTH",
    distractor_table: "HEALTH_STAFF",
    our_term: "INN",
    our_meaning: "in-network clinics; 'our' means NETWORK_FLAG = 'INN'",
    ratio_term: "BPV",
    ratio_meaning: "billing per visit: total BILLED_AMT divided by total VISIT_COUNT",
    qoq_term: "QoQBG",
    qoq_meaning: "quarter-over-quarter billing growth; rank changes with a -1 multiplier so declines rank first when asked for worst",
    regions: &["WA", "OR", "CA", "NV"],
    categories: &["pediatrics", "cardiology", "orthopedics"],
    entity_names: &[
        "Alder Clinic", "Basalt Health", "Cypress Care", "Dahlia Medical", "Echo Wellness",
        "Fir Family Care", "Garnet Health", "Heron Clinic", "Inlet Medical", "Jasper Care",
        "Kestrel Health", "Laurel Clinic", "Mesa Medical", "Nimbus Care", "Onyx Health",
        "Prairie Clinic", "Quill Medical", "Ridge Care", "Sequoia Health", "Talus Clinic",
    ],
};

pub static LOGISTICS: DomainSpec = DomainSpec {
    key: "logistics",
    db_name: "logistics_network",
    entity_word: "shipping hubs",
    metric_word: "freight volume",
    metric2_word: "deliveries",
    entity_table: "LOGI_HUBS",
    entity_col: "HUB_NAME",
    region_col: "ZONE",
    flag_col: "OPERATOR_FLAG",
    flag_val: "SELF",
    flag_other: "3PL",
    category_col: "MODE",
    fact1_table: "LOGI_FREIGHT",
    fact1_col: "TONNAGE",
    fact1_date: "FREIGHT_MONTH",
    fact2_table: "LOGI_DELIVERIES",
    fact2_col: "DELIVERED",
    fact2_date: "DELIVERY_MONTH",
    distractor_table: "LOGI_STAFF",
    our_term: "SELF",
    our_meaning: "self-operated hubs; 'our' means OPERATOR_FLAG = 'SELF'",
    ratio_term: "TPD",
    ratio_meaning: "tonnage per delivery: total TONNAGE divided by total DELIVERED",
    qoq_term: "QoQVG",
    qoq_meaning: "quarter-over-quarter volume growth; rank changes with a -1 multiplier so declines rank first when asked for worst",
    regions: &["Pacific", "Mountain", "Central", "Atlantic"],
    categories: &["air", "rail", "road"],
    entity_names: &[
        "Anchor Hub", "Beacon Point", "Compass Yard", "Drift Station", "Ember Port",
        "Falcon Cross", "Gateway Nine", "Horizon Dock", "Ivory Junction", "Jetstream Hub",
        "Keystone Yard", "Lantern Port", "Mistral Station", "Nomad Cross", "Orbit Dock",
        "Pioneer Hub", "Quarry Point", "Rambler Yard", "Storm Port", "Transit Western",
    ],
};

/// All benchmark domains in canonical order.
pub fn all_domains() -> [&'static DomainSpec; 4] {
    [&SPORTS, &RETAIL, &HEALTH, &LOGISTICS]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_keys_unique() {
        let mut keys: Vec<&str> = all_domains().iter().map(|d| d.key).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 4);
    }

    #[test]
    fn table_names_unique_across_domains() {
        let mut tables: Vec<&str> = all_domains()
            .iter()
            .flat_map(|d| {
                [
                    d.entity_table,
                    d.fact1_table,
                    d.fact2_table,
                    d.distractor_table,
                ]
            })
            .collect();
        let before = tables.len();
        tables.sort();
        tables.dedup();
        assert_eq!(tables.len(), before);
    }

    #[test]
    fn enough_entities_regions_categories() {
        for d in all_domains() {
            assert!(d.entity_names.len() >= 20, "{}", d.key);
            assert!(d.regions.len() >= 4);
            assert!(d.categories.len() >= 3);
        }
    }

    #[test]
    fn terms_are_distinct_per_domain() {
        for d in all_domains() {
            assert_ne!(d.ratio_term, d.qoq_term);
            assert_ne!(d.our_term, d.ratio_term);
        }
    }
}
