//! Execution Accuracy evaluation and reporting (paper §3.3.2).

use genedit_llm::Difficulty;
use genedit_sql::catalog::Database;
use genedit_sql::exec::execute_sql;
use genedit_telemetry::OperatorStats;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a method produced for one task.
#[derive(Debug, Clone, Default)]
pub struct Prediction {
    /// The final SQL, `None` when the method gave up.
    pub sql: Option<String>,
    /// Total generation attempts (1 = no self-correction needed).
    pub attempts: usize,
    /// Free-text note (e.g. the last error).
    pub note: Option<String>,
}

/// Score a prediction against the gold query under EX semantics: the
/// prediction must execute and return the same row multiset.
pub fn score_prediction(
    db: &Database,
    gold_sql: &str,
    predicted: Option<&str>,
) -> (bool, Option<String>) {
    let gold = match execute_sql(db, gold_sql) {
        Ok(rs) => rs,
        Err(e) => return (false, Some(format!("gold failed (benchmark bug): {e}"))),
    };
    let sql = match predicted {
        Some(s) => s,
        None => return (false, Some("no prediction".into())),
    };
    match execute_sql(db, sql) {
        Ok(rs) => {
            if gold.ex_equal(&rs) {
                (true, None)
            } else {
                (false, Some("wrong result".into()))
            }
        }
        Err(e) => (false, Some(e.to_string())),
    }
}

/// Outcome of one task under one method.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskOutcome {
    pub task_id: String,
    pub difficulty: Difficulty,
    pub correct: bool,
    pub attempts: usize,
    pub note: Option<String>,
}

/// Aggregated results of one method over a suite.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    pub method: String,
    pub outcomes: Vec<TaskOutcome>,
    /// Per-span-name time/call/LLM-attribution breakdown, aggregated from
    /// the generation traces (empty for methods run without telemetry).
    pub operators: BTreeMap<String, OperatorStats>,
}

impl EvalReport {
    pub fn new(method: impl Into<String>) -> EvalReport {
        EvalReport {
            method: method.into(),
            outcomes: Vec::new(),
            operators: BTreeMap::new(),
        }
    }

    pub fn push(&mut self, outcome: TaskOutcome) {
        self.outcomes.push(outcome);
    }

    /// Attach the operator breakdown computed from generation traces.
    pub fn set_operators(&mut self, operators: BTreeMap<String, OperatorStats>) {
        self.operators = operators;
    }

    fn slice(&self, difficulty: Option<Difficulty>) -> Vec<&TaskOutcome> {
        self.outcomes
            .iter()
            .filter(|o| difficulty.map(|d| o.difficulty == d).unwrap_or(true))
            .collect()
    }

    /// Execution accuracy in percent over a stratum (or all tasks).
    pub fn ex(&self, difficulty: Option<Difficulty>) -> f64 {
        let rows = self.slice(difficulty);
        if rows.is_empty() {
            return 0.0;
        }
        100.0 * rows.iter().filter(|o| o.correct).count() as f64 / rows.len() as f64
    }

    pub fn count(&self, difficulty: Option<Difficulty>) -> usize {
        self.slice(difficulty).len()
    }

    pub fn mean_attempts(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.attempts).sum::<usize>() as f64 / self.outcomes.len() as f64
    }

    /// One row of a Table-1-style report.
    pub fn table_row(&self) -> String {
        format!(
            "{:<22} {:>7.2} {:>9.2} {:>12.2} {:>7.2}",
            self.method,
            self.ex(Some(Difficulty::Simple)),
            self.ex(Some(Difficulty::Moderate)),
            self.ex(Some(Difficulty::Challenging)),
            self.ex(None),
        )
    }

    /// Header matching [`EvalReport::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<22} {:>7} {:>9} {:>12} {:>7}",
            "Method", "Simple", "Moderate", "Challenging", "All"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_sql::catalog::{Column, Table};
    use genedit_sql::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        let mut t = Table::new("T", vec![Column::new("A", DataType::Integer)]);
        for i in 0..5 {
            t.push_row(vec![Value::Integer(i)]).unwrap();
        }
        db.add_table(t).unwrap();
        db
    }

    #[test]
    fn scoring_correct_and_wrong() {
        let db = db();
        let (ok, note) = score_prediction(&db, "SELECT SUM(A) FROM T", Some("SELECT 10"));
        assert!(ok);
        assert!(note.is_none());
        let (ok, note) = score_prediction(&db, "SELECT SUM(A) FROM T", Some("SELECT 11"));
        assert!(!ok);
        assert_eq!(note.as_deref(), Some("wrong result"));
    }

    #[test]
    fn scoring_execution_error() {
        let db = db();
        let (ok, note) = score_prediction(&db, "SELECT 1", Some("SELECT * FROM NOPE"));
        assert!(!ok);
        assert!(note.unwrap().contains("binding"));
        let (ok, _) = score_prediction(&db, "SELECT 1", None);
        assert!(!ok);
    }

    #[test]
    fn report_aggregation() {
        let mut r = EvalReport::new("test");
        for (d, correct) in [
            (Difficulty::Simple, true),
            (Difficulty::Simple, false),
            (Difficulty::Moderate, true),
            (Difficulty::Challenging, false),
        ] {
            r.push(TaskOutcome {
                task_id: "x".into(),
                difficulty: d,
                correct,
                attempts: 1,
                note: None,
            });
        }
        assert_eq!(r.ex(Some(Difficulty::Simple)), 50.0);
        assert_eq!(r.ex(Some(Difficulty::Moderate)), 100.0);
        assert_eq!(r.ex(Some(Difficulty::Challenging)), 0.0);
        assert_eq!(r.ex(None), 50.0);
        assert_eq!(r.count(None), 4);
        let row = r.table_row();
        assert!(row.contains("test"));
        assert!(row.contains("50.00"));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = EvalReport::new("empty");
        assert_eq!(r.ex(None), 0.0);
        assert_eq!(r.mean_attempts(), 0.0);
    }
}
