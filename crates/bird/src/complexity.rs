//! Parametric complexity sweep (experiment E6).
//!
//! §3.3.4 reports that a simpler fine-tuned approach beats GenEdit on BIRD
//! yet "can't handle the same query complexity", which is why GenEdit
//! ships in production. This module generates a family of tasks whose gold
//! queries chain `depth` CTE stages, so the crossover can be measured.

use crate::spec::DomainSpec;
use genedit_llm::{Difficulty, TaskKnowledge};
use genedit_sql::analysis::complexity;
use genedit_sql::ast::Statement;
use genedit_sql::parser::parse_statement;

/// Build a chained-CTE task of the given depth (1..=8) over a domain,
/// returning the top `k` rows.
///
/// Stage 0 aggregates the fact table per entity; each further stage
/// alternates between window-ranking the previous stage and re-filtering
/// it, so complexity grows roughly linearly in `depth`.
pub fn sweep_task_with_k(spec: &DomainSpec, depth: usize, year: i32, k: usize) -> TaskKnowledge {
    assert!((1..=8).contains(&depth), "depth must be in 1..=8");
    let n = spec.entity_col;
    let v = spec.fact1_col;
    let f = spec.fact1_table;
    let d = spec.fact1_date;

    let mut ctes: Vec<String> = vec![format!(
        "S0 AS (SELECT {n}, SUM({v}) AS M0 FROM {f} \
         WHERE TO_CHAR({d}, 'YYYY') = '{year}' GROUP BY {n})"
    )];
    let mut prev_metric = "M0".to_string();
    for stage in 1..depth {
        let prev = format!("S{}", stage - 1);
        let cur_metric = format!("M{stage}");
        let body = if stage % 2 == 1 {
            // Rank the previous stage and keep a prefix.
            format!(
                "S{stage} AS (SELECT {n}, {prev_metric} AS {cur_metric}, \
                 ROW_NUMBER() OVER (ORDER BY {prev_metric} DESC) AS R{stage} FROM {prev})"
            )
        } else {
            // Filter by the previous stage's rank and rescale.
            format!(
                "S{stage} AS (SELECT {n}, {prev_metric} * 2 AS {cur_metric} \
                 FROM {prev} WHERE R{} <= {})",
                stage - 1,
                18 - stage
            )
        };
        ctes.push(body);
        prev_metric = cur_metric;
    }
    let last = format!("S{}", depth - 1);
    let sql = format!(
        "WITH {} SELECT {n}, {prev_metric} FROM {last} ORDER BY {prev_metric} DESC, {n} LIMIT {k}",
        ctes.join(", ")
    );

    let Statement::Query(q) = parse_statement(&sql)
        .unwrap_or_else(|e| panic!("sweep depth {depth} does not parse: {e}\n{sql}"));
    let score = complexity(&q).total();
    let difficulty = if score < 10 {
        Difficulty::Simple
    } else if score < 20 {
        Difficulty::Moderate
    } else {
        Difficulty::Challenging
    };

    TaskKnowledge {
        task_id: format!("{}-sweep-d{depth}-y{year}-k{k}", spec.key),
        // `depth{n}` is one token so the question can never collide with
        // another (depth, k) variant under token-set normalization
        // ("stage-4 … top 5" vs "stage-5 … top 4" would).
        question: format!(
            "Run the {} {} pipeline rollup at depth{depth} for {year} and show the top {k}",
            spec.key, spec.metric_word
        ),
        db_name: spec.db_name.to_string(),
        gold_sql: sql,
        intent: spec.performance_intent(),
        difficulty,
        required_terms: vec![],
        required_tables: vec![f.to_string()],
        required_columns: vec![n.to_uppercase(), v.to_uppercase(), d.to_uppercase()],
        evidence: vec![],
        distractor_table: Some(spec.distractor_table.to_string()),
        distractor_column: Some((v.to_string(), format!("{v}_ADJ"))),
    }
}

/// One sweep task per depth with the default top-5.
pub fn sweep_task(spec: &DomainSpec, depth: usize, year: i32) -> TaskKnowledge {
    sweep_task_with_k(spec, depth, year, 5)
}

/// The full sweep: depths 1..=8, default top-5.
pub fn sweep_tasks(spec: &DomainSpec, year: i32) -> Vec<TaskKnowledge> {
    (1..=8).map(|depth| sweep_task(spec, depth, year)).collect()
}

/// A denser sweep: every (year, k) variant per depth, for smoother
/// per-depth accuracy estimates.
pub fn sweep_variants(spec: &DomainSpec, depth: usize) -> Vec<TaskKnowledge> {
    let mut out = Vec::new();
    for year in [2022, 2023] {
        for k in [3, 4, 5, 6, 7, 8, 9, 10] {
            out.push(sweep_task_with_k(spec, depth, year, k));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::SPORTS;
    use crate::spec::generate_database;
    use genedit_sql::execute_sql;

    #[test]
    fn sweep_tasks_execute_and_grow() {
        let db = generate_database(&SPORTS, 42);
        let mut prev = 0;
        for task in sweep_tasks(&SPORTS, 2023) {
            let rs = execute_sql(&db, &task.gold_sql)
                .unwrap_or_else(|e| panic!("{}: {e}", task.task_id));
            assert!(!rs.rows.is_empty(), "{} empty", task.task_id);
            let score = complexity(&task.gold_query()).total();
            assert!(score >= prev, "complexity should be non-decreasing");
            prev = score;
        }
        // The deepest sweep must exceed the oracle capacity by a lot.
        assert!(prev > 30, "max sweep complexity {prev} too low");
    }

    #[test]
    fn depth_bounds_enforced() {
        let r = std::panic::catch_unwind(|| sweep_task(&SPORTS, 9, 2023));
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| sweep_task(&SPORTS, 0, 2023));
        assert!(r.is_err());
    }

    #[test]
    fn sweep_ids_and_questions_distinct() {
        let tasks = sweep_tasks(&SPORTS, 2023);
        let mut ids: Vec<_> = tasks.iter().map(|t| t.task_id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }
}
