//! Workload assembly: databases + knowledge sources + tasks per domain.
//!
//! The standard suite mirrors the scale of the paper's evaluation (§3.3.1:
//! a 10% sample of the BIRD dev set — 93 simple, 28 moderate, and 11
//! challenging questions, matching the per-stratum denominators implied by
//! Table 1's percentages).

use crate::domains::{all_domains, HEALTH, LOGISTICS, RETAIL, SPORTS};
use crate::spec::{generate_database, DomainSpec};
use crate::templates::generate_tasks;
use genedit_knowledge::{
    build_knowledge_set, DomainDocument, Guideline, KnowledgeSet, PreprocessConfig, QueryLogEntry,
    TermDefinition,
};
use genedit_llm::{TaskKnowledge, TaskRegistry};
use genedit_sql::catalog::Database;

/// Everything belonging to one enterprise domain.
pub struct DomainBundle {
    pub spec: &'static DomainSpec,
    pub db: Database,
    pub logs: Vec<QueryLogEntry>,
    pub docs: Vec<DomainDocument>,
    pub tasks: Vec<TaskKnowledge>,
}

impl DomainBundle {
    pub fn build(spec: &'static DomainSpec, counts: (usize, usize, usize), seed: u64) -> Self {
        let db = generate_database(spec, seed);
        let logs = historical_logs(spec);
        let docs = domain_docs(spec);
        let tasks = generate_tasks(spec, counts, seed);
        DomainBundle {
            spec,
            db,
            logs,
            docs,
            tasks,
        }
    }

    /// Pre-processing config (intents + schema grouping) for this domain.
    pub fn preprocess_config(&self) -> PreprocessConfig {
        let mut c = PreprocessConfig::new(self.spec.intents());
        c.intent_tables = self.spec.intent_tables();
        c
    }

    /// Run the paper's pre-processing phase for this domain.
    pub fn build_knowledge(&self) -> KnowledgeSet {
        build_knowledge_set(&self.preprocess_config(), &self.logs, &self.docs, &self.db)
            .expect("historical logs are valid SQL")
    }
}

/// The full benchmark workload.
pub struct Workload {
    pub domains: Vec<DomainBundle>,
    pub seed: u64,
}

impl Workload {
    /// The paper-scale suite: 93 / 28 / 11 tasks across four domains.
    pub fn standard(seed: u64) -> Workload {
        let counts = [
            (&SPORTS, (24, 7, 3)),
            (&RETAIL, (23, 7, 3)),
            (&HEALTH, (23, 7, 3)),
            (&LOGISTICS, (23, 7, 2)),
        ];
        Workload {
            domains: counts
                .into_iter()
                .map(|(spec, c)| DomainBundle::build(spec, c, seed))
                .collect(),
            seed,
        }
    }

    /// A small suite for tests: 7 tasks per domain.
    pub fn small(seed: u64) -> Workload {
        Workload {
            domains: all_domains()
                .into_iter()
                .map(|spec| DomainBundle::build(spec, (4, 2, 1), seed))
                .collect(),
            seed,
        }
    }

    pub fn all_tasks(&self) -> impl Iterator<Item = &TaskKnowledge> {
        self.domains.iter().flat_map(|d| d.tasks.iter())
    }

    /// Stratified sub-sample, the paper's §3.3.1 evaluation protocol
    /// ("we use the dev set by sampling 10% of each database"): from each
    /// domain, keep `fraction` of the tasks *per difficulty stratum*
    /// (rounded up so no stratum empties), chosen deterministically from
    /// `sample_seed`. Databases, logs, and documents are kept whole.
    pub fn sample(&self, fraction: f64, sample_seed: u64) -> Workload {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let domains = self
            .domains
            .iter()
            .map(|bundle| {
                let mut tasks: Vec<TaskKnowledge> = Vec::new();
                for difficulty in [
                    genedit_llm::Difficulty::Simple,
                    genedit_llm::Difficulty::Moderate,
                    genedit_llm::Difficulty::Challenging,
                ] {
                    let stratum: Vec<&TaskKnowledge> = bundle
                        .tasks
                        .iter()
                        .filter(|t| t.difficulty == difficulty)
                        .collect();
                    if stratum.is_empty() {
                        continue;
                    }
                    let keep =
                        ((stratum.len() as f64 * fraction).ceil() as usize).clamp(1, stratum.len());
                    // Deterministic choice: rank by a per-task hash.
                    let mut ranked: Vec<(&&TaskKnowledge, u64)> = stratum
                        .iter()
                        .map(|t| {
                            (
                                t,
                                genedit_llm::hash_u64(&[&t.task_id, "sample"], sample_seed),
                            )
                        })
                        .collect();
                    ranked.sort_by_key(|(_, h)| *h);
                    tasks.extend(ranked.into_iter().take(keep).map(|(t, _)| (*t).clone()));
                }
                DomainBundle {
                    spec: bundle.spec,
                    db: bundle.db.clone(),
                    logs: bundle.logs.clone(),
                    docs: bundle.docs.clone(),
                    tasks,
                }
            })
            .collect();
        Workload {
            domains,
            seed: self.seed,
        }
    }

    pub fn task_count(&self) -> usize {
        self.domains.iter().map(|d| d.tasks.len()).sum()
    }

    /// Task registry for the oracle model.
    pub fn registry(&self) -> TaskRegistry {
        let mut r = TaskRegistry::new();
        for t in self.all_tasks() {
            r.register(t.clone());
        }
        r
    }

    pub fn database(&self, db_name: &str) -> Option<&Database> {
        self.domains
            .iter()
            .find(|d| d.db.name.eq_ignore_ascii_case(db_name))
            .map(|d| &d.db)
    }

    pub fn domain_for_task(&self, task: &TaskKnowledge) -> Option<&DomainBundle> {
        self.domains.iter().find(|d| d.db.name == task.db_name)
    }
}

/// Historical query logs (§2.1 input i): prior executions whose
/// decomposition seeds the example store. Shapes intentionally overlap
/// with the task templates — analysts ran similar queries before — but
/// with different parameters.
fn historical_logs(spec: &DomainSpec) -> Vec<QueryLogEntry> {
    let n = spec.entity_col;
    let e = spec.entity_table;
    let f1 = spec.fact1_table;
    let f2 = spec.fact2_table;
    let v1 = spec.fact1_col;
    let v2 = spec.fact2_col;
    let d1 = spec.fact1_date;
    let d2 = spec.fact2_date;
    let r = spec.region_col;
    let fl = spec.flag_col;
    let fv = spec.flag_val;
    let region = spec.regions[0];
    let perf = spec.performance_intent();
    let eng = spec.engagement_intent();
    let dir = spec.directory_intent();

    vec![
        QueryLogEntry {
            log_id: 1,
            question: format!(
                "our {} with the best and worst {} in {} for 2022Q3",
                spec.entity_word, spec.qoq_term, region
            ),
            sql: format!(
                "WITH FIN AS ( \
                   SELECT {n}, \
                     SUM(CASE WHEN TO_CHAR({d1}, 'YYYY\"Q\"Q') = '2022Q2' THEN {v1} ELSE 0 END) AS M1_A, \
                     SUM(CASE WHEN TO_CHAR({d1}, 'YYYY\"Q\"Q') = '2022Q3' THEN {v1} ELSE 0 END) AS M1_B \
                   FROM {f1} WHERE {r} = '{region}' AND {fl} = '{fv}' GROUP BY {n} \
                 ), \
                 ENG AS ( \
                   SELECT {n}, \
                     SUM(CASE WHEN TO_CHAR({d2}, 'YYYY\"Q\"Q') = '2022Q2' THEN {v2} ELSE 0 END) AS M2_A, \
                     SUM(CASE WHEN TO_CHAR({d2}, 'YYYY\"Q\"Q') = '2022Q3' THEN {v2} ELSE 0 END) AS M2_B \
                   FROM {f2} WHERE {r} = '{region}' AND {fl} = '{fv}' GROUP BY {n} \
                 ), \
                 CHANGE AS ( \
                   SELECT f.{n}, \
                     ROW_NUMBER() OVER (ORDER BY (-1 * (CAST(f.M1_B AS FLOAT) / NULLIF(e.M2_B, 0) - \
                       CAST(f.M1_A AS FLOAT) / NULLIF(e.M2_A, 0)))) AS BEST_RANK \
                   FROM FIN f JOIN ENG e ON f.{n} = e.{n} \
                 ) \
                 SELECT BEST_RANK, {n} FROM CHANGE WHERE BEST_RANK <= 5 ORDER BY BEST_RANK"
            ),
            intent: Some(perf.clone()),
        },
        QueryLogEntry {
            log_id: 2,
            question: format!("total {} per {} in 2022", spec.metric_word, spec.entity_word),
            sql: format!(
                "SELECT {n}, SUM({v1}) AS TOTAL FROM {f1} \
                 WHERE TO_CHAR({d1}, 'YYYY') = '2022' GROUP BY {n} ORDER BY TOTAL DESC LIMIT 10"
            ),
            intent: Some(perf.clone()),
        },
        QueryLogEntry {
            log_id: 3,
            question: format!("{} located in {}", spec.entity_word, region),
            sql: format!("SELECT {n} FROM {e} WHERE {r} = '{region}' ORDER BY {n}"),
            intent: Some(dir),
        },
        QueryLogEntry {
            log_id: 4,
            question: format!(
                "our {} without any {} data",
                spec.entity_word, spec.metric2_word
            ),
            sql: format!(
                "SELECT a.{n} FROM {e} a LEFT JOIN {f2} b ON a.{n} = b.{n} \
                 WHERE a.{fl} = '{fv}' AND b.{v2} IS NULL ORDER BY a.{n}"
            ),
            intent: Some(eng.clone()),
        },
        QueryLogEntry {
            log_id: 5,
            question: format!("{} per {} for 2022Q4", spec.ratio_term, spec.entity_word),
            sql: format!(
                "WITH A AS (SELECT {n}, SUM({v1}) AS M1 FROM {f1} \
                   WHERE TO_CHAR({d1}, 'YYYY\"Q\"Q') = '2022Q4' GROUP BY {n}), \
                 B AS (SELECT {n}, SUM({v2}) AS M2 FROM {f2} \
                   WHERE TO_CHAR({d2}, 'YYYY\"Q\"Q') = '2022Q4' GROUP BY {n}) \
                 SELECT a.{n}, CAST(a.M1 AS FLOAT) / NULLIF(b.M2, 0) AS RATIO \
                 FROM A a JOIN B b ON a.{n} = b.{n} ORDER BY RATIO DESC"
            ),
            intent: Some(perf.clone()),
        },
        QueryLogEntry {
            log_id: 6,
            question: format!(
                "quarterly {} comparison per {} in {}",
                spec.metric_word, spec.entity_word, region
            ),
            sql: format!(
                "SELECT {n}, \
                   SUM(CASE WHEN TO_CHAR({d1}, 'YYYY\"Q\"Q') = '2022Q1' THEN {v1} ELSE 0 END) AS Q1_M, \
                   SUM(CASE WHEN TO_CHAR({d1}, 'YYYY\"Q\"Q') = '2022Q2' THEN {v1} ELSE 0 END) AS Q2_M \
                 FROM {f1} WHERE {r} = '{region}' GROUP BY {n} HAVING SUM({v1}) > 0 ORDER BY {n}"
            ),
            intent: Some(perf),
        },
    ]
}

/// Domain documents (§2.1 input ii): terminology and practices. The
/// "our"/flag and QoQ terms are *instruction-only* knowledge; the ratio
/// term also ships a SQL example — this split is what makes the paper's
/// "w/o Instructions" ablation bite hardest (Table 2).
fn domain_docs(spec: &DomainSpec) -> Vec<DomainDocument> {
    let perf = spec.performance_intent();
    vec![DomainDocument {
        doc_id: 100 + crate::spec::fnv(spec.key.as_bytes()) % 100,
        title: format!("{} analytics handbook", spec.key),
        terms: vec![
            TermDefinition {
                term: spec.our_term.to_string(),
                meaning: spec.our_meaning.to_string(),
                sql: None,
                intent: Some(perf.clone()),
            },
            TermDefinition {
                term: spec.ratio_term.to_string(),
                meaning: spec.ratio_meaning.to_string(),
                sql: Some(format!(
                    "CAST(SUM({}) AS FLOAT) / NULLIF(SUM({}), 0)",
                    spec.fact1_col, spec.fact2_col
                )),
                intent: Some(perf.clone()),
            },
            TermDefinition {
                term: spec.qoq_term.to_string(),
                meaning: spec.qoq_meaning.to_string(),
                sql: None,
                intent: Some(perf.clone()),
            },
        ],
        guidelines: vec![
            Guideline {
                text: "Use conditional aggregation (SUM of CASE WHEN) when comparing metric \
                       values across periods"
                    .to_string(),
                sql_hint: Some(
                    "SUM(CASE WHEN TO_CHAR(month_col, 'YYYY\"Q\"Q') = '2023Q2' THEN metric \
                     ELSE 0 END)"
                        .to_string(),
                ),
                intent: Some(perf.clone()),
                section: "periods".into(),
            },
            Guideline {
                text: "Apply a -1 multiplier when calculating the change in performance metrics \
                       so that ranking ascending puts the best performer first"
                    .to_string(),
                sql_hint: Some("-1 * (metric_b - metric_a)".to_string()),
                intent: Some(perf),
                section: "metrics".into(),
            },
            Guideline {
                text: format!(
                    "Quarter labels use TO_CHAR({}, 'YYYY\"Q\"Q'), e.g. '2023Q2'",
                    spec.fact1_date
                ),
                sql_hint: None,
                intent: None,
                section: "dates".into(),
            },
        ],
    }]
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_llm::Difficulty;
    use genedit_sql::execute_sql;

    #[test]
    fn standard_suite_matches_paper_strata() {
        let w = Workload::standard(42);
        let count = |d: Difficulty| w.all_tasks().filter(|t| t.difficulty == d).count();
        assert_eq!(count(Difficulty::Simple), 93);
        assert_eq!(count(Difficulty::Moderate), 28);
        assert_eq!(count(Difficulty::Challenging), 11);
        assert_eq!(w.task_count(), 132);
    }

    #[test]
    fn registry_finds_every_task() {
        let w = Workload::small(42);
        let reg = w.registry();
        for t in w.all_tasks() {
            let hit = reg.lookup(&t.question).expect("task should be found");
            assert_eq!(hit.task_id, t.task_id, "wrong task for {:?}", t.question);
        }
    }

    #[test]
    fn stratified_sample_keeps_every_stratum() {
        let w = Workload::standard(42);
        let s = w.sample(0.1, 7);
        // Each domain keeps at least one task of every difficulty it had.
        for (full, sampled) in w.domains.iter().zip(s.domains.iter()) {
            for d in [
                Difficulty::Simple,
                Difficulty::Moderate,
                Difficulty::Challenging,
            ] {
                let had = full.tasks.iter().any(|t| t.difficulty == d);
                let kept = sampled.tasks.iter().any(|t| t.difficulty == d);
                assert_eq!(had, kept, "{} stratum {d:?}", full.spec.key);
            }
        }
        // Roughly 10%, rounded up per stratum.
        assert!(
            s.task_count() >= 13 && s.task_count() <= 30,
            "{}",
            s.task_count()
        );
        // Sampling is deterministic and seed-sensitive.
        let s2 = w.sample(0.1, 7);
        let ids: Vec<_> = s.all_tasks().map(|t| &t.task_id).collect();
        let ids2: Vec<_> = s2.all_tasks().map(|t| &t.task_id).collect();
        assert_eq!(ids, ids2);
        let s3 = w.sample(0.1, 8);
        let ids3: Vec<_> = s3.all_tasks().map(|t| &t.task_id).collect();
        assert_ne!(ids, ids3);
        // Full-fraction sampling is the identity on task sets.
        let all = w.sample(1.0, 0);
        assert_eq!(all.task_count(), w.task_count());
    }

    #[test]
    fn historical_logs_execute() {
        for bundle in Workload::small(42).domains {
            for log in &bundle.logs {
                execute_sql(&bundle.db, &log.sql)
                    .unwrap_or_else(|e| panic!("{} log {}: {e}", bundle.spec.key, log.log_id));
            }
        }
    }

    #[test]
    fn knowledge_set_builds_per_domain() {
        let w = Workload::small(42);
        for bundle in &w.domains {
            let ks = bundle.build_knowledge();
            let stats = ks.stats();
            assert!(stats.examples > 20, "{}: {stats:?}", bundle.spec.key);
            assert!(stats.instructions >= 6);
            assert!(stats.intents == 3);
            assert!(stats.schema_elements > 10);
            // Instruction-only terms: "our" and QoQ must NOT have term
            // examples — that split drives the instructions ablation.
            assert!(!ks
                .examples()
                .iter()
                .any(|e| e.term.as_deref() == Some(bundle.spec.our_term)));
            assert!(ks
                .examples()
                .iter()
                .any(|e| e.term.as_deref() == Some(bundle.spec.ratio_term)));
            assert!(ks
                .instructions()
                .iter()
                .any(|i| i.term.as_deref() == Some(bundle.spec.qoq_term)));
        }
    }

    #[test]
    fn database_lookup() {
        let w = Workload::small(42);
        assert!(w.database("sports_holding").is_some());
        assert!(w.database("SPORTS_HOLDING").is_some());
        assert!(w.database("nope").is_none());
        let t = w.all_tasks().next().unwrap().clone();
        assert!(w.domain_for_task(&t).is_some());
    }
}
