//! Task templates: question + gold SQL + knowledge requirements.
//!
//! Tasks come in the three BIRD difficulty strata the paper reports
//! (Table 1). Simple tasks are single-table; moderate tasks add joins,
//! grouping, pivots, and subqueries; challenging tasks are the paper's
//! Q_fin-perf shape — multiple CTEs, conditional aggregation, ratio terms,
//! window ranking with the `-1 *` convention.

use crate::spec::DomainSpec;
use genedit_llm::{hash01, Corruption, Difficulty, TaskKnowledge, TermRequirement};
use genedit_sql::analysis::referenced_tables;
use genedit_sql::ast::Statement;
use genedit_sql::parser::parse_statement;

/// Fraction of term-dependent tasks that ship BIRD-style evidence.
/// (BIRD attaches evidence to every question, but — per the paper's §3.3.1
/// discussion of BIRD's "imprecision of its data, queries, and external
/// knowledge" — a slice of it is missing or unusable in practice.)
const EVIDENCE_RATE: f64 = 0.85;

/// Generate `(simple, moderate, challenging)` tasks for a domain.
pub fn generate_tasks(
    spec: &DomainSpec,
    counts: (usize, usize, usize),
    _seed: u64,
) -> Vec<TaskKnowledge> {
    let mut out = Vec::new();
    for i in 0..counts.0 {
        out.push(simple_task(spec, i));
    }
    for i in 0..counts.1 {
        out.push(moderate_task(spec, i));
    }
    for i in 0..counts.2 {
        out.push(challenging_task(spec, i));
    }
    out
}

struct Params<'a> {
    region: &'a str,
    year: i32,
    category: &'a str,
    k: usize,
    entity: &'a str,
    qa: u8,
    qb: u8,
}

fn params<'a>(spec: &'a DomainSpec, i: usize) -> Params<'a> {
    // Simple templates repeat every 8 indices; the `i / 8` shift makes
    // each repetition draw different parameters, so questions (and the
    // registry keys derived from them) stay globally unique.
    let rep = i / 8;
    Params {
        region: spec.regions[(i + rep) % spec.regions.len()],
        year: 2022 + (((i / 3) + rep) % 2) as i32,
        category: spec.categories[(i + rep) % spec.categories.len()],
        k: 3 + i % 3,
        entity: spec.entity_names[(i * 7 + rep) % spec.entity_names.len()],
        qa: (i % 3) as u8 + 1,
        qb: (i % 3) as u8 + 2,
    }
}

fn our_requirement(spec: &DomainSpec) -> TermRequirement {
    TermRequirement {
        term: spec.our_term.to_string(),
        corruption: Corruption::DropWhereConjunct {
            marker: spec.flag_col.to_string(),
        },
    }
}

fn ratio_requirement(spec: &DomainSpec) -> TermRequirement {
    TermRequirement {
        term: spec.ratio_term.to_string(),
        corruption: Corruption::SwapAggregate {
            from: "SUM".into(),
            to: "MAX".into(),
        },
    }
}

fn qoq_requirement(spec: &DomainSpec) -> TermRequirement {
    TermRequirement {
        term: spec.qoq_term.to_string(),
        corruption: Corruption::StripNegOneMultiplier,
    }
}

/// Assemble a task, deriving required tables from the gold SQL and
/// attaching evidence for a hash-chosen slice of term tasks.
#[allow(clippy::too_many_arguments)]
fn build(
    spec: &DomainSpec,
    id: String,
    question: String,
    gold_sql: String,
    intent: String,
    difficulty: Difficulty,
    terms: Vec<TermRequirement>,
) -> TaskKnowledge {
    let Statement::Query(q) = parse_statement(&gold_sql)
        .unwrap_or_else(|e| panic!("gold SQL for {id} does not parse: {e}\n{gold_sql}"));
    let required_tables: Vec<String> = referenced_tables(&q).into_iter().collect();
    // Columns the gold references that are real schema columns of this
    // domain (CTE output aliases are filtered out).
    let schema_cols: Vec<String> = [
        spec.entity_col,
        spec.region_col,
        spec.flag_col,
        spec.category_col,
        "FOUNDED_YEAR",
        spec.fact1_col,
        spec.fact1_date,
        spec.fact2_col,
        spec.fact2_date,
    ]
    .iter()
    .map(|c| c.to_uppercase())
    .collect();
    let required_columns: Vec<String> = genedit_sql::analysis::referenced_columns(&q)
        .into_iter()
        .filter(|c| schema_cols.contains(c))
        .collect();
    let evidence = if !terms.is_empty() && hash01(&[&id, "evidence"], 0) < EVIDENCE_RATE {
        terms
            .iter()
            .map(|t| {
                let meaning = if t.term == spec.our_term {
                    spec.our_meaning
                } else if t.term == spec.ratio_term {
                    spec.ratio_meaning
                } else {
                    spec.qoq_meaning
                };
                format!("{} : {}", t.term, meaning)
            })
            .collect()
    } else {
        Vec::new()
    };
    TaskKnowledge {
        task_id: id,
        question,
        db_name: spec.db_name.to_string(),
        gold_sql,
        intent,
        difficulty,
        required_terms: terms,
        required_tables,
        required_columns,
        evidence,
        distractor_table: Some(spec.distractor_table.to_string()),
        distractor_column: Some((
            spec.fact1_col.to_string(),
            format!("{}_ADJ", spec.fact1_col),
        )),
    }
}

// ----------------------------------------------------------------------
// Simple
// ----------------------------------------------------------------------

fn simple_task(spec: &DomainSpec, i: usize) -> TaskKnowledge {
    let p = params(spec, i);
    let id = format!("{}-s{:02}", spec.key, i);
    let (question, sql, intent, terms) = match i % 8 {
        0 => (
            format!(
                "What is the total {} in {} for {}?",
                spec.metric_word, p.region, p.year
            ),
            format!(
                "SELECT SUM({v}) AS TOTAL_{v} FROM {f} WHERE {r} = '{region}' AND TO_CHAR({d}, 'YYYY') = '{year}'",
                v = spec.fact1_col,
                f = spec.fact1_table,
                r = spec.region_col,
                region = p.region,
                d = spec.fact1_date,
                year = p.year
            ),
            spec.performance_intent(),
            vec![],
        ),
        1 => (
            format!("How many {} are in {}?", spec.entity_word, p.region),
            format!(
                "SELECT COUNT(*) AS N FROM {e} WHERE {r} = '{region}'",
                e = spec.entity_table,
                r = spec.region_col,
                region = p.region
            ),
            spec.directory_intent(),
            vec![],
        ),
        2 => (
            format!("List the {} in the {} {} segment", spec.entity_word, p.region, p.category),
            format!(
                "SELECT {n} FROM {e} WHERE {r} = '{region}' AND {c} = '{cat}' ORDER BY {n}",
                n = spec.entity_col,
                e = spec.entity_table,
                r = spec.region_col,
                region = p.region,
                c = spec.category_col,
                cat = p.category
            ),
            spec.directory_intent(),
            vec![],
        ),
        3 => (
            format!(
                "Which {k} {ew} had the highest total {m} in {y}?",
                k = p.k,
                ew = spec.entity_word,
                m = spec.metric_word,
                y = p.year
            ),
            format!(
                "SELECT {n}, SUM({v}) AS TOTAL_{v} FROM {f} WHERE TO_CHAR({d}, 'YYYY') = '{y}' \
                 GROUP BY {n} ORDER BY TOTAL_{v} DESC LIMIT {k}",
                n = spec.entity_col,
                v = spec.fact1_col,
                f = spec.fact1_table,
                d = spec.fact1_date,
                y = p.year,
                k = p.k
            ),
            spec.performance_intent(),
            vec![],
        ),
        4 => (
            format!(
                "What is the average monthly {} for {}?",
                spec.metric_word, p.entity
            ),
            format!(
                "SELECT AVG({v}) AS AVG_{v} FROM {f} WHERE {n} = '{ent}'",
                v = spec.fact1_col,
                f = spec.fact1_table,
                n = spec.entity_col,
                ent = p.entity
            ),
            spec.performance_intent(),
            vec![],
        ),
        5 => (
            format!(
                "What is the total {} of our {} in {} for {}?",
                spec.metric_word, spec.entity_word, p.region, p.year
            ),
            format!(
                "SELECT SUM({v}) AS TOTAL_{v} FROM {f} WHERE {r} = '{region}' \
                 AND TO_CHAR({d}, 'YYYY') = '{y}' AND {fl} = '{fv}'",
                v = spec.fact1_col,
                f = spec.fact1_table,
                r = spec.region_col,
                region = p.region,
                d = spec.fact1_date,
                y = p.year,
                fl = spec.flag_col,
                fv = spec.flag_val
            ),
            spec.performance_intent(),
            vec![our_requirement(spec)],
        ),
        6 => (
            format!(
                "What is the highest monthly {} recorded in {}?",
                spec.metric2_word, p.region
            ),
            format!(
                "SELECT MAX({v}) AS MAX_{v} FROM {f} WHERE {r} = '{region}'",
                v = spec.fact2_col,
                f = spec.fact2_table,
                r = spec.region_col,
                region = p.region
            ),
            spec.engagement_intent(),
            vec![],
        ),
        _ => (
            format!(
                "Which {} were founded after {}?",
                spec.entity_word,
                1950 + (i % 40) as i32
            ),
            format!(
                "SELECT {n} FROM {e} WHERE FOUNDED_YEAR > {y} ORDER BY {n}",
                n = spec.entity_col,
                e = spec.entity_table,
                y = 1950 + (i % 40) as i32
            ),
            spec.directory_intent(),
            vec![],
        ),
    };
    build(spec, id, question, sql, intent, Difficulty::Simple, terms)
}

// ----------------------------------------------------------------------
// Moderate
// ----------------------------------------------------------------------

fn moderate_task(spec: &DomainSpec, i: usize) -> TaskKnowledge {
    let p = params(spec, i);
    let id = format!("{}-m{:02}", spec.key, i);
    let (question, sql, intent, terms) = match i % 7 {
        0 => (
            format!(
                "Break down total {} by {} for {} in {}",
                spec.metric_word, spec.category_col, p.region, p.year
            ),
            format!(
                "SELECT e.{c}, SUM(f.{v}) AS TOTAL_{v} \
                 FROM {e} e JOIN {f} f ON e.{n} = f.{n} \
                 WHERE f.{r} = '{region}' AND TO_CHAR(f.{d}, 'YYYY') = '{y}' \
                 GROUP BY e.{c} ORDER BY 2 DESC",
                c = spec.category_col,
                v = spec.fact1_col,
                e = spec.entity_table,
                f = spec.fact1_table,
                n = spec.entity_col,
                r = spec.region_col,
                region = p.region,
                d = spec.fact1_date,
                y = p.year
            ),
            spec.performance_intent(),
            vec![],
        ),
        1 => (
            format!(
                "Compare {y}Q{qa} and {y}Q{qb} {m} per {ew} in {region}",
                y = p.year,
                qa = p.qa,
                qb = p.qb,
                m = spec.metric_word,
                ew = spec.entity_word,
                region = p.region
            ),
            format!(
                "SELECT {n}, \
                   SUM(CASE WHEN TO_CHAR({d}, 'YYYY\"Q\"Q') = '{y}Q{qa}' THEN {v} ELSE 0 END) AS M_Q{qa}, \
                   SUM(CASE WHEN TO_CHAR({d}, 'YYYY\"Q\"Q') = '{y}Q{qb}' THEN {v} ELSE 0 END) AS M_Q{qb} \
                 FROM {f} WHERE {r} = '{region}' \
                   AND TO_CHAR({d}, 'YYYY\"Q\"Q') IN ('{y}Q{qa}', '{y}Q{qb}') \
                 GROUP BY {n} ORDER BY {n}",
                n = spec.entity_col,
                d = spec.fact1_date,
                v = spec.fact1_col,
                f = spec.fact1_table,
                r = spec.region_col,
                region = p.region,
                y = p.year,
                qa = p.qa,
                qb = p.qb
            ),
            spec.performance_intent(),
            vec![],
        ),
        2 => (
            format!(
                "Which {} exceeded the average total {} across all {} in {}?",
                spec.entity_word, spec.metric_word, spec.entity_word, p.year
            ),
            format!(
                "WITH TOTALS AS (SELECT {n}, SUM({v}) AS T FROM {f} \
                   WHERE TO_CHAR({d}, 'YYYY') = '{y}' GROUP BY {n}) \
                 SELECT {n}, T FROM TOTALS WHERE T > (SELECT AVG(T) FROM TOTALS) ORDER BY T DESC",
                n = spec.entity_col,
                v = spec.fact1_col,
                f = spec.fact1_table,
                d = spec.fact1_date,
                y = p.year
            ),
            spec.performance_intent(),
            vec![],
        ),
        3 => (
            format!(
                "Show the {rt} per {ew} for {y}Q{qb}",
                rt = spec.ratio_term,
                ew = spec.entity_word,
                y = p.year,
                qb = p.qb
            ),
            format!(
                "WITH A AS (SELECT {n}, SUM({v1}) AS M1 FROM {f1} \
                   WHERE TO_CHAR({d1}, 'YYYY\"Q\"Q') = '{y}Q{qb}' GROUP BY {n}), \
                 B AS (SELECT {n}, SUM({v2}) AS M2 FROM {f2} \
                   WHERE TO_CHAR({d2}, 'YYYY\"Q\"Q') = '{y}Q{qb}' GROUP BY {n}) \
                 SELECT a.{n}, CAST(a.M1 AS FLOAT) / NULLIF(b.M2, 0) AS {rt} \
                 FROM A a JOIN B b ON a.{n} = b.{n} ORDER BY {rt} DESC",
                n = spec.entity_col,
                v1 = spec.fact1_col,
                f1 = spec.fact1_table,
                d1 = spec.fact1_date,
                v2 = spec.fact2_col,
                f2 = spec.fact2_table,
                d2 = spec.fact2_date,
                y = p.year,
                qb = p.qb,
                rt = spec.ratio_term
            ),
            spec.performance_intent(),
            vec![ratio_requirement(spec)],
        ),
        4 => (
            format!(
                "Which of our {} in {} have no recorded {}?",
                spec.entity_word, p.region, spec.metric2_word
            ),
            format!(
                "SELECT e.{n} FROM {e} e LEFT JOIN {f2} f ON e.{n} = f.{n} \
                 WHERE e.{r} = '{region}' AND e.{fl} = '{fv}' AND f.{v2} IS NULL \
                 ORDER BY e.{n}",
                n = spec.entity_col,
                e = spec.entity_table,
                f2 = spec.fact2_table,
                r = spec.region_col,
                region = p.region,
                fl = spec.flag_col,
                fv = spec.flag_val,
                v2 = spec.fact2_col
            ),
            spec.engagement_intent(),
            vec![our_requirement(spec)],
        ),
        5 => (
            format!(
                "Rank the top {k} {ew} by {qt} from {y}Q{qa} to {y}Q{qb}",
                k = p.k,
                ew = spec.entity_word,
                qt = spec.qoq_term,
                y = p.year,
                qa = p.qa,
                qb = p.qb
            ),
            format!(
                "SELECT {n}, \
                   SUM(CASE WHEN TO_CHAR({d}, 'YYYY\"Q\"Q') = '{y}Q{qb}' THEN {v} ELSE 0 END) - \
                   SUM(CASE WHEN TO_CHAR({d}, 'YYYY\"Q\"Q') = '{y}Q{qa}' THEN {v} ELSE 0 END) AS CHG \
                 FROM {f} WHERE TO_CHAR({d}, 'YYYY\"Q\"Q') IN ('{y}Q{qa}', '{y}Q{qb}') \
                 GROUP BY {n} \
                 ORDER BY (-1 * (SUM(CASE WHEN TO_CHAR({d}, 'YYYY\"Q\"Q') = '{y}Q{qa}' THEN {v} ELSE 0 END) - \
                   SUM(CASE WHEN TO_CHAR({d}, 'YYYY\"Q\"Q') = '{y}Q{qb}' THEN {v} ELSE 0 END))) DESC \
                 LIMIT {k}",
                n = spec.entity_col,
                d = spec.fact1_date,
                v = spec.fact1_col,
                f = spec.fact1_table,
                y = p.year,
                qa = p.qa,
                qb = p.qb,
                k = p.k
            ),
            spec.performance_intent(),
            vec![qoq_requirement(spec)],
        ),
        _ => (
            format!("How many {} operate in each {}?", spec.entity_word, spec.region_col),
            format!(
                "SELECT {r}, COUNT(*) AS N FROM {e} GROUP BY {r} ORDER BY N DESC, {r}",
                r = spec.region_col,
                e = spec.entity_table
            ),
            spec.directory_intent(),
            vec![],
        ),
    };
    build(spec, id, question, sql, intent, Difficulty::Moderate, terms)
}

// ----------------------------------------------------------------------
// Challenging
// ----------------------------------------------------------------------

fn challenging_task(spec: &DomainSpec, i: usize) -> TaskKnowledge {
    let p = params(spec, i);
    let id = format!("{}-c{:02}", spec.key, i);
    let (question, sql, terms) = match i % 3 {
        0 | 1 => {
            // The paper's Q_fin-perf shape (Appendix A): best and worst
            // QoQ performers by the ratio metric, ranked with the -1
            // convention. The two variants differ by region and quarter
            // pair (params already vary with i).
            let cat_join = String::new();
            let question = format!(
                "Identify our {k} {ew} with the best and worst {qt} in {region} for {y}Q{qb}",
                k = p.k,
                ew = spec.entity_word,
                qt = spec.qoq_term,
                region = p.region,
                y = p.year,
                qb = p.qb
            );
            let sql = format!(
                "WITH FIN AS ( \
                   SELECT {n}, \
                     SUM(CASE WHEN TO_CHAR({d1}, 'YYYY\"Q\"Q') = '{y}Q{qa}' THEN {v1} ELSE 0 END) AS M1_A, \
                     SUM(CASE WHEN TO_CHAR({d1}, 'YYYY\"Q\"Q') = '{y}Q{qb}' THEN {v1} ELSE 0 END) AS M1_B \
                   FROM {f1} \
                   WHERE TO_CHAR({d1}, 'YYYY\"Q\"Q') IN ('{y}Q{qa}', '{y}Q{qb}') \
                     AND {r} = '{region}' AND {fl} = '{fv}'{cat_join} \
                   GROUP BY {n} \
                 ), \
                 ENG AS ( \
                   SELECT {n}, \
                     SUM(CASE WHEN TO_CHAR({d2}, 'YYYY\"Q\"Q') = '{y}Q{qa}' THEN {v2} ELSE 0 END) AS M2_A, \
                     SUM(CASE WHEN TO_CHAR({d2}, 'YYYY\"Q\"Q') = '{y}Q{qb}' THEN {v2} ELSE 0 END) AS M2_B \
                   FROM {f2} \
                   WHERE TO_CHAR({d2}, 'YYYY\"Q\"Q') IN ('{y}Q{qa}', '{y}Q{qb}') \
                     AND {r} = '{region}' AND {fl} = '{fv}'{cat_join2} \
                   GROUP BY {n} \
                 ), \
                 CHANGE AS ( \
                   SELECT f.{n}, \
                     CAST(f.M1_B AS FLOAT) / NULLIF(e.M2_B, 0) AS RATIO_B, \
                     CAST(f.M1_A AS FLOAT) / NULLIF(e.M2_A, 0) AS RATIO_A, \
                     ROW_NUMBER() OVER (ORDER BY (-1 * (CAST(f.M1_B AS FLOAT) / NULLIF(e.M2_B, 0) - \
                       CAST(f.M1_A AS FLOAT) / NULLIF(e.M2_A, 0)))) AS BEST_RANK, \
                     ROW_NUMBER() OVER (ORDER BY (-1 * (CAST(f.M1_B AS FLOAT) / NULLIF(e.M2_B, 0) - \
                       CAST(f.M1_A AS FLOAT) / NULLIF(e.M2_A, 0))) DESC) AS WORST_RANK \
                   FROM FIN f JOIN ENG e ON f.{n} = e.{n} \
                 ) \
                 SELECT BEST_RANK, {n}, RATIO_B, RATIO_A FROM CHANGE \
                 WHERE BEST_RANK <= {k} OR WORST_RANK <= {k} ORDER BY BEST_RANK",
                n = spec.entity_col,
                d1 = spec.fact1_date,
                v1 = spec.fact1_col,
                f1 = spec.fact1_table,
                d2 = spec.fact2_date,
                v2 = spec.fact2_col,
                f2 = spec.fact2_table,
                r = spec.region_col,
                region = p.region,
                fl = spec.flag_col,
                fv = spec.flag_val,
                y = p.year,
                qa = p.qa,
                qb = p.qb,
                k = p.k,
                cat_join = cat_join,
                cat_join2 = cat_join
            );
            (
                question,
                sql,
                vec![
                    our_requirement(spec),
                    ratio_requirement(spec),
                    qoq_requirement(spec),
                ],
            )
        }
        _ => {
            // Share-of-region leader: top category per region among our
            // entities, with a windowed share computation.
            let question = format!(
                "For each {r}, which {c} leads our {ew} by total {m} in {y}, and with what share?",
                r = spec.region_col,
                c = spec.category_col,
                ew = spec.entity_word,
                m = spec.metric_word,
                y = p.year
            );
            let sql = format!(
                "WITH TOTALS AS ( \
                   SELECT e.{r} AS RGN, e.{c} AS CAT, SUM(f.{v}) AS TOTAL_M \
                   FROM {e} e JOIN {f} f ON e.{n} = f.{n} \
                   WHERE TO_CHAR(f.{d}, 'YYYY') = '{y}' AND e.{fl} = '{fv}' \
                   GROUP BY e.{r}, e.{c} \
                 ), \
                 RANKED AS ( \
                   SELECT RGN, CAT, TOTAL_M, \
                     ROW_NUMBER() OVER (PARTITION BY RGN ORDER BY TOTAL_M DESC) AS RNK, \
                     CAST(TOTAL_M AS FLOAT) / NULLIF(SUM(TOTAL_M) OVER (PARTITION BY RGN), 0) AS SHARE \
                   FROM TOTALS \
                 ) \
                 SELECT RGN, CAT, TOTAL_M, SHARE FROM RANKED WHERE RNK = 1 ORDER BY RGN",
                r = spec.region_col,
                c = spec.category_col,
                v = spec.fact1_col,
                e = spec.entity_table,
                f = spec.fact1_table,
                n = spec.entity_col,
                d = spec.fact1_date,
                y = p.year,
                fl = spec.flag_col,
                fv = spec.flag_val
            );
            (question, sql, vec![our_requirement(spec)])
        }
    };
    build(
        spec,
        id,
        question,
        sql,
        spec.performance_intent(),
        Difficulty::Challenging,
        terms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::all_domains;
    use crate::spec::generate_database;
    use genedit_sql::analysis::complexity;
    use genedit_sql::execute_sql;

    #[test]
    fn all_gold_queries_parse_and_execute() {
        for spec in all_domains() {
            let db = generate_database(spec, 42);
            for task in generate_tasks(spec, (24, 7, 3), 42) {
                let rs = execute_sql(&db, &task.gold_sql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n{}", task.task_id, task.gold_sql));
                // Gold answers should be informative for most tasks.
                if task.difficulty != Difficulty::Simple {
                    assert!(
                        !rs.rows.is_empty(),
                        "{} returned no rows:\n{}",
                        task.task_id,
                        task.gold_sql
                    );
                }
            }
        }
    }

    #[test]
    fn difficulty_complexity_ordering() {
        let spec = &crate::domains::SPORTS;
        let tasks = generate_tasks(spec, (24, 7, 3), 42);
        let avg = |d: Difficulty| {
            let scores: Vec<u32> = tasks
                .iter()
                .filter(|t| t.difficulty == d)
                .map(|t| complexity(&t.gold_query()).total())
                .collect();
            scores.iter().sum::<u32>() as f64 / scores.len() as f64
        };
        let s = avg(Difficulty::Simple);
        let m = avg(Difficulty::Moderate);
        let c = avg(Difficulty::Challenging);
        assert!(s < m, "simple {s} !< moderate {m}");
        assert!(m < c, "moderate {m} !< challenging {c}");
        // Challenging tasks must exceed the oracle's default capacity so
        // planning matters.
        assert!(c > 18.0, "challenging avg {c} below capacity");
    }

    #[test]
    fn task_ids_unique() {
        let spec = &crate::domains::SPORTS;
        let tasks = generate_tasks(spec, (24, 7, 3), 42);
        let mut ids: Vec<&str> = tasks.iter().map(|t| t.task_id.as_str()).collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert_eq!(n, 34);
    }

    #[test]
    fn term_corruptions_change_results() {
        // Every registered term corruption must visibly change the gold
        // answer, otherwise missing knowledge would be unobservable.
        for spec in all_domains() {
            let db = generate_database(spec, 42);
            for task in generate_tasks(spec, (8, 7, 3), 42) {
                let gold = execute_sql(&db, &task.gold_sql).unwrap();
                for req in &task.required_terms {
                    let mut corrupted = task.gold_query();
                    let changed = req.corruption.apply(&mut corrupted);
                    assert!(
                        changed > 0,
                        "{}: {:?} was a no-op",
                        task.task_id,
                        req.corruption
                    );
                    let rs = execute_sql(&db, &corrupted.to_string());
                    // A loud failure also counts as an observable change.
                    if let Ok(rs) = rs {
                        assert!(
                            !gold.ex_equal(&rs),
                            "{}: corruption {:?} did not change the answer",
                            task.task_id,
                            req.corruption
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn required_tables_derived_from_gold() {
        let spec = &crate::domains::SPORTS;
        let tasks = generate_tasks(spec, (2, 0, 1), 42);
        let challenging = tasks
            .iter()
            .find(|t| t.difficulty == Difficulty::Challenging)
            .unwrap();
        assert!(challenging
            .required_tables
            .contains(&"SPORTS_FINANCIALS".to_string()));
        assert!(challenging
            .required_tables
            .contains(&"SPORTS_VIEWERSHIP".to_string()));
    }

    #[test]
    fn evidence_present_for_most_term_tasks() {
        let mut with_terms = 0;
        let mut with_evidence = 0;
        for spec in all_domains() {
            for task in generate_tasks(spec, (24, 7, 3), 42) {
                if !task.required_terms.is_empty() {
                    with_terms += 1;
                    if !task.evidence.is_empty() {
                        with_evidence += 1;
                    }
                }
            }
        }
        assert!(with_terms > 20);
        let rate = with_evidence as f64 / with_terms as f64;
        assert!((0.6..1.0).contains(&rate), "evidence rate {rate}");
    }

    #[test]
    fn questions_mention_their_terms() {
        // Term instructions are retrieved by similarity to the question;
        // term-dependent questions must mention the term or "our".
        for spec in all_domains() {
            for task in generate_tasks(spec, (24, 7, 3), 42) {
                for req in &task.required_terms {
                    let q = task.question.to_uppercase();
                    let mentions = q.contains(&req.term.to_uppercase()) || q.contains("OUR");
                    assert!(
                        mentions,
                        "{}: {} not hinted in question",
                        task.task_id, req.term
                    );
                }
            }
        }
    }
}
