//! # genedit-bird — synthetic BIRD-like benchmark
//!
//! A stand-in for the BIRD dev set (paper §3.3.1): four enterprise
//! star-schema domains with seeded data, 132 tasks in the paper's
//! 93/28/11 Simple/Moderate/Challenging split, per-task knowledge
//! requirements (domain terms, required tables, evidence), historical
//! query logs and domain documents for knowledge-set pre-processing, and
//! an Execution Accuracy evaluator.

pub mod complexity;
pub mod domains;
pub mod eval;
pub mod spec;
pub mod templates;
pub mod workload;

pub use complexity::{sweep_task, sweep_tasks};
pub use domains::{all_domains, HEALTH, LOGISTICS, RETAIL, SPORTS};
pub use eval::{score_prediction, EvalReport, Prediction, TaskOutcome};
pub use spec::{generate_database, DomainSpec};
pub use templates::generate_tasks;
pub use workload::{DomainBundle, Workload};
