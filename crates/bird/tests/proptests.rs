//! Property tests for the benchmark generator: for arbitrary seeds and
//! task counts, every gold query must execute, every task must be
//! findable in the registry, and every term corruption must be
//! observable.

use genedit_bird::{all_domains, generate_database, generate_tasks, DomainBundle, Workload};
use genedit_llm::TaskRegistry;
use genedit_sql::execute_sql;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Gold queries execute for any seed.
    #[test]
    fn gold_queries_execute_for_any_seed(seed in 0u64..1000) {
        let spec = all_domains()[seed as usize % 4];
        let db = generate_database(spec, seed);
        for task in generate_tasks(spec, (8, 7, 3), seed) {
            let rs = execute_sql(&db, &task.gold_sql);
            prop_assert!(rs.is_ok(), "{}: {:?}", task.task_id, rs.err());
        }
    }

    /// The registry resolves every task question and every canonical
    /// reformulation of it, for arbitrary counts.
    #[test]
    fn registry_resolves_all_tasks(
        simple in 1usize..24,
        moderate in 1usize..7,
        challenging in 1usize..3,
    ) {
        let spec = &genedit_bird::SPORTS;
        let tasks = generate_tasks(spec, (simple, moderate, challenging), 42);
        let mut registry = TaskRegistry::new();
        for t in &tasks {
            registry.register(t.clone());
        }
        for t in &tasks {
            let hit = registry.lookup(&t.question);
            prop_assert!(hit.is_some(), "missing {}", t.task_id);
            prop_assert_eq!(&hit.unwrap().task_id, &t.task_id);
            // Canonical reformulation keeps resolving to the same task.
            let reformulated = format!("Show me {}", t.question.to_lowercase());
            let hit = registry.lookup(&reformulated);
            prop_assert!(hit.is_some(), "reformulated miss for {}", t.task_id);
            prop_assert_eq!(&hit.unwrap().task_id, &t.task_id);
        }
    }

    /// Database generation is a pure function of (domain, seed).
    #[test]
    fn database_generation_is_pure(seed in 0u64..500) {
        let spec = &genedit_bird::RETAIL;
        let a = generate_database(spec, seed);
        let b = generate_database(spec, seed);
        let q = format!(
            "SELECT {n}, SUM({v}) FROM {f} GROUP BY {n}",
            n = spec.entity_col,
            v = spec.fact1_col,
            f = spec.fact1_table
        );
        let ra = execute_sql(&a, &q).unwrap();
        let rb = execute_sql(&b, &q).unwrap();
        prop_assert!(ra.ex_equal(&rb));
    }

    /// Knowledge sets build successfully for any bundle configuration and
    /// always cover the three domain terms in instructions.
    #[test]
    fn knowledge_covers_domain_terms(
        seed in 0u64..200,
        domain_idx in 0usize..4,
    ) {
        let spec = all_domains()[domain_idx];
        let bundle = DomainBundle::build(spec, (4, 2, 1), seed);
        let ks = bundle.build_knowledge();
        for term in [spec.our_term, spec.ratio_term, spec.qoq_term] {
            prop_assert!(
                ks.instructions().iter().any(|i| i.term.as_deref() == Some(term)),
                "{} missing instruction for {term}",
                spec.key
            );
        }
        // Log decomposition produced window fragments (needed for plan
        // support on challenging tasks).
        prop_assert!(ks
            .examples()
            .iter()
            .any(|e| e.fragment.kind == genedit_knowledge::FragmentKind::Window));
    }
}

#[test]
fn standard_workload_invariants() {
    let w = Workload::standard(42);
    // Task ids globally unique.
    let mut ids: Vec<&str> = w.all_tasks().map(|t| t.task_id.as_str()).collect();
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n);
    // Questions globally unique too (registry correctness depends on it).
    let mut questions: Vec<&str> = w.all_tasks().map(|t| t.question.as_str()).collect();
    questions.sort();
    questions.dedup();
    assert_eq!(questions.len(), n);
    // Every task's db exists and its required tables exist in it.
    for t in w.all_tasks() {
        let db = w.database(&t.db_name).expect("task db exists");
        for table in &t.required_tables {
            assert!(
                db.table(table).is_some(),
                "{}: missing table {table}",
                t.task_id
            );
        }
    }
}
