//! Core knowledge-set element types.
//!
//! The paper's knowledge set is "a *view* containing pairs of: i) natural
//! language; and ii) SQL examples, natural language instructions (or hints)
//! for generation, and database schemas", grouped by mined user intents
//! (§1, §2.1), with provenance tracked for maintenance and audit (§4.2.2).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an example within a knowledge set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ExampleId(pub u64);

/// Identifier of an instruction within a knowledge set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct InstructionId(pub u64);

impl fmt::Display for ExampleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ex-{}", self.0)
    }
}

impl fmt::Display for InstructionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ins-{}", self.0)
    }
}

/// A mined user intent, e.g. "financial performance" or "TV viewership
/// numbers" (§2.1). Examples, instructions, and schema elements are
/// associated with intents by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intent {
    /// Stable snake-case key, e.g. `financial_performance`.
    pub key: String,
    /// Human-readable label.
    pub name: String,
    /// One-sentence description of the intent's scope.
    pub description: String,
}

impl Intent {
    /// Build an intent from its key, label, and description.
    pub fn new(
        key: impl Into<String>,
        name: impl Into<String>,
        description: impl Into<String>,
    ) -> Intent {
        Intent {
            key: key.into(),
            name: name.into(),
            description: description.into(),
        }
    }
}

/// Where a knowledge element came from — the provenance the knowledge-set
/// library exposes "for reversion, comparison, and systematic learning from
/// prior feedback" (§4.2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SourceRef {
    /// Decomposed from a logged historical SQL query.
    QueryLog {
        /// Identifier of the source query-log entry.
        log_id: u64,
    },
    /// Extracted from a domain document.
    Document {
        /// Identifier of the source document.
        doc_id: u64,
        /// Section heading the element was extracted from.
        section: String,
    },
    /// Produced by the edits-recommendation module from user feedback.
    Feedback {
        /// Identifier of the originating feedback record.
        feedback_id: u64,
    },
    /// Entered manually by an SME in the knowledge-set library.
    Manual,
}

/// Provenance record attached to every example and instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Where the element came from.
    pub source: SourceRef,
    /// Monotone logical timestamp assigned by the knowledge set.
    pub tick: u64,
}

/// The grammatical role of a decomposed SQL fragment (§3.2.1: queries are
/// rewritten to CTE form, then split into subqueries, then clause-level
/// sub-statements).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FragmentKind {
    /// A whole CTE definition (`name AS (…)`).
    CteDefinition,
    /// The projection list of one SELECT block.
    Projection,
    /// The FROM clause including joins.
    From,
    /// One conjunct of a WHERE clause.
    Where,
    /// The GROUP BY clause.
    GroupBy,
    /// The HAVING clause.
    Having,
    /// The ORDER BY clause.
    OrderBy,
    /// The LIMIT clause.
    Limit,
    /// A window-function expression.
    Window,
    /// A scalar expression defining a domain term (e.g. the RPV formula).
    TermDefinition,
    /// A complete, non-decomposed query — the traditional few-shot example
    /// format that the "w/o Decomposition" ablation (Table 2) falls back
    /// to.
    FullQuery,
}

impl fmt::Display for FragmentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FragmentKind::CteDefinition => "cte",
            FragmentKind::Projection => "projection",
            FragmentKind::From => "from",
            FragmentKind::Where => "where",
            FragmentKind::GroupBy => "group-by",
            FragmentKind::Having => "having",
            FragmentKind::OrderBy => "order-by",
            FragmentKind::Limit => "limit",
            FragmentKind::Window => "window",
            FragmentKind::TermDefinition => "term",
            FragmentKind::FullQuery => "full-query",
        };
        f.write_str(s)
    }
}

/// A pseudo-SQL sub-statement: a fragment of a larger query, rendered with
/// `...` affixes in prompts, exactly as the paper's plans show
/// (`"... FROM SPORTS_FINANCIALS ..."`, §3.1.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SqlFragment {
    /// Grammatical role of the fragment.
    pub kind: FragmentKind,
    /// The fragment text *without* the `...` affixes.
    pub sql: String,
    /// Name of the CTE/scope the fragment came from (`main` for the
    /// outermost SELECT).
    pub scope: String,
}

impl SqlFragment {
    /// Build a fragment from its kind, raw SQL text, and owning scope.
    pub fn new(kind: FragmentKind, sql: impl Into<String>, scope: impl Into<String>) -> Self {
        SqlFragment {
            kind,
            sql: sql.into(),
            scope: scope.into(),
        }
    }

    /// Render as pseudo-SQL with the paper's dot affixes.
    pub fn pseudo_sql(&self) -> String {
        format!("... {} ...", self.sql.trim())
    }
}

/// A decomposed example: a SQL sub-statement with an equivalent natural
/// language description (§3.2.1), optionally defining a domain term.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Example {
    /// Stable identifier within the knowledge set.
    pub id: ExampleId,
    /// Intent key this example is grouped under, when known.
    pub intent: Option<String>,
    /// Natural-language description of what the fragment does.
    pub description: String,
    /// The decomposed SQL sub-statement.
    pub fragment: SqlFragment,
    /// Domain term this example defines (e.g. `RPV`), when applicable.
    pub term: Option<String>,
    /// Where the example came from.
    pub provenance: Provenance,
}

impl Example {
    /// The text used for embedding/retrieval: description + term + SQL.
    pub fn retrieval_text(&self) -> String {
        let mut t = self.description.clone();
        if let Some(term) = &self.term {
            t.push(' ');
            t.push_str(term);
        }
        t.push(' ');
        t.push_str(&self.fragment.sql);
        t
    }

    /// Render for a generation prompt (Fig. 2 style).
    pub fn render(&self) -> String {
        let term = self
            .term
            .as_deref()
            .map(|t| format!("[{t}] "))
            .unwrap_or_default();
        format!(
            "-- {term}{}\n{}",
            self.description,
            self.fragment.pseudo_sql()
        )
    }
}

/// A natural-language instruction for generation, optionally with an
/// expected SQL sub-expression (§3.2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Stable identifier within the knowledge set.
    pub id: InstructionId,
    /// Intent key this instruction is grouped under, when known.
    pub intent: Option<String>,
    /// The natural-language guidance text.
    pub text: String,
    /// Expected SQL sub-expression illustrating the instruction.
    pub sql_hint: Option<String>,
    /// Domain term this instruction explains, when applicable.
    pub term: Option<String>,
    /// Where the instruction came from.
    pub provenance: Provenance,
}

impl Instruction {
    /// The text used for embedding/retrieval: text + term + SQL hint.
    pub fn retrieval_text(&self) -> String {
        let mut t = self.text.clone();
        if let Some(term) = &self.term {
            t.push(' ');
            t.push_str(term);
        }
        if let Some(h) = &self.sql_hint {
            t.push(' ');
            t.push_str(h);
        }
        t
    }

    /// Render for a generation prompt as a bullet line.
    pub fn render(&self) -> String {
        match &self.sql_hint {
            Some(h) => format!("- {} (e.g. `{h}`)", self.text),
            None => format!("- {}", self.text),
        }
    }
}

/// A schema element in the knowledge set: a table or a column, augmented
/// with its top-5 most frequent values (§2.1) and grouped by intents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaElement {
    /// Owning table name.
    pub table: String,
    /// `None` for the table itself.
    pub column: Option<String>,
    /// Natural-language description of the element.
    pub description: String,
    /// Top-5 most frequent values observed in the column.
    pub top_values: Vec<String>,
    /// Intent keys this element is grouped under.
    pub intents: Vec<String>,
}

impl SchemaElement {
    /// Canonical uppercase `TABLE` or `TABLE.COLUMN` key.
    pub fn key(&self) -> String {
        match &self.column {
            Some(c) => format!("{}.{}", self.table.to_uppercase(), c.to_uppercase()),
            None => self.table.to_uppercase(),
        }
    }

    /// The text used for embedding/retrieval: key + description + values.
    pub fn retrieval_text(&self) -> String {
        let mut t = format!("{} {}", self.key(), self.description);
        if !self.top_values.is_empty() {
            t.push(' ');
            t.push_str(&self.top_values.join(" "));
        }
        t
    }

    /// Render for a generation prompt's schema section.
    pub fn render(&self) -> String {
        let mut s = self.key();
        if !self.description.is_empty() {
            s.push_str(&format!(" -- {}", self.description));
        }
        if !self.top_values.is_empty() {
            s.push_str(&format!(" [top: {}]", self.top_values.join(", ")));
        }
        s
    }
}

/// Pipeline stages a retrieval hint can be attached to (§1: an edit "can
/// alternatively add instructions to the retrieval and reranking
/// operations within the pipeline").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetrievalStage {
    /// Few-shot example retrieval.
    ExampleSelection,
    /// Instruction retrieval.
    InstructionSelection,
    /// Schema-linking retrieval.
    SchemaLinking,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prov() -> Provenance {
        Provenance {
            source: SourceRef::Manual,
            tick: 0,
        }
    }

    #[test]
    fn pseudo_sql_has_dot_affixes() {
        let f = SqlFragment::new(FragmentKind::From, "FROM SPORTS_FINANCIALS", "FINANCIALS");
        assert_eq!(f.pseudo_sql(), "... FROM SPORTS_FINANCIALS ...");
    }

    #[test]
    fn example_render_includes_term() {
        let e = Example {
            id: ExampleId(1),
            intent: Some("financial_performance".into()),
            description: "revenue per viewer".into(),
            fragment: SqlFragment::new(
                FragmentKind::TermDefinition,
                "CAST(REVENUE AS FLOAT) / NULLIF(VIEWS, 0)",
                "main",
            ),
            term: Some("RPV".into()),
            provenance: prov(),
        };
        let r = e.render();
        assert!(r.contains("[RPV]"));
        assert!(r.contains("NULLIF"));
        assert!(e.retrieval_text().contains("RPV"));
    }

    #[test]
    fn instruction_render_with_hint() {
        let i = Instruction {
            id: InstructionId(1),
            intent: None,
            text: "Apply a -1 multiplier when calculating the change in performance metrics".into(),
            sql_hint: Some("-1 * (metric_q2 - metric_q1)".into()),
            term: None,
            provenance: prov(),
        };
        let r = i.render();
        assert!(r.starts_with("- Apply"));
        assert!(r.contains("-1 * "));
    }

    #[test]
    fn schema_element_keys() {
        let t = SchemaElement {
            table: "sports_financials".into(),
            column: None,
            description: String::new(),
            top_values: vec![],
            intents: vec![],
        };
        assert_eq!(t.key(), "SPORTS_FINANCIALS");
        let c = SchemaElement {
            column: Some("country".into()),
            ..t
        };
        assert_eq!(c.key(), "SPORTS_FINANCIALS.COUNTRY");
    }

    #[test]
    fn schema_render_includes_top_values() {
        let c = SchemaElement {
            table: "t".into(),
            column: Some("country".into()),
            description: "org country".into(),
            top_values: vec!["Canada".into(), "USA".into()],
            intents: vec![],
        };
        let r = c.render();
        assert!(r.contains("[top: Canada, USA]"));
        assert!(r.contains("org country"));
    }
}
