//! The append-only edit journal (write-ahead log) behind the durable
//! knowledge store.
//!
//! Every record is framed as `length ‖ CRC32 ‖ payload`: a little-endian
//! `u32` payload length, a little-endian `u32` CRC32 (IEEE) of the
//! payload, then the JSON-encoded [`JournalRecord`]. The checksum makes
//! torn writes and bit rot detectable; the length prefix makes the log
//! scannable without trusting its contents.
//!
//! Merges from the staging area are bracketed by [`JournalRecord::BatchStart`]
//! / [`JournalRecord::BatchCommit`] markers. Recovery only applies a batch
//! once its commit marker is on disk, so a crash in the middle of a merge
//! rolls the whole merge back — the journal never replays a half-applied
//! merge (mirroring `StagingArea::commit`'s in-memory atomicity).

use crate::fs::StoreFs;
use crate::set::Edit;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Frame header size: 4 length bytes + 4 CRC bytes.
pub const RECORD_HEADER_BYTES: usize = 8;

/// Upper bound on a single record's payload. A length prefix above this
/// is treated as corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: u32 = 16 * 1024 * 1024;

/// One journal entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalRecord {
    /// Epoch marker, always the *first* record of a journal generation:
    /// the set's log length and checkpoint count at the moment the
    /// generation started (store creation or compaction). Recovery uses
    /// it to detect a journal the snapshot already subsumes — a crash
    /// between compaction's snapshot rename and the journal reset would
    /// otherwise replay every record a second time on top of a snapshot
    /// that already contains them.
    Baseline {
        /// The set's log length when the generation started.
        log_len: u64,
        /// The set's checkpoint count when the generation started.
        checkpoints: u64,
    },
    /// A standalone edit, committed the moment it is durable.
    Edit(Edit),
    /// A named checkpoint of the in-memory set.
    Checkpoint {
        /// Checkpoint label.
        label: String,
    },
    /// Start of an atomic batch (a staged merge) of `count` edits.
    BatchStart {
        /// Merge label shown in history.
        label: String,
        /// Number of edits in the batch.
        count: u32,
    },
    /// Commit marker: the batch since the matching [`JournalRecord::BatchStart`]
    /// is now durable as a unit.
    BatchCommit,
}

/// Journal I/O and encoding errors.
#[derive(Debug)]
pub enum JournalError {
    /// A filesystem operation failed.
    Io {
        /// The operation that failed (`append`, `fsync`, `truncate`).
        op: &'static str,
        /// Journal file path.
        path: PathBuf,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// A record failed to serialize.
    Encode(serde_json::Error),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { op, path, source } => {
                write!(f, "journal {op} failed on {}: {source}", path.display())
            }
            JournalError::Encode(e) => write!(f, "journal record encode failed: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

/// CRC32 (IEEE 802.3, polynomial 0xEDB88320), the checksum attached to
/// every journal frame.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc: u32 = 0xffff_ffff;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Encode one record into its on-disk frame.
pub fn encode_record(record: &JournalRecord) -> Result<Vec<u8>, JournalError> {
    let payload = serde_json::to_string(record).map_err(JournalError::Encode)?;
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// How a journal scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanEnd {
    /// EOF exactly at a record boundary.
    Clean,
    /// The final frame is incomplete or fails its checksum — the
    /// signature of a write cut short by a crash. Recovery truncates the
    /// file back to `valid_bytes`.
    TornTail,
    /// A frame *before* the end of the file fails its checksum or does
    /// not decode while later bytes still hold data: mid-file corruption
    /// (bit rot, overwrite). Recovery quarantines the whole file.
    Corrupt,
}

/// Result of scanning a journal byte stream.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Records of the valid prefix, in order.
    pub records: Vec<JournalRecord>,
    /// Starting byte offset of each record in `records` (recovery uses
    /// these to truncate back to an exact record boundary).
    pub offsets: Vec<u64>,
    /// Byte length of the valid prefix.
    pub valid_bytes: u64,
    /// How the scan ended.
    pub end: ScanEnd,
}

/// Scan a journal byte stream, stopping at the first invalid frame.
///
/// Classification rule: damage confined to the final frame is a torn
/// tail (truncate and continue); damage with readable data after it is
/// mid-file corruption (quarantine). A corrupted *length* field is
/// indistinguishable from a tear — the frame seems to run past EOF — and
/// is classified as a torn tail, sacrificing whatever followed it; the
/// committed-prefix guarantee still holds because every record before
/// the damage replays unchanged.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut records = Vec::new();
    let mut offsets = Vec::new();
    let mut offset = 0usize;
    loop {
        if offset == bytes.len() {
            return ScanOutcome {
                records,
                offsets,
                valid_bytes: offset as u64,
                end: ScanEnd::Clean,
            };
        }
        let torn = |records: Vec<JournalRecord>, offsets: Vec<u64>| ScanOutcome {
            records,
            offsets,
            valid_bytes: offset as u64,
            end: ScanEnd::TornTail,
        };
        if bytes.len() - offset < RECORD_HEADER_BYTES {
            return torn(records, offsets);
        }
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]);
        let stored_crc = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        let frame_end = offset + RECORD_HEADER_BYTES + len as usize;
        if len > MAX_RECORD_BYTES || frame_end > bytes.len() {
            return torn(records, offsets);
        }
        let payload = &bytes[offset + RECORD_HEADER_BYTES..frame_end];
        let decoded = if crc32(payload) == stored_crc {
            std::str::from_utf8(payload)
                .ok()
                .and_then(|text| serde_json::from_str::<JournalRecord>(text).ok())
        } else {
            None
        };
        match decoded {
            Some(record) => {
                records.push(record);
                offsets.push(offset as u64);
                offset = frame_end;
            }
            None => {
                let is_final_frame = frame_end == bytes.len();
                return ScanOutcome {
                    records,
                    offsets,
                    valid_bytes: offset as u64,
                    end: if is_final_frame {
                        ScanEnd::TornTail
                    } else {
                        ScanEnd::Corrupt
                    },
                };
            }
        }
    }
}

/// When appended records are forced to durable storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync after every append (and after every batch) — no committed
    /// record is ever lost to a crash.
    #[default]
    Always,
    /// fsync every `n` appends — bounds the data-loss window to `n - 1`
    /// acknowledged records.
    EveryN(u32),
    /// Never fsync from the journal; durability rides on the OS cache
    /// (and on explicit [`Journal::sync`] calls).
    Never,
}

/// Append-side handle on the journal file.
pub struct Journal {
    fs: Arc<dyn StoreFs>,
    path: PathBuf,
    policy: FsyncPolicy,
    unsynced: u32,
    metrics: Option<Arc<genedit_telemetry::MetricsRegistry>>,
}

impl Journal {
    /// Open an append handle on `path` with the given fsync policy.
    pub fn new(fs: Arc<dyn StoreFs>, path: impl Into<PathBuf>, policy: FsyncPolicy) -> Journal {
        Journal {
            fs,
            path: path.into(),
            policy,
            unsynced: 0,
            metrics: None,
        }
    }

    /// Emit `store.journal.*` metrics to the given registry.
    pub fn with_metrics(mut self, metrics: Arc<genedit_telemetry::MetricsRegistry>) -> Journal {
        self.metrics = Some(metrics);
        self
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fsync policy in force.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Current byte length of the journal file (0 when absent).
    pub fn byte_len(&self) -> u64 {
        self.fs.len(&self.path).unwrap_or(0)
    }

    fn io_err<'p>(op: &'static str, path: &'p Path) -> impl FnOnce(io::Error) -> JournalError + 'p {
        move |source| JournalError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// Append one record and apply the fsync policy.
    pub fn append(&mut self, record: &JournalRecord) -> Result<u64, JournalError> {
        self.append_frames(std::slice::from_ref(record))
    }

    /// Append several records as one contiguous write (one fsync at most).
    /// Used for staged-merge batches so the markers and edits share fate.
    pub fn append_batch(&mut self, records: &[JournalRecord]) -> Result<u64, JournalError> {
        self.append_frames(records)
    }

    fn append_frames(&mut self, records: &[JournalRecord]) -> Result<u64, JournalError> {
        let mut buffer = Vec::new();
        for record in records {
            buffer.extend_from_slice(&encode_record(record)?);
        }
        let pre_len = self.byte_len();
        self.fs
            .append(&self.path, &buffer)
            .map_err(Self::io_err("append", &self.path))?;
        if let Some(m) = &self.metrics {
            m.incr("store.journal.appends", records.len() as u64);
            m.incr("store.journal.bytes", buffer.len() as u64);
        }
        self.unsynced = self.unsynced.saturating_add(1);
        let should_sync = match self.policy {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::Never => false,
        };
        if should_sync {
            if let Err(e) = self.sync() {
                // The append will be reported as failed, so the caller never
                // acknowledges these records — but the bytes are already in
                // the file, and a *later* successful fsync would make them
                // durable, letting recovery replay an edit nobody committed.
                // Cut them back out (best effort: under a crash every
                // subsequent op fails anyway, and the tail is volatile).
                let _ = self.fs.truncate(&self.path, pre_len);
                return Err(e);
            }
        }
        Ok(buffer.len() as u64)
    }

    /// Force everything appended so far to durable storage.
    pub fn sync(&mut self) -> Result<(), JournalError> {
        if !self.fs.exists(&self.path) {
            return Ok(());
        }
        self.fs
            .fsync(&self.path)
            .map_err(Self::io_err("fsync", &self.path))?;
        self.unsynced = 0;
        if let Some(m) = &self.metrics {
            m.incr("store.journal.syncs", 1);
        }
        Ok(())
    }

    /// Truncate the journal to `len` bytes (used to repair a failed batch
    /// append and to cut a torn tail during recovery).
    pub fn truncate(&mut self, len: u64) -> Result<(), JournalError> {
        if !self.fs.exists(&self.path) {
            return Ok(());
        }
        self.fs
            .truncate(&self.path, len)
            .map_err(Self::io_err("truncate", &self.path))
    }

    /// Empty the journal after a successful snapshot (compaction).
    pub fn reset(&mut self) -> Result<(), JournalError> {
        self.truncate(0)?;
        self.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use crate::types::{FragmentKind, SourceRef, SqlFragment};

    fn edit(desc: &str) -> Edit {
        Edit::InsertExample {
            intent: None,
            description: desc.into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
            term: None,
            source: SourceRef::Manual,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_through_scan() {
        let records = vec![
            JournalRecord::Edit(edit("a")),
            JournalRecord::Checkpoint { label: "cp".into() },
            JournalRecord::BatchStart {
                label: "merge".into(),
                count: 1,
            },
            JournalRecord::Edit(edit("b")),
            JournalRecord::BatchCommit,
        ];
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_record(r).unwrap());
        }
        let outcome = scan(&bytes);
        assert_eq!(outcome.end, ScanEnd::Clean);
        assert_eq!(outcome.records, records);
        assert_eq!(outcome.valid_bytes, bytes.len() as u64);
    }

    #[test]
    fn tail_damage_is_torn_mid_file_damage_is_corrupt() {
        let mut bytes = Vec::new();
        for i in 0..4 {
            bytes.extend_from_slice(
                &encode_record(&JournalRecord::Edit(edit(&format!("e{i}")))).unwrap(),
            );
        }
        let record_len = bytes.len() / 4;

        // Cut the last frame short: torn tail, 3 records survive.
        let torn = &bytes[..bytes.len() - 5];
        let outcome = scan(torn);
        assert_eq!(outcome.end, ScanEnd::TornTail);
        assert_eq!(outcome.records.len(), 3);
        assert_eq!(outcome.valid_bytes as usize, record_len * 3);

        // Flip a payload bit in the second frame: corruption, 1 record
        // survives, and the scan refuses to resync past the damage.
        let mut flipped = bytes.clone();
        flipped[record_len + RECORD_HEADER_BYTES + 2] ^= 0x01;
        let outcome = scan(&flipped);
        assert_eq!(outcome.end, ScanEnd::Corrupt);
        assert_eq!(outcome.records.len(), 1);

        // The same flip in the *final* frame is indistinguishable from a
        // torn write and classified accordingly.
        let mut tail_flip = bytes.clone();
        let last = record_len * 3 + RECORD_HEADER_BYTES + 2;
        tail_flip[last] ^= 0x01;
        let outcome = scan(&tail_flip);
        assert_eq!(outcome.end, ScanEnd::TornTail);
        assert_eq!(outcome.records.len(), 3);
    }

    #[test]
    fn oversized_length_prefix_is_treated_as_a_tear() {
        let mut bytes = encode_record(&JournalRecord::Edit(edit("a"))).unwrap();
        let tail_start = bytes.len();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0u8; 20]);
        let outcome = scan(&bytes);
        assert_eq!(outcome.end, ScanEnd::TornTail);
        assert_eq!(outcome.records.len(), 1);
        assert_eq!(outcome.valid_bytes as usize, tail_start);
    }

    #[test]
    fn journal_appends_and_policies() {
        let mem = Arc::new(MemFs::new());
        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let path = PathBuf::from("j.wal");

        // Never-sync: bytes visible but a crash wipes them.
        let mut journal = Journal::new(Arc::clone(&fs), &path, FsyncPolicy::Never);
        journal.append(&JournalRecord::Edit(edit("a"))).unwrap();
        mem.crash();
        assert_eq!(fs.read(&path).unwrap(), b"");

        // Always-sync: the record survives the crash.
        let mut journal = Journal::new(Arc::clone(&fs), &path, FsyncPolicy::Always);
        journal.append(&JournalRecord::Edit(edit("b"))).unwrap();
        mem.crash();
        let outcome = scan(&fs.read(&path).unwrap());
        assert_eq!(outcome.end, ScanEnd::Clean);
        assert_eq!(outcome.records, vec![JournalRecord::Edit(edit("b"))]);

        // EveryN(2): first append volatile, second makes both durable.
        let mut journal = Journal::new(Arc::clone(&fs), &path, FsyncPolicy::EveryN(2));
        journal.append(&JournalRecord::Edit(edit("c"))).unwrap();
        journal.append(&JournalRecord::Edit(edit("d"))).unwrap();
        journal.append(&JournalRecord::Edit(edit("e"))).unwrap();
        mem.crash();
        let outcome = scan(&fs.read(&path).unwrap());
        assert_eq!(outcome.records.len(), 3); // b, c, d — e was unsynced
        journal.reset().unwrap();
        assert_eq!(journal.byte_len(), 0);
    }
}
