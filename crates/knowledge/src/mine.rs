//! Intent mining (§2.1).
//!
//! "A user intent describes a particular need or request … These intents
//! are mined and verified by SMEs." [`mine_intents`] proposes intents by
//! greedily clustering the historical log questions on content-token
//! overlap; an SME then verifies/renames them (the
//! [`IntentProposal::accept`] step) before pre-processing uses them.

use crate::preprocess::QueryLogEntry;
use crate::types::Intent;
use genedit_retrieval::tokenize;
use std::collections::BTreeSet;

/// A mined intent candidate awaiting SME verification.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentProposal {
    /// Machine-proposed key (from the cluster's characteristic tokens).
    pub proposed_key: String,
    /// The shared content tokens that define the cluster.
    pub signature: Vec<String>,
    /// Log ids of the member queries.
    pub members: Vec<u64>,
}

impl IntentProposal {
    /// SME verification: accept the proposal, optionally renaming it.
    pub fn accept(&self, name: impl Into<String>, description: impl Into<String>) -> Intent {
        Intent::new(self.proposed_key.clone(), name, description)
    }
}

/// Words too generic to characterize an intent.
const GENERIC: &[&str] = &[
    "the", "a", "an", "of", "in", "for", "per", "by", "with", "and", "or", "to", "our", "all",
    "show", "me", "what", "which", "how", "many", "is", "are", "from", "on", "at", "any", "total",
    "top", "best", "worst", "each", "without",
];

fn signature_tokens(text: &str) -> BTreeSet<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| {
            t.len() > 2 && !GENERIC.contains(&t.as_str()) && !t.chars().all(|c| c.is_ascii_digit())
        })
        .collect()
}

/// Greedy single-pass clustering of log questions by Jaccard similarity of
/// their content tokens. `min_similarity` in (0, 1]; clusters with fewer
/// than `min_members` queries are dropped (too thin to be an intent).
pub fn mine_intents(
    logs: &[QueryLogEntry],
    min_similarity: f64,
    min_members: usize,
) -> Vec<IntentProposal> {
    let mut clusters: Vec<(BTreeSet<String>, Vec<u64>)> = Vec::new();
    for log in logs {
        let tokens = signature_tokens(&log.question);
        if tokens.is_empty() {
            continue;
        }
        let best = clusters
            .iter_mut()
            .map(|c| {
                let inter = c.0.intersection(&tokens).count() as f64;
                let union = c.0.union(&tokens).count() as f64;
                (inter / union, c)
            })
            .filter(|(sim, _)| *sim >= min_similarity)
            .max_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        match best {
            Some((_, cluster)) => {
                // The cluster signature tightens to the intersection, so it
                // keeps only what its members share.
                cluster.0 = cluster.0.intersection(&tokens).cloned().collect();
                cluster.1.push(log.log_id);
            }
            None => clusters.push((tokens, vec![log.log_id])),
        }
    }

    clusters
        .into_iter()
        .filter(|(sig, members)| members.len() >= min_members && !sig.is_empty())
        .map(|(sig, members)| {
            let signature: Vec<String> = sig.into_iter().collect();
            let proposed_key = signature
                .iter()
                .take(3)
                .cloned()
                .collect::<Vec<_>>()
                .join("_");
            IntentProposal {
                proposed_key,
                signature,
                members,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(id: u64, q: &str) -> QueryLogEntry {
        QueryLogEntry {
            log_id: id,
            question: q.into(),
            sql: "SELECT 1".into(),
            intent: None,
        }
    }

    #[test]
    fn clusters_similar_questions() {
        let logs = vec![
            log(1, "quarterly revenue per organization in Canada"),
            log(2, "quarterly revenue per organization in USA"),
            log(3, "quarterly revenue per organization in Mexico"),
            log(4, "viewership numbers by region"),
            log(5, "viewership numbers by country"),
            log(6, "staff roster for managers"),
        ];
        let proposals = mine_intents(&logs, 0.5, 2);
        assert_eq!(proposals.len(), 2, "{proposals:?}");
        let revenue = proposals
            .iter()
            .find(|p| p.signature.contains(&"revenue".to_string()))
            .unwrap();
        assert_eq!(revenue.members, vec![1, 2, 3]);
        let viewership = proposals
            .iter()
            .find(|p| p.signature.contains(&"viewership".to_string()))
            .unwrap();
        assert_eq!(viewership.members, vec![4, 5]);
        // The roster singleton is below min_members.
        assert!(!proposals.iter().any(|p| p.members.contains(&6)));
    }

    #[test]
    fn generic_words_do_not_cluster() {
        let logs = vec![
            log(1, "show me the total revenue"),
            log(2, "show me the total deliveries"),
        ];
        // "show/me/the/total" are generic; the content tokens differ, so no
        // shared cluster forms at high similarity.
        let proposals = mine_intents(&logs, 0.5, 2);
        assert!(proposals.is_empty(), "{proposals:?}");
    }

    #[test]
    fn acceptance_produces_intent() {
        let logs = vec![
            log(1, "billing per clinic in WA"),
            log(2, "billing per clinic in OR"),
        ];
        let proposals = mine_intents(&logs, 0.5, 2);
        assert_eq!(proposals.len(), 1);
        let intent = proposals[0].accept("Billing", "Clinic billing questions");
        assert_eq!(intent.key, proposals[0].proposed_key);
        assert_eq!(intent.name, "Billing");
    }

    #[test]
    fn empty_and_trivial_inputs() {
        assert!(mine_intents(&[], 0.5, 2).is_empty());
        let logs = vec![log(1, "??"), log(2, "the of in")];
        assert!(mine_intents(&logs, 0.5, 1).is_empty());
    }

    #[test]
    fn mining_on_generated_domain_logs() {
        // The sports domain's historical logs share the performance
        // vocabulary; mining should find at least one multi-member intent.
        let spec_logs = vec![
            log(
                1,
                "our sports organisations with the best and worst QoQFP in Canada for 2022Q3",
            ),
            log(2, "total revenue per sports organisations in 2022"),
            log(3, "sports organisations located in Canada"),
            log(4, "our sports organisations without any viewership data"),
            log(5, "RPV per sports organisations for 2022Q4"),
            log(
                6,
                "quarterly revenue comparison per sports organisations in Canada",
            ),
        ];
        let proposals = mine_intents(&spec_logs, 0.25, 2);
        assert!(!proposals.is_empty());
        assert!(proposals.iter().any(|p| p.members.len() >= 2));
    }
}
