//! The versioned knowledge set.
//!
//! "All edits due to user feedback are logged into a history that can be
//! audited and can be used to revert back to any prior checkpoint" (§1,
//! §4.2.2). The set is an event-sourced store: every mutation goes through
//! [`KnowledgeSet::apply`], is recorded in the log, and the whole state is
//! reproducible by replaying the log from empty (property-tested).

use crate::types::{
    Example, ExampleId, Instruction, InstructionId, Intent, Provenance, RetrievalStage,
    SchemaElement, SourceRef, SqlFragment,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from knowledge-set operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KnowledgeError {
    /// The referenced example does not exist.
    NoSuchExample(ExampleId),
    /// The referenced instruction does not exist.
    NoSuchInstruction(InstructionId),
    /// An intent with this key already exists.
    DuplicateIntent(String),
    /// The referenced checkpoint does not exist.
    NoSuchCheckpoint(u64),
}

impl fmt::Display for KnowledgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnowledgeError::NoSuchExample(id) => write!(f, "no such example {id}"),
            KnowledgeError::NoSuchInstruction(id) => write!(f, "no such instruction {id}"),
            KnowledgeError::DuplicateIntent(k) => write!(f, "intent {k} already exists"),
            KnowledgeError::NoSuchCheckpoint(id) => write!(f, "no such checkpoint {id}"),
        }
    }
}

impl std::error::Error for KnowledgeError {}

/// A single edit to the knowledge set — the unit recommended by the
/// edits-recommendation module, staged by SMEs, and merged on approval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Edit {
    /// Add a new decomposed example.
    InsertExample {
        /// Intent key to group under, when known.
        intent: Option<String>,
        /// Natural-language description of the fragment.
        description: String,
        /// The decomposed SQL sub-statement.
        fragment: SqlFragment,
        /// Domain term the example defines, when applicable.
        term: Option<String>,
        /// Where the edit came from.
        source: SourceRef,
    },
    /// Modify an existing example; `None` fields are left unchanged.
    UpdateExample {
        /// Example to modify.
        id: ExampleId,
        /// New description, if changing.
        description: Option<String>,
        /// New fragment, if changing.
        fragment: Option<SqlFragment>,
        /// `Some(None)` clears the term; `None` leaves it unchanged.
        term: Option<Option<String>>,
        /// Where the edit came from.
        source: SourceRef,
    },
    /// Remove an example.
    DeleteExample {
        /// Example to remove.
        id: ExampleId,
    },
    /// Add a new generation instruction.
    InsertInstruction {
        /// Intent key to group under, when known.
        intent: Option<String>,
        /// The natural-language guidance text.
        text: String,
        /// Expected SQL sub-expression illustrating the instruction.
        sql_hint: Option<String>,
        /// Domain term the instruction explains, when applicable.
        term: Option<String>,
        /// Where the edit came from.
        source: SourceRef,
    },
    /// Modify an existing instruction; `None` fields are left unchanged.
    UpdateInstruction {
        /// Instruction to modify.
        id: InstructionId,
        /// New text, if changing.
        text: Option<String>,
        /// `Some(None)` clears the hint; `None` leaves it unchanged.
        sql_hint: Option<Option<String>>,
        /// Where the edit came from.
        source: SourceRef,
    },
    /// Remove an instruction.
    DeleteInstruction {
        /// Instruction to remove.
        id: InstructionId,
    },
    /// Register a new mined intent.
    AddIntent(Intent),
    /// Add (or replace, keyed by `TABLE.COLUMN`) a schema element.
    AddSchemaElement(SchemaElement),
    /// Attach a free-text hint to a retrieval/re-ranking operator (§1).
    AddRetrievalHint {
        /// Pipeline stage the hint applies to.
        stage: RetrievalStage,
        /// The hint text.
        text: String,
    },
}

impl Edit {
    /// Short human-readable summary used in the staging UI and history.
    pub fn summary(&self) -> String {
        match self {
            Edit::InsertExample { description, .. } => {
                format!("insert example: {description}")
            }
            Edit::UpdateExample { id, .. } => format!("update example {id}"),
            Edit::DeleteExample { id } => format!("delete example {id}"),
            Edit::InsertInstruction { text, .. } => format!("insert instruction: {text}"),
            Edit::UpdateInstruction { id, .. } => format!("update instruction {id}"),
            Edit::DeleteInstruction { id } => format!("delete instruction {id}"),
            Edit::AddIntent(i) => format!("add intent {}", i.key),
            Edit::AddSchemaElement(s) => format!("add schema element {}", s.key()),
            Edit::AddRetrievalHint { stage, text } => {
                format!("add retrieval hint ({stage:?}): {text}")
            }
        }
    }
}

/// What an applied edit produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EditOutcome {
    /// A new example was created with this id.
    InsertedExample(ExampleId),
    /// A new instruction was created with this id.
    InsertedInstruction(InstructionId),
    /// The edit applied without creating a new element.
    Applied,
}

/// One entry of the audit log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedEdit {
    /// Position in the log (0-based).
    pub seq: u64,
    /// Logical timestamp at application.
    pub tick: u64,
    /// The edit that was applied.
    pub edit: Edit,
    /// What applying it produced.
    pub outcome: EditOutcome,
}

/// Checkpoint handle for revert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointInfo {
    /// Checkpoint id, usable with [`KnowledgeSet::revert_to`].
    pub id: u64,
    /// Human-readable label given at checkpoint time.
    pub label: String,
    /// Log length at checkpoint time.
    pub log_len: usize,
}

/// The mutable state (separate from the log so checkpoints can snapshot
/// it cheaply and equality checks stay meaningful).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
struct State {
    intents: Vec<Intent>,
    examples: Vec<Example>,
    instructions: Vec<Instruction>,
    schema_elements: Vec<SchemaElement>,
    retrieval_hints: Vec<(RetrievalStage, String)>,
    next_example_id: u64,
    next_instruction_id: u64,
    tick: u64,
}

/// The full materialized content of a knowledge set, detached from its
/// audit log and checkpoints — the unit the paged tenant store persists
/// as page records and restores on page-in. Two sets with equal content
/// are [`KnowledgeSet::content_eq`] regardless of edit history.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KnowledgeContent {
    /// All registered intents.
    pub intents: Vec<Intent>,
    /// All live examples.
    pub examples: Vec<Example>,
    /// All live instructions.
    pub instructions: Vec<Instruction>,
    /// All schema elements.
    pub schema_elements: Vec<SchemaElement>,
    /// Hints per retrieval stage, in insertion order.
    pub retrieval_hints: Vec<(RetrievalStage, String)>,
    /// Next example id to allocate (ids are never reused).
    pub next_example_id: u64,
    /// Next instruction id to allocate.
    pub next_instruction_id: u64,
    /// Logical clock at detachment time.
    pub tick: u64,
}

/// The company-specific knowledge set (§2.1): examples, instructions, and
/// schema elements grouped by user intents, with a full audit history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KnowledgeSet {
    state: State,
    log: Vec<LoggedEdit>,
    checkpoints: Vec<(CheckpointInfo, State)>,
}

impl KnowledgeSet {
    /// An empty knowledge set.
    pub fn new() -> KnowledgeSet {
        KnowledgeSet::default()
    }

    /// Rebuild a knowledge set by replaying an edit log from empty.
    /// Replay is deterministic: ids and ticks are reassigned identically.
    pub fn from_log(edits: impl IntoIterator<Item = Edit>) -> Result<KnowledgeSet, KnowledgeError> {
        let mut ks = KnowledgeSet::new();
        for e in edits {
            ks.apply(e)?;
        }
        Ok(ks)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// All registered intents.
    pub fn intents(&self) -> &[Intent] {
        &self.state.intents
    }

    /// All live examples.
    pub fn examples(&self) -> &[Example] {
        &self.state.examples
    }

    /// All live instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.state.instructions
    }

    /// All schema elements.
    pub fn schema_elements(&self) -> &[SchemaElement] {
        &self.state.schema_elements
    }

    /// Hints attached to the given retrieval stage, in insertion order.
    pub fn retrieval_hints(&self, stage: RetrievalStage) -> Vec<&str> {
        self.state
            .retrieval_hints
            .iter()
            .filter(|(s, _)| *s == stage)
            .map(|(_, t)| t.as_str())
            .collect()
    }

    /// Look up an example by id.
    pub fn example(&self, id: ExampleId) -> Option<&Example> {
        self.state.examples.iter().find(|e| e.id == id)
    }

    /// Look up an instruction by id.
    pub fn instruction(&self, id: InstructionId) -> Option<&Instruction> {
        self.state.instructions.iter().find(|i| i.id == id)
    }

    /// Look up an intent by key.
    pub fn intent(&self, key: &str) -> Option<&Intent> {
        self.state.intents.iter().find(|i| i.key == key)
    }

    /// Examples grouped under the given intent key.
    pub fn examples_for_intent<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a Example> {
        self.state
            .examples
            .iter()
            .filter(move |e| e.intent.as_deref() == Some(key))
    }

    /// Instructions grouped under the given intent key.
    pub fn instructions_for_intent<'a>(
        &'a self,
        key: &'a str,
    ) -> impl Iterator<Item = &'a Instruction> {
        self.state
            .instructions
            .iter()
            .filter(move |i| i.intent.as_deref() == Some(key))
    }

    /// Schema elements grouped under the given intent key.
    pub fn schema_for_intent<'a>(
        &'a self,
        key: &'a str,
    ) -> impl Iterator<Item = &'a SchemaElement> {
        self.state
            .schema_elements
            .iter()
            .filter(move |s| s.intents.iter().any(|i| i == key))
    }

    /// The full audit log, oldest first.
    pub fn log(&self) -> &[LoggedEdit] {
        &self.log
    }

    /// All live checkpoints, oldest first.
    pub fn checkpoints(&self) -> Vec<&CheckpointInfo> {
        self.checkpoints.iter().map(|(info, _)| info).collect()
    }

    /// Current logical time.
    pub fn tick(&self) -> u64 {
        self.state.tick
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Validate an edit against the current state without applying it.
    /// `Ok(())` guarantees the matching [`KnowledgeSet::apply`] succeeds —
    /// the durable store journals edits *before* applying them and relies
    /// on this check to never journal a record that cannot replay.
    pub fn check(&self, edit: &Edit) -> Result<(), KnowledgeError> {
        match edit {
            Edit::UpdateExample { id, .. } | Edit::DeleteExample { id } => {
                self.example(*id)
                    .ok_or(KnowledgeError::NoSuchExample(*id))?;
            }
            Edit::UpdateInstruction { id, .. } | Edit::DeleteInstruction { id } => {
                self.instruction(*id)
                    .ok_or(KnowledgeError::NoSuchInstruction(*id))?;
            }
            Edit::AddIntent(intent) => {
                if self.intent(&intent.key).is_some() {
                    return Err(KnowledgeError::DuplicateIntent(intent.key.clone()));
                }
            }
            Edit::InsertExample { .. }
            | Edit::InsertInstruction { .. }
            | Edit::AddSchemaElement(_)
            | Edit::AddRetrievalHint { .. } => {}
        }
        Ok(())
    }

    /// Apply an edit, logging it. A rejected edit leaves the set fully
    /// unchanged — including the logical clock — so a set that survived
    /// failed applies still replays bit-identically from its log.
    pub fn apply(&mut self, edit: Edit) -> Result<EditOutcome, KnowledgeError> {
        let tick = self.state.tick;
        let outcome = match &edit {
            Edit::InsertExample {
                intent,
                description,
                fragment,
                term,
                source,
            } => {
                let id = ExampleId(self.state.next_example_id);
                self.state.next_example_id += 1;
                self.state.examples.push(Example {
                    id,
                    intent: intent.clone(),
                    description: description.clone(),
                    fragment: fragment.clone(),
                    term: term.clone(),
                    provenance: Provenance {
                        source: source.clone(),
                        tick,
                    },
                });
                EditOutcome::InsertedExample(id)
            }
            Edit::UpdateExample {
                id,
                description,
                fragment,
                term,
                source,
            } => {
                let ex = self
                    .state
                    .examples
                    .iter_mut()
                    .find(|e| e.id == *id)
                    .ok_or(KnowledgeError::NoSuchExample(*id))?;
                if let Some(d) = description {
                    ex.description = d.clone();
                }
                if let Some(fr) = fragment {
                    ex.fragment = fr.clone();
                }
                if let Some(t) = term {
                    ex.term = t.clone();
                }
                ex.provenance = Provenance {
                    source: source.clone(),
                    tick,
                };
                EditOutcome::Applied
            }
            Edit::DeleteExample { id } => {
                let before = self.state.examples.len();
                self.state.examples.retain(|e| e.id != *id);
                if self.state.examples.len() == before {
                    return Err(KnowledgeError::NoSuchExample(*id));
                }
                EditOutcome::Applied
            }
            Edit::InsertInstruction {
                intent,
                text,
                sql_hint,
                term,
                source,
            } => {
                let id = InstructionId(self.state.next_instruction_id);
                self.state.next_instruction_id += 1;
                self.state.instructions.push(Instruction {
                    id,
                    intent: intent.clone(),
                    text: text.clone(),
                    sql_hint: sql_hint.clone(),
                    term: term.clone(),
                    provenance: Provenance {
                        source: source.clone(),
                        tick,
                    },
                });
                EditOutcome::InsertedInstruction(id)
            }
            Edit::UpdateInstruction {
                id,
                text,
                sql_hint,
                source,
            } => {
                let ins = self
                    .state
                    .instructions
                    .iter_mut()
                    .find(|i| i.id == *id)
                    .ok_or(KnowledgeError::NoSuchInstruction(*id))?;
                if let Some(t) = text {
                    ins.text = t.clone();
                }
                if let Some(h) = sql_hint {
                    ins.sql_hint = h.clone();
                }
                ins.provenance = Provenance {
                    source: source.clone(),
                    tick,
                };
                EditOutcome::Applied
            }
            Edit::DeleteInstruction { id } => {
                let before = self.state.instructions.len();
                self.state.instructions.retain(|i| i.id != *id);
                if self.state.instructions.len() == before {
                    return Err(KnowledgeError::NoSuchInstruction(*id));
                }
                EditOutcome::Applied
            }
            Edit::AddIntent(intent) => {
                if self.intent(&intent.key).is_some() {
                    return Err(KnowledgeError::DuplicateIntent(intent.key.clone()));
                }
                self.state.intents.push(intent.clone());
                EditOutcome::Applied
            }
            Edit::AddSchemaElement(el) => {
                // Idempotent on key: re-adding replaces the description.
                if let Some(existing) = self
                    .state
                    .schema_elements
                    .iter_mut()
                    .find(|s| s.key() == el.key())
                {
                    *existing = el.clone();
                } else {
                    self.state.schema_elements.push(el.clone());
                }
                EditOutcome::Applied
            }
            Edit::AddRetrievalHint { stage, text } => {
                self.state.retrieval_hints.push((*stage, text.clone()));
                EditOutcome::Applied
            }
        };
        self.state.tick += 1;
        self.log.push(LoggedEdit {
            seq: self.log.len() as u64,
            tick,
            edit,
            outcome,
        });
        Ok(outcome)
    }

    /// Record a named checkpoint and return its id.
    pub fn checkpoint(&mut self, label: impl Into<String>) -> u64 {
        let id = self.checkpoints.len() as u64;
        self.checkpoints.push((
            CheckpointInfo {
                id,
                label: label.into(),
                log_len: self.log.len(),
            },
            self.state.clone(),
        ));
        id
    }

    /// Revert to a prior checkpoint. The log is truncated to the
    /// checkpoint position; later checkpoints are discarded.
    pub fn revert_to(&mut self, checkpoint_id: u64) -> Result<(), KnowledgeError> {
        let idx = checkpoint_id as usize;
        if idx >= self.checkpoints.len() {
            return Err(KnowledgeError::NoSuchCheckpoint(checkpoint_id));
        }
        let (info, snapshot) = self.checkpoints[idx].clone();
        self.state = snapshot;
        self.log.truncate(info.log_len);
        self.checkpoints.truncate(idx + 1);
        Ok(())
    }

    /// Structural equality of the *content* (ignoring log/checkpoints).
    pub fn content_eq(&self, other: &KnowledgeSet) -> bool {
        self.state == other.state
    }

    /// Detach the materialized content (state without log/checkpoints).
    /// The paged tenant store persists this as page records.
    pub fn content(&self) -> KnowledgeContent {
        KnowledgeContent {
            intents: self.state.intents.clone(),
            examples: self.state.examples.clone(),
            instructions: self.state.instructions.clone(),
            schema_elements: self.state.schema_elements.clone(),
            retrieval_hints: self.state.retrieval_hints.clone(),
            next_example_id: self.state.next_example_id,
            next_instruction_id: self.state.next_instruction_id,
            tick: self.state.tick,
        }
    }

    /// Rebuild a set from detached content with an empty log and no
    /// checkpoints. The result is [`KnowledgeSet::content_eq`] to the set
    /// the content came from, and future ids/ticks continue where the
    /// original left off (ids are never reused across a page-out/page-in
    /// round trip).
    pub fn from_content(content: KnowledgeContent) -> KnowledgeSet {
        KnowledgeSet {
            state: State {
                intents: content.intents,
                examples: content.examples,
                instructions: content.instructions,
                schema_elements: content.schema_elements,
                retrieval_hints: content.retrieval_hints,
                next_example_id: content.next_example_id,
                next_instruction_id: content.next_instruction_id,
                tick: content.tick,
            },
            log: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    /// Number of elements, for quick reporting.
    pub fn stats(&self) -> KnowledgeStats {
        KnowledgeStats {
            intents: self.state.intents.len(),
            examples: self.state.examples.len(),
            instructions: self.state.instructions.len(),
            schema_elements: self.state.schema_elements.len(),
            edits_logged: self.log.len(),
        }
    }
}

/// Size summary of a knowledge set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnowledgeStats {
    /// Number of registered intents.
    pub intents: usize,
    /// Number of live examples.
    pub examples: usize,
    /// Number of live instructions.
    pub instructions: usize,
    /// Number of schema elements.
    pub schema_elements: usize,
    /// Length of the audit log.
    pub edits_logged: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FragmentKind;

    fn frag(sql: &str) -> SqlFragment {
        SqlFragment::new(FragmentKind::Where, sql, "main")
    }

    fn insert_example(ks: &mut KnowledgeSet, desc: &str) -> ExampleId {
        match ks
            .apply(Edit::InsertExample {
                intent: Some("fin".into()),
                description: desc.into(),
                fragment: frag("WHERE X = 1"),
                term: None,
                source: SourceRef::Manual,
            })
            .unwrap()
        {
            EditOutcome::InsertedExample(id) => id,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn insert_update_delete_example() {
        let mut ks = KnowledgeSet::new();
        let id = insert_example(&mut ks, "first");
        assert_eq!(ks.examples().len(), 1);
        ks.apply(Edit::UpdateExample {
            id,
            description: Some("updated".into()),
            fragment: None,
            term: Some(Some("RPV".into())),
            source: SourceRef::Feedback { feedback_id: 9 },
        })
        .unwrap();
        let ex = ks.example(id).unwrap();
        assert_eq!(ex.description, "updated");
        assert_eq!(ex.term.as_deref(), Some("RPV"));
        assert_eq!(ex.provenance.source, SourceRef::Feedback { feedback_id: 9 });
        ks.apply(Edit::DeleteExample { id }).unwrap();
        assert!(ks.examples().is_empty());
        assert_eq!(
            ks.apply(Edit::DeleteExample { id }),
            Err(KnowledgeError::NoSuchExample(id))
        );
    }

    #[test]
    fn ids_are_never_reused() {
        let mut ks = KnowledgeSet::new();
        let a = insert_example(&mut ks, "a");
        ks.apply(Edit::DeleteExample { id: a }).unwrap();
        let b = insert_example(&mut ks, "b");
        assert_ne!(a, b);
    }

    #[test]
    fn log_records_everything() {
        let mut ks = KnowledgeSet::new();
        insert_example(&mut ks, "a");
        ks.apply(Edit::AddIntent(Intent::new("fin", "Financial", "")))
            .unwrap();
        assert_eq!(ks.log().len(), 2);
        assert_eq!(ks.log()[0].seq, 0);
        assert_eq!(ks.log()[1].seq, 1);
        assert!(ks.log()[1].tick > ks.log()[0].tick);
    }

    #[test]
    fn replay_reproduces_state() {
        let mut ks = KnowledgeSet::new();
        let id = insert_example(&mut ks, "a");
        insert_example(&mut ks, "b");
        ks.apply(Edit::UpdateExample {
            id,
            description: Some("a2".into()),
            fragment: None,
            term: None,
            source: SourceRef::Manual,
        })
        .unwrap();
        ks.apply(Edit::InsertInstruction {
            intent: None,
            text: "use conditional aggregation".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Document {
                doc_id: 1,
                section: "s".into(),
            },
        })
        .unwrap();

        let replayed = KnowledgeSet::from_log(ks.log().iter().map(|l| l.edit.clone())).unwrap();
        assert!(ks.content_eq(&replayed));
    }

    #[test]
    fn checkpoint_and_revert() {
        let mut ks = KnowledgeSet::new();
        insert_example(&mut ks, "a");
        let cp = ks.checkpoint("after-a");
        insert_example(&mut ks, "b");
        insert_example(&mut ks, "c");
        assert_eq!(ks.examples().len(), 3);
        ks.revert_to(cp).unwrap();
        assert_eq!(ks.examples().len(), 1);
        assert_eq!(ks.log().len(), 1);
        // Post-revert edits continue cleanly.
        insert_example(&mut ks, "d");
        assert_eq!(ks.examples().len(), 2);
        assert!(ks.revert_to(99).is_err());
    }

    #[test]
    fn revert_discards_later_checkpoints() {
        let mut ks = KnowledgeSet::new();
        let cp0 = ks.checkpoint("zero");
        insert_example(&mut ks, "a");
        let _cp1 = ks.checkpoint("one");
        ks.revert_to(cp0).unwrap();
        assert_eq!(ks.checkpoints().len(), 1);
    }

    #[test]
    fn failed_apply_leaves_set_replayable() {
        let mut ks = KnowledgeSet::new();
        let a = insert_example(&mut ks, "a");
        ks.apply(Edit::DeleteExample { id: a }).unwrap();
        // A rejected edit must not advance the logical clock...
        let tick_before = ks.tick();
        assert!(ks.apply(Edit::DeleteExample { id: a }).is_err());
        assert_eq!(ks.tick(), tick_before);
        insert_example(&mut ks, "b");
        // ...so the log still replays to the identical state (ticks and
        // all) even though a failed apply happened in between.
        let replayed = KnowledgeSet::from_log(ks.log().iter().map(|l| l.edit.clone())).unwrap();
        assert!(ks.content_eq(&replayed));
        assert_eq!(ks.tick(), replayed.tick());
    }

    #[test]
    fn check_mirrors_apply_outcomes() {
        let mut ks = KnowledgeSet::new();
        let id = insert_example(&mut ks, "a");
        ks.apply(Edit::AddIntent(Intent::new("fin", "Financial", "")))
            .unwrap();
        let candidates = vec![
            Edit::DeleteExample { id },
            Edit::DeleteExample { id: ExampleId(999) },
            Edit::DeleteInstruction {
                id: InstructionId(0),
            },
            Edit::AddIntent(Intent::new("fin", "Again", "")),
            Edit::AddIntent(Intent::new("view", "Viewership", "")),
            Edit::InsertExample {
                intent: None,
                description: "d".into(),
                fragment: frag("WHERE B = 2"),
                term: None,
                source: SourceRef::Manual,
            },
        ];
        for edit in candidates {
            let checked = ks.check(&edit);
            let mut probe = ks.clone();
            let applied = probe.apply(edit.clone()).map(|_| ());
            assert_eq!(checked, applied, "check/apply disagree on {edit:?}");
        }
    }

    #[test]
    fn duplicate_intent_rejected() {
        let mut ks = KnowledgeSet::new();
        ks.apply(Edit::AddIntent(Intent::new("fin", "Financial", "")))
            .unwrap();
        assert!(matches!(
            ks.apply(Edit::AddIntent(Intent::new("fin", "Again", ""))),
            Err(KnowledgeError::DuplicateIntent(_))
        ));
    }

    #[test]
    fn schema_element_add_is_idempotent_on_key() {
        let mut ks = KnowledgeSet::new();
        let mut el = SchemaElement {
            table: "T".into(),
            column: Some("C".into()),
            description: "v1".into(),
            top_values: vec![],
            intents: vec![],
        };
        ks.apply(Edit::AddSchemaElement(el.clone())).unwrap();
        el.description = "v2".into();
        ks.apply(Edit::AddSchemaElement(el)).unwrap();
        assert_eq!(ks.schema_elements().len(), 1);
        assert_eq!(ks.schema_elements()[0].description, "v2");
    }

    #[test]
    fn retrieval_hints_by_stage() {
        let mut ks = KnowledgeSet::new();
        ks.apply(Edit::AddRetrievalHint {
            stage: RetrievalStage::SchemaLinking,
            text: "prefer OWNERSHIP_FLAG_COLUMN for 'our'".into(),
        })
        .unwrap();
        assert_eq!(ks.retrieval_hints(RetrievalStage::SchemaLinking).len(), 1);
        assert!(ks
            .retrieval_hints(RetrievalStage::ExampleSelection)
            .is_empty());
    }

    #[test]
    fn content_round_trip_preserves_state_and_id_allocation() {
        let mut ks = KnowledgeSet::new();
        let a = insert_example(&mut ks, "a");
        insert_example(&mut ks, "b");
        ks.apply(Edit::DeleteExample { id: a }).unwrap();
        let mut restored = KnowledgeSet::from_content(ks.content());
        assert!(ks.content_eq(&restored));
        assert!(restored.log().is_empty());
        // Ids keep advancing from where the original left off.
        let c = insert_example(&mut restored, "c");
        assert!(c.0 >= 2, "restored set must not reuse ids, got {c:?}");
        assert_eq!(restored.tick(), ks.tick() + 1);
    }

    #[test]
    fn intent_grouping_queries() {
        let mut ks = KnowledgeSet::new();
        insert_example(&mut ks, "a");
        ks.apply(Edit::InsertExample {
            intent: Some("view".into()),
            description: "b".into(),
            fragment: frag("WHERE Y = 2"),
            term: None,
            source: SourceRef::Manual,
        })
        .unwrap();
        assert_eq!(ks.examples_for_intent("fin").count(), 1);
        assert_eq!(ks.examples_for_intent("view").count(), 1);
        assert_eq!(ks.examples_for_intent("nope").count(), 0);
    }
}
