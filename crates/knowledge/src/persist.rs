//! Knowledge-set persistence.
//!
//! The paper's knowledge set is a *materialized view* maintained across
//! deployments; this module serializes the whole set — content, audit log,
//! and checkpoints — to JSON so a deployment can be snapshotted, shipped,
//! and restored bit-for-bit.

use crate::set::KnowledgeSet;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    Io(io::Error),
    Encode(serde_json::Error),
    Decode(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io error: {e}"),
            PersistError::Encode(e) => write!(f, "encode error: {e}"),
            PersistError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Serialize the set (content + log + checkpoints) to pretty JSON.
pub fn to_json(ks: &KnowledgeSet) -> Result<String, PersistError> {
    serde_json::to_string_pretty(ks).map_err(PersistError::Encode)
}

/// Restore a set from JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<KnowledgeSet, PersistError> {
    serde_json::from_str(json).map_err(PersistError::Decode)
}

/// Monotonic discriminator so concurrent saves in one process never share
/// a temp file.
static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write the set to a file atomically: serialize into a sibling temp file,
/// fsync it, then rename over the target. The temp name carries the
/// process id and an in-process sequence number, so concurrent saves —
/// across threads or processes — each write their own temp file and the
/// final rename is the only point of contention (last rename wins, and
/// every intermediate state on disk is a complete snapshot). The fsync
/// before the rename keeps a crash from leaving a renamed-but-empty file
/// on filesystems that reorder data and metadata writes.
pub fn save(ks: &KnowledgeSet, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let json = to_json(ks)?;
    let tmp = path.with_extension(format!(
        "json.tmp.{}.{}",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write_and_sync = || -> io::Result<()> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    };
    write_and_sync().map_err(|err| {
        // Best effort: never leave an orphaned temp file behind.
        let _ = fs::remove_file(&tmp);
        PersistError::Io(err)
    })
}

/// Load a set from a file written by [`save`].
pub fn load(path: impl AsRef<Path>) -> Result<KnowledgeSet, PersistError> {
    let json = fs::read_to_string(path)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Edit;
    use crate::types::{FragmentKind, Intent, SourceRef, SqlFragment};

    fn sample() -> KnowledgeSet {
        let mut ks = KnowledgeSet::new();
        ks.apply(Edit::AddIntent(Intent::new("fin", "Financial", "money")))
            .unwrap();
        ks.apply(Edit::InsertExample {
            intent: Some("fin".into()),
            description: "revenue per viewer".into(),
            fragment: SqlFragment::new(
                FragmentKind::TermDefinition,
                "CAST(R AS FLOAT) / NULLIF(V, 0)",
                "main",
            ),
            term: Some("RPV".into()),
            source: SourceRef::Document {
                doc_id: 1,
                section: "terms".into(),
            },
        })
        .unwrap();
        ks.checkpoint("first");
        ks.apply(Edit::InsertInstruction {
            intent: None,
            text: "use conditional aggregation across periods".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        })
        .unwrap();
        ks
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ks = sample();
        let restored = from_json(&to_json(&ks).unwrap()).unwrap();
        assert!(ks.content_eq(&restored));
        assert_eq!(ks.log().len(), restored.log().len());
        assert_eq!(ks.checkpoints().len(), restored.checkpoints().len());
        // The restored set stays fully functional: revert still works.
        let mut restored = restored;
        restored.revert_to(0).unwrap();
        assert_eq!(restored.instructions().len(), 0);
        assert_eq!(restored.examples().len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("genedit-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ks.json");
        let ks = sample();
        save(&ks, &path).unwrap();
        let restored = load(&path).unwrap();
        assert!(ks.content_eq(&restored));
        std::fs::remove_file(&path).ok();
    }

    /// Hammer one target path from many threads: every interleaving must
    /// leave a complete, loadable snapshot (atomic rename, unique temp
    /// files), and no temp files may survive.
    #[test]
    fn concurrent_saves_never_tear() {
        let dir = std::env::temp_dir().join("genedit-persist-concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ks.json");
        let ks = sample();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        save(&ks, &path).unwrap();
                        let restored = load(&path).unwrap();
                        assert!(ks.content_eq(&restored), "torn snapshot observed");
                    }
                });
            }
        });
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "orphaned temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn decode_errors_are_reported() {
        assert!(matches!(
            from_json("not json"),
            Err(PersistError::Decode(_))
        ));
        assert!(matches!(
            load("/nonexistent/genedit.json"),
            Err(PersistError::Io(_))
        ));
    }
}
