//! Knowledge-set persistence.
//!
//! The paper's knowledge set is a *materialized view* maintained across
//! deployments; this module serializes the whole set — content, audit log,
//! and checkpoints — to JSON so a deployment can be snapshotted, shipped,
//! and restored bit-for-bit.

use crate::set::KnowledgeSet;
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default ceiling for [`load`]: snapshots above this refuse to load.
/// Large enough for any realistic knowledge set, small enough that a
/// corrupted length or a mis-pointed path can't trigger a giant read.
pub const DEFAULT_MAX_BYTES: u64 = 64 * 1024 * 1024;

/// Persistence errors. File-level variants carry the offending path so
/// corruption reports are actionable; `None` means the operation was not
/// tied to a file (e.g. [`from_json`] on an in-memory string).
#[derive(Debug)]
pub enum PersistError {
    /// A filesystem read or write failed.
    Io {
        /// The file involved, when the operation touched one.
        path: Option<PathBuf>,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// The set failed to serialize.
    Encode(serde_json::Error),
    /// The snapshot failed to parse.
    Decode {
        /// The file involved, when the operation touched one.
        path: Option<PathBuf>,
        /// Underlying parse error.
        source: serde_json::Error,
    },
    /// The file exceeds the configured size guard; nothing was read.
    TooLarge {
        /// The offending file.
        path: PathBuf,
        /// Its actual size in bytes.
        len: u64,
        /// The configured ceiling.
        limit: u64,
    },
}

impl PersistError {
    fn io(path: &Path) -> impl FnOnce(io::Error) -> PersistError + '_ {
        move |source| PersistError::Io {
            path: Some(path.to_path_buf()),
            source,
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let at = |path: &Option<PathBuf>| match path {
            Some(p) => format!(" ({})", p.display()),
            None => String::new(),
        };
        match self {
            PersistError::Io { path, source } => write!(f, "io error{}: {source}", at(path)),
            PersistError::Encode(e) => write!(f, "encode error: {e}"),
            PersistError::Decode { path, source } => {
                write!(f, "decode error{}: {source}", at(path))
            }
            PersistError::TooLarge { path, len, limit } => write!(
                f,
                "refusing to load {}: {len} bytes exceeds the {limit}-byte limit",
                path.display()
            ),
        }
    }
}

impl std::error::Error for PersistError {}

/// Serialize the set (content + log + checkpoints) to pretty JSON.
pub fn to_json(ks: &KnowledgeSet) -> Result<String, PersistError> {
    serde_json::to_string_pretty(ks).map_err(PersistError::Encode)
}

/// Restore a set from JSON produced by [`to_json`].
pub fn from_json(json: &str) -> Result<KnowledgeSet, PersistError> {
    serde_json::from_str(json).map_err(|source| PersistError::Decode { path: None, source })
}

/// Monotonic discriminator so concurrent saves in one process never share
/// a temp file.
static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Write the set to a file atomically: serialize into a sibling temp file,
/// fsync it, then rename over the target. The temp name carries the
/// process id and an in-process sequence number, so concurrent saves —
/// across threads or processes — each write their own temp file and the
/// final rename is the only point of contention (last rename wins, and
/// every intermediate state on disk is a complete snapshot). The fsync
/// before the rename keeps a crash from leaving a renamed-but-empty file
/// on filesystems that reorder data and metadata writes.
pub fn save(ks: &KnowledgeSet, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let path = path.as_ref();
    let json = to_json(ks)?;
    let tmp = path.with_extension(format!(
        "json.tmp.{}.{}",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let write_and_sync = || -> io::Result<()> {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(json.as_bytes())?;
        file.sync_all()?;
        fs::rename(&tmp, path)
    };
    write_and_sync().map_err(|err| {
        // Best effort: never leave an orphaned temp file behind.
        let _ = fs::remove_file(&tmp);
        PersistError::Io {
            path: Some(path.to_path_buf()),
            source: err,
        }
    })
}

/// Load a set from a file written by [`save`], refusing files larger than
/// [`DEFAULT_MAX_BYTES`].
pub fn load(path: impl AsRef<Path>) -> Result<KnowledgeSet, PersistError> {
    load_with_limit(path, DEFAULT_MAX_BYTES)
}

/// [`load`] with an explicit size guard: the file's length is checked
/// *before* any bytes are read, so a corrupt or mis-pointed path can
/// never trigger an oversized allocation.
pub fn load_with_limit(
    path: impl AsRef<Path>,
    max_bytes: u64,
) -> Result<KnowledgeSet, PersistError> {
    let path = path.as_ref();
    let len = fs::metadata(path).map_err(PersistError::io(path))?.len();
    if len > max_bytes {
        return Err(PersistError::TooLarge {
            path: path.to_path_buf(),
            len,
            limit: max_bytes,
        });
    }
    let json = fs::read_to_string(path).map_err(PersistError::io(path))?;
    from_json(&json).map_err(|e| match e {
        PersistError::Decode { source, .. } => PersistError::Decode {
            path: Some(path.to_path_buf()),
            source,
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::Edit;
    use crate::types::{FragmentKind, Intent, SourceRef, SqlFragment};

    fn sample() -> KnowledgeSet {
        let mut ks = KnowledgeSet::new();
        ks.apply(Edit::AddIntent(Intent::new("fin", "Financial", "money")))
            .unwrap();
        ks.apply(Edit::InsertExample {
            intent: Some("fin".into()),
            description: "revenue per viewer".into(),
            fragment: SqlFragment::new(
                FragmentKind::TermDefinition,
                "CAST(R AS FLOAT) / NULLIF(V, 0)",
                "main",
            ),
            term: Some("RPV".into()),
            source: SourceRef::Document {
                doc_id: 1,
                section: "terms".into(),
            },
        })
        .unwrap();
        ks.checkpoint("first");
        ks.apply(Edit::InsertInstruction {
            intent: None,
            text: "use conditional aggregation across periods".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        })
        .unwrap();
        ks
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ks = sample();
        let restored = from_json(&to_json(&ks).unwrap()).unwrap();
        assert!(ks.content_eq(&restored));
        assert_eq!(ks.log().len(), restored.log().len());
        assert_eq!(ks.checkpoints().len(), restored.checkpoints().len());
        // The restored set stays fully functional: revert still works.
        let mut restored = restored;
        restored.revert_to(0).unwrap();
        assert_eq!(restored.instructions().len(), 0);
        assert_eq!(restored.examples().len(), 1);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("genedit-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ks.json");
        let ks = sample();
        save(&ks, &path).unwrap();
        let restored = load(&path).unwrap();
        assert!(ks.content_eq(&restored));
        std::fs::remove_file(&path).ok();
    }

    /// Hammer one target path from many threads: every interleaving must
    /// leave a complete, loadable snapshot (atomic rename, unique temp
    /// files), and no temp files may survive.
    #[test]
    fn concurrent_saves_never_tear() {
        let dir = std::env::temp_dir().join("genedit-persist-concurrent");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ks.json");
        let ks = sample();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..20 {
                        save(&ks, &path).unwrap();
                        let restored = load(&path).unwrap();
                        assert!(ks.content_eq(&restored), "torn snapshot observed");
                    }
                });
            }
        });
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|name| name.contains(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "orphaned temp files: {leftovers:?}");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn decode_errors_are_reported() {
        assert!(matches!(
            from_json("not json"),
            Err(PersistError::Decode { path: None, .. })
        ));
        assert!(matches!(
            load("/nonexistent/genedit.json"),
            Err(PersistError::Io { path: Some(_), .. })
        ));
    }

    #[test]
    fn errors_carry_the_offending_path() {
        let dir = std::env::temp_dir().join("genedit-persist-paths");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        std::fs::write(&path, "{ not a knowledge set").unwrap();
        match load(&path) {
            Err(PersistError::Decode { path: Some(p), .. }) => assert_eq!(p, path),
            other => panic!("expected Decode with path, got {other:?}"),
        }
        let message = load(&path).unwrap_err().to_string();
        assert!(message.contains("corrupt.json"), "{message}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn size_guard_refuses_before_reading() {
        let dir = std::env::temp_dir().join("genedit-persist-guard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("big.json");
        let ks = sample();
        save(&ks, &path).unwrap();
        let actual = std::fs::metadata(&path).unwrap().len();
        match load_with_limit(&path, actual - 1) {
            Err(PersistError::TooLarge { len, limit, .. }) => {
                assert_eq!(len, actual);
                assert_eq!(limit, actual - 1);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // At or above the real size, the guard lets the load through.
        assert!(load_with_limit(&path, actual).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
