//! Pre-processing: building the knowledge set (§2.1).
//!
//! Inputs are (i) SQL queries from logs of prior executions and (ii)
//! documents with domain-specific terminology and practices; the output is
//! the materialized knowledge view of decomposed examples, instructions,
//! and value-augmented schema elements, grouped by user intents.

use crate::decompose::decompose_sql;
use crate::set::{Edit, KnowledgeSet};
use crate::types::{FragmentKind, Intent, SchemaElement, SourceRef, SqlFragment};
use genedit_sql::catalog::Database;
use genedit_sql::error::{EngineError, EngineResult};

/// One historical query from the execution logs.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    /// Stable identifier of the log entry (recorded in provenance).
    pub log_id: u64,
    /// The natural-language question the query answered, when known.
    pub question: String,
    /// The executed SQL text.
    pub sql: String,
    /// Intent the query was mined under, when known.
    pub intent: Option<String>,
}

/// A domain term definition extracted from documents (e.g. QoQFP, RPV).
#[derive(Debug, Clone)]
pub struct TermDefinition {
    /// The term itself (e.g. `RPV`).
    pub term: String,
    /// Natural-language meaning.
    pub meaning: String,
    /// The SQL sub-expression computing the term, when it has one.
    pub sql: Option<String>,
    /// Intent the term belongs to, when known.
    pub intent: Option<String>,
}

/// A free-form guideline from documents ("Apply a -1 multiplier when …").
#[derive(Debug, Clone)]
pub struct Guideline {
    /// The guidance text.
    pub text: String,
    /// Expected SQL sub-expression illustrating the guideline.
    pub sql_hint: Option<String>,
    /// Intent the guideline belongs to, when known.
    pub intent: Option<String>,
    /// Document section the guideline was extracted from.
    pub section: String,
}

/// A document of domain-specific terminology and practices.
#[derive(Debug, Clone)]
pub struct DomainDocument {
    /// Stable identifier of the document (recorded in provenance).
    pub doc_id: u64,
    /// Document title.
    pub title: String,
    /// Term definitions the document contains.
    pub terms: Vec<TermDefinition>,
    /// Free-form guidelines the document contains.
    pub guidelines: Vec<Guideline>,
}

/// Configuration of the pre-processing run.
#[derive(Debug, Clone, Default)]
pub struct PreprocessConfig {
    /// Intents mined and verified by SMEs.
    pub intents: Vec<Intent>,
    /// `(intent_key, table_name)` associations for schema grouping.
    pub intent_tables: Vec<(String, String)>,
    /// How many frequent values to attach per column (the paper uses 5).
    pub top_k_values: usize,
    /// When false, logged queries are stored as traditional full-query
    /// examples instead of being decomposed — the "w/o Decomposition"
    /// ablation of Table 2.
    pub decompose_examples: bool,
}

impl PreprocessConfig {
    /// Paper defaults: top-5 values, decomposition on.
    pub fn new(intents: Vec<Intent>) -> PreprocessConfig {
        PreprocessConfig {
            intents,
            intent_tables: Vec::new(),
            top_k_values: 5,
            decompose_examples: true,
        }
    }
}

/// Surface a rejected pre-processing edit (a duplicate intent from the
/// config, say) as a regular engine error instead of a panic.
fn applied<T>(result: Result<T, crate::set::KnowledgeError>) -> EngineResult<()> {
    result
        .map(|_| ())
        .map_err(|e| EngineError::execution(format!("pre-processing edit rejected: {e}")))
}

/// Build a knowledge set from logs, documents, and the database schema.
///
/// Everything goes through [`KnowledgeSet::apply`], so the resulting set
/// carries full provenance and a replayable log.
pub fn build_knowledge_set(
    config: &PreprocessConfig,
    logs: &[QueryLogEntry],
    docs: &[DomainDocument],
    db: &Database,
) -> EngineResult<KnowledgeSet> {
    // Trace into a throwaway tracer; callers that want the spans use
    // [`build_knowledge_set_traced`].
    let tracer = genedit_telemetry::Tracer::new("preprocess");
    build_knowledge_set_traced(config, logs, docs, db, &tracer)
}

/// [`build_knowledge_set`] with pre-processing phases recorded as spans
/// (`knowledge.preprocess` → examples / instructions / schema children)
/// into the caller's tracer.
pub fn build_knowledge_set_traced(
    config: &PreprocessConfig,
    logs: &[QueryLogEntry],
    docs: &[DomainDocument],
    db: &Database,
    tracer: &genedit_telemetry::Tracer,
) -> EngineResult<KnowledgeSet> {
    let root = tracer.span(genedit_telemetry::names::PREPROCESS);
    root.attr("logs", logs.len())
        .attr("docs", docs.len())
        .attr("decompose", config.decompose_examples);
    let mut ks = KnowledgeSet::new();

    for intent in &config.intents {
        applied(ks.apply(Edit::AddIntent(intent.clone())))?;
    }

    // Examples: decompose every logged query into clause fragments, or —
    // for the w/o-Decomposition ablation — keep whole queries.
    let span = tracer.span("knowledge.examples");
    for entry in logs {
        if config.decompose_examples {
            let fragments = decompose_sql(&entry.sql)?;
            for fragment in fragments {
                let description = describe_fragment(&fragment, &entry.question);
                applied(ks.apply(Edit::InsertExample {
                    intent: entry.intent.clone(),
                    description,
                    fragment,
                    term: None,
                    source: SourceRef::QueryLog {
                        log_id: entry.log_id,
                    },
                }))?;
            }
        } else {
            // Validate even when not decomposing: malformed logs should
            // fail loudly either way.
            genedit_sql::parser::parse_statement(&entry.sql)?;
            applied(ks.apply(Edit::InsertExample {
                intent: entry.intent.clone(),
                description: entry.question.clone(),
                fragment: SqlFragment::new(FragmentKind::FullQuery, entry.sql.clone(), "main"),
                term: None,
                source: SourceRef::QueryLog {
                    log_id: entry.log_id,
                },
            }))?;
        }
    }
    span.attr("examples", ks.examples().len());
    span.finish();

    // Instructions and term-definition examples from documents.
    let span = tracer.span("knowledge.instructions");
    for doc in docs {
        for term in &doc.terms {
            applied(ks.apply(Edit::InsertInstruction {
                intent: term.intent.clone(),
                text: format!("{} means: {}", term.term, term.meaning),
                sql_hint: term.sql.clone(),
                term: Some(term.term.clone()),
                source: SourceRef::Document {
                    doc_id: doc.doc_id,
                    section: "terms".into(),
                },
            }))?;
            if let Some(sql) = &term.sql {
                applied(ks.apply(Edit::InsertExample {
                    intent: term.intent.clone(),
                    description: format!("{} ({})", term.term, term.meaning),
                    fragment: SqlFragment::new(FragmentKind::TermDefinition, sql.clone(), "main"),
                    term: Some(term.term.clone()),
                    source: SourceRef::Document {
                        doc_id: doc.doc_id,
                        section: "terms".into(),
                    },
                }))?;
            }
        }
        for g in &doc.guidelines {
            applied(ks.apply(Edit::InsertInstruction {
                intent: g.intent.clone(),
                text: g.text.clone(),
                sql_hint: g.sql_hint.clone(),
                term: None,
                source: SourceRef::Document {
                    doc_id: doc.doc_id,
                    section: g.section.clone(),
                },
            }))?;
        }
    }

    span.attr("instructions", ks.instructions().len());
    span.finish();

    // Schema elements with top-k frequent values (§2.1).
    let span = tracer.span("knowledge.schema");
    let k = if config.top_k_values == 0 {
        5
    } else {
        config.top_k_values
    };
    for table in db.tables() {
        let table_intents: Vec<String> = config
            .intent_tables
            .iter()
            .filter(|(_, t)| t.eq_ignore_ascii_case(&table.name))
            .map(|(i, _)| i.clone())
            .collect();
        applied(ks.apply(Edit::AddSchemaElement(SchemaElement {
            table: table.name.clone(),
            column: None,
            description: table.description.clone().unwrap_or_default(),
            top_values: Vec::new(),
            intents: table_intents.clone(),
        })))?;
        for col in &table.columns {
            let profile = table.top_values(&col.name, k)?;
            applied(ks.apply(Edit::AddSchemaElement(SchemaElement {
                table: table.name.clone(),
                column: Some(col.name.clone()),
                description: col.description.clone().unwrap_or_default(),
                top_values: profile.top_values.into_iter().map(|(v, _)| v).collect(),
                intents: table_intents.clone(),
            })))?;
        }
    }
    span.attr("schema_elements", ks.schema_elements().len());
    span.finish();

    root.finish();
    Ok(ks)
}

/// Derive a natural-language description for a decomposed fragment.
/// Deterministic and template-based; in production this is an LLM call,
/// but the retrieval substrate only needs the description to carry the
/// fragment's salient terms.
pub fn describe_fragment(fragment: &SqlFragment, question: &str) -> String {
    let clause = match fragment.kind {
        FragmentKind::CteDefinition => "Define intermediate result",
        FragmentKind::Projection => "Select columns",
        FragmentKind::From => "Read from",
        FragmentKind::Where => "Filter rows where",
        FragmentKind::GroupBy => "Group results by",
        FragmentKind::Having => "Keep groups where",
        FragmentKind::OrderBy => "Order results by",
        FragmentKind::Limit => "Limit result size",
        FragmentKind::Window => "Rank or number rows with",
        FragmentKind::TermDefinition => "Compute term as",
        FragmentKind::FullQuery => "Answer with the full query",
    };
    let body = strip_keyword(&fragment.sql);
    if question.is_empty() {
        format!("{clause} {body} (in {})", fragment.scope)
    } else {
        format!("{clause} {body} (for: {question})")
    }
}

fn strip_keyword(sql: &str) -> &str {
    let upper = sql.to_ascii_uppercase();
    for kw in [
        "SELECT DISTINCT",
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP BY",
        "HAVING",
        "ORDER BY",
    ] {
        if upper.starts_with(kw) {
            return sql[kw.len()..].trim_start();
        }
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_sql::catalog::{Column, Table};
    use genedit_sql::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new("d");
        let mut t = Table::new(
            "SPORTS_FINANCIALS",
            vec![
                Column::new("ORG_NAME", DataType::Text),
                Column::new("COUNTRY", DataType::Text),
                Column::new("REVENUE", DataType::Integer),
            ],
        );
        for (o, c, r) in [("a", "Canada", 1), ("b", "Canada", 2), ("c", "USA", 3)] {
            t.push_row(vec![o.into(), c.into(), Value::Integer(r)])
                .unwrap();
        }
        db.add_table(t).unwrap();
        db
    }

    fn config() -> PreprocessConfig {
        let mut c = PreprocessConfig::new(vec![Intent::new(
            "financial_performance",
            "Financial performance",
            "Revenue and profitability questions",
        )]);
        c.intent_tables = vec![("financial_performance".into(), "SPORTS_FINANCIALS".into())];
        c
    }

    fn logs() -> Vec<QueryLogEntry> {
        vec![QueryLogEntry {
            log_id: 1,
            question: "total revenue by organization in Canada".into(),
            sql: "SELECT ORG_NAME, SUM(REVENUE) AS R FROM SPORTS_FINANCIALS \
                  WHERE COUNTRY = 'Canada' GROUP BY ORG_NAME"
                .into(),
            intent: Some("financial_performance".into()),
        }]
    }

    fn docs() -> Vec<DomainDocument> {
        vec![DomainDocument {
            doc_id: 7,
            title: "Financial definitions".into(),
            terms: vec![TermDefinition {
                term: "RPV".into(),
                meaning: "revenue per viewer".into(),
                sql: Some("CAST(REVENUE AS FLOAT) / NULLIF(VIEWS, 0)".into()),
                intent: Some("financial_performance".into()),
            }],
            guidelines: vec![Guideline {
                text: "Apply a -1 multiplier when calculating the change in performance metrics"
                    .into(),
                sql_hint: Some("-1 * (m2 - m1)".into()),
                intent: Some("financial_performance".into()),
                section: "metrics".into(),
            }],
        }]
    }

    #[test]
    fn builds_all_components() {
        let ks = build_knowledge_set(&config(), &logs(), &docs(), &db()).unwrap();
        let stats = ks.stats();
        assert_eq!(stats.intents, 1);
        // 4 fragments from the log query + 1 term-definition example.
        assert_eq!(stats.examples, 5);
        // 1 term instruction + 1 guideline.
        assert_eq!(stats.instructions, 2);
        // 1 table + 3 columns.
        assert_eq!(stats.schema_elements, 4);
    }

    #[test]
    fn traced_build_records_phase_spans() {
        let tracer = genedit_telemetry::Tracer::new("pp");
        let ks = build_knowledge_set_traced(&config(), &logs(), &docs(), &db(), &tracer).unwrap();
        let trace = tracer.finish();
        let root = trace.find(genedit_telemetry::names::PREPROCESS).unwrap();
        let phases: Vec<&str> = root.children.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            phases,
            vec![
                "knowledge.examples",
                "knowledge.instructions",
                "knowledge.schema"
            ]
        );
        assert_eq!(
            trace.find("knowledge.examples").unwrap().attr("examples"),
            Some(&genedit_telemetry::AttrValue::UInt(4))
        );
        assert_eq!(
            trace
                .find("knowledge.schema")
                .unwrap()
                .attr("schema_elements"),
            Some(&genedit_telemetry::AttrValue::UInt(
                ks.schema_elements().len() as u64
            ))
        );
    }

    #[test]
    fn schema_elements_have_top_values_and_intents() {
        let ks = build_knowledge_set(&config(), &logs(), &docs(), &db()).unwrap();
        let country = ks
            .schema_elements()
            .iter()
            .find(|s| s.key() == "SPORTS_FINANCIALS.COUNTRY")
            .unwrap();
        assert_eq!(country.top_values[0], "Canada");
        assert_eq!(country.intents, vec!["financial_performance"]);
    }

    #[test]
    fn provenance_points_to_sources() {
        let ks = build_knowledge_set(&config(), &logs(), &docs(), &db()).unwrap();
        assert!(ks
            .examples()
            .iter()
            .any(|e| e.provenance.source == SourceRef::QueryLog { log_id: 1 }));
        assert!(ks
            .instructions()
            .iter()
            .all(|i| matches!(i.provenance.source, SourceRef::Document { doc_id: 7, .. })));
    }

    #[test]
    fn term_definitions_become_examples_and_instructions() {
        let ks = build_knowledge_set(&config(), &logs(), &docs(), &db()).unwrap();
        let rpv_example = ks
            .examples()
            .iter()
            .find(|e| e.term.as_deref() == Some("RPV"));
        assert!(rpv_example.is_some());
        assert_eq!(
            rpv_example.unwrap().fragment.kind,
            FragmentKind::TermDefinition
        );
        assert!(ks
            .instructions()
            .iter()
            .any(|i| i.term.as_deref() == Some("RPV") && i.text.contains("revenue per viewer")));
    }

    #[test]
    fn fragment_descriptions_carry_question_context() {
        let frag = SqlFragment::new(FragmentKind::Where, "WHERE COUNTRY = 'Canada'", "main");
        let d = describe_fragment(&frag, "revenue in Canada");
        assert!(d.contains("Filter rows where"));
        assert!(d.contains("COUNTRY = 'Canada'"));
        assert!(d.contains("revenue in Canada"));
    }

    #[test]
    fn invalid_log_sql_surfaces_error() {
        let bad_logs = vec![QueryLogEntry {
            log_id: 2,
            question: "broken".into(),
            sql: "SELEC oops".into(),
            intent: None,
        }];
        assert!(build_knowledge_set(&config(), &bad_logs, &[], &db()).is_err());
    }
}
