//! Disk-backed, sharded tenant knowledge with epoch snapshots.
//!
//! [`TenantKnowledgeStore`] scales the durable knowledge store from one
//! tenant to millions: each tenant's applied state lives in a paged file
//! (`pages.dat`, see [`crate::page`]) cached by a shared [`BufferPool`],
//! while the per-tenant WAL + snapshot managed by
//! [`DurableKnowledgeStore`] remain the **source of truth**. Pages are a
//! recoverable cache — any torn, stale, or missing page is rebuilt from
//! the WAL, never the other way around.
//!
//! ## Shadow-paged flush
//!
//! After a durable commit, the tenant's content is re-paged with shadow
//! paging: new page versions go to **fresh physical slots**, the data is
//! fsynced, and only then is the meta page (physical slot 0, holding the
//! [`PageDirectory`]) rewritten and fsynced. A crash anywhere in that
//! window leaves either the old directory (whose pages were never
//! overwritten) or the new one (whose pages are durable) — and the
//! directory records the WAL/snapshot byte lengths it was flushed
//! against, so a directory that lost the race with a crash is detected
//! by a cheap length comparison and rebuilt from the WAL.
//!
//! ## Epoch snapshots (MVCC-style reads)
//!
//! [`TenantKnowledgeStore::snapshot`] hands the reader the current
//! directory at the tenant's **knowledge epoch** (= journal
//! `Baseline.log_len`, the same version the serving caches key on).
//! Because flushes never mutate a slot a live directory references,
//! the snapshot reads a stable view while commits proceed concurrently —
//! `publish()` never blocks in-flight generations. Physical slots freed
//! by a commit are quarantined in a pending-free list until every
//! snapshot that could reference them has closed, and the pool frame for
//! a slot is invalidated when the slot is reused.
//!
//! ## Sharding
//!
//! The tenant map is split across [`TenantStoreConfig::shards`] locks
//! keyed by tenant-name hash, and each tenant's state sits behind its own
//! mutex, so hot tenants never contend on cold ones; the only shared
//! structure is the buffer pool, which locks per operation.
//!
//! ```
//! use std::sync::Arc;
//! use genedit_knowledge::fs::MemFs;
//! use genedit_knowledge::set::Edit;
//! use genedit_knowledge::staging::StagingArea;
//! use genedit_knowledge::tenants::{TenantKnowledgeStore, TenantStoreConfig};
//! use genedit_knowledge::types::{FragmentKind, SourceRef, SqlFragment};
//!
//! let fs = Arc::new(MemFs::new());
//! let store = Arc::new(TenantKnowledgeStore::new_with(
//!     fs,
//!     "/kb",
//!     TenantStoreConfig::default(),
//!     None,
//! ));
//!
//! // Commit an edit for one tenant (WAL first, then page flush).
//! let mut staging = StagingArea::new();
//! staging.stage(Edit::InsertExample {
//!     intent: None,
//!     description: "revenue per org".into(),
//!     fragment: SqlFragment::new(FragmentKind::Where, "WHERE ORG = 'x'", "main"),
//!     term: None,
//!     source: SourceRef::Manual,
//! });
//! let epoch = store.commit("acme", staging, "seed").unwrap();
//!
//! // Open an epoch snapshot and read a stable view through the pool.
//! let snap = store.snapshot("acme").unwrap();
//! assert_eq!(snap.epoch(), epoch);
//! let content = snap.content().unwrap();
//! assert_eq!(content.examples.len(), 1);
//! drop(snap); // closes the snapshot: freed pages become reclaimable,
//!             // and cold-tenant frames are now evictable from the pool
//! ```

use crate::fs::{RealFs, StoreFs};
use crate::page::{Page, PageError, PageKind};
use crate::pool::{BufferPool, PageKey, PoolConfig};
use crate::set::{Edit, KnowledgeContent, KnowledgeSet};
use crate::staging::StagingArea;
use crate::store::{DurableKnowledgeStore, StoreConfig, StoreError};
use crate::types::{Example, Instruction, Intent, RetrievalStage, SchemaElement};
use genedit_telemetry::{names, MetricsRegistry, Tracer};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Errors from the tenant paging layer.
#[derive(Debug)]
pub enum TenantStoreError {
    /// The underlying durable (WAL) store failed.
    Store(StoreError),
    /// A page failed to encode or decode.
    Page(PageError),
    /// A raw filesystem operation failed.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// Underlying I/O error.
        source: io::Error,
    },
    /// A serialized record was malformed (JSON decode failed).
    Corrupt(String),
    /// The page directory no longer fits in the meta page — the tenant
    /// has outgrown the configured page size.
    DirectoryTooLarge {
        /// Serialized directory size in bytes.
        bytes: usize,
        /// Meta-page record capacity in bytes.
        capacity: usize,
    },
    /// One record is larger than a page can ever hold.
    RecordTooLarge {
        /// Record size in bytes.
        bytes: usize,
        /// Page record capacity in bytes.
        capacity: usize,
    },
    /// The tenant has no durable state (nothing on disk, nothing staged).
    UnknownTenant(String),
}

impl fmt::Display for TenantStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TenantStoreError::Store(e) => write!(f, "tenant store: {e}"),
            TenantStoreError::Page(e) => write!(f, "tenant page: {e}"),
            TenantStoreError::Io { op, path, source } => {
                write!(f, "tenant {op} failed on {}: {source}", path.display())
            }
            TenantStoreError::Corrupt(what) => write!(f, "tenant record corrupt: {what}"),
            TenantStoreError::DirectoryTooLarge { bytes, capacity } => {
                write!(
                    f,
                    "page directory is {bytes} bytes, meta page holds {capacity}"
                )
            }
            TenantStoreError::RecordTooLarge { bytes, capacity } => {
                write!(
                    f,
                    "record of {bytes} bytes exceeds page capacity {capacity}"
                )
            }
            TenantStoreError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
        }
    }
}

impl std::error::Error for TenantStoreError {}

impl From<StoreError> for TenantStoreError {
    fn from(e: StoreError) -> TenantStoreError {
        TenantStoreError::Store(e)
    }
}

impl From<PageError> for TenantStoreError {
    fn from(e: PageError) -> TenantStoreError {
        TenantStoreError::Page(e)
    }
}

/// Tunables for the tenant paging layer.
#[derive(Debug, Clone)]
pub struct TenantStoreConfig {
    /// Page size for every tenant file (and the pool's accounting unit).
    pub page_size: usize,
    /// Shared buffer-pool budget across all tenants.
    pub pool_budget_bytes: usize,
    /// Number of tenant-map shards (locks). Power of two recommended.
    pub shards: usize,
    /// Configuration for each tenant's underlying durable (WAL) store.
    pub store: StoreConfig,
}

impl Default for TenantStoreConfig {
    fn default() -> TenantStoreConfig {
        let pool = PoolConfig::default();
        TenantStoreConfig {
            page_size: pool.page_size,
            pool_budget_bytes: pool.budget_bytes,
            shards: 16,
            store: StoreConfig::default(),
        }
    }
}

/// The on-disk catalog of one tenant's pages, stored as the single
/// record of the meta page (physical slot 0). `wal_len`/`snapshot_len`
/// are the byte lengths of the tenant's WAL and snapshot at flush time:
/// if either differs at open, the pages are stale (a crash interrupted a
/// flush) and the tenant is rebuilt from the WAL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageDirectory {
    /// Knowledge epoch the directory was flushed at.
    pub epoch: u64,
    /// WAL byte length the flush was consistent with.
    pub wal_len: u64,
    /// Snapshot byte length the flush was consistent with (0 = none).
    pub snapshot_len: u64,
    /// Physical slots holding entry records, in read order.
    pub entry_pages: Vec<u32>,
    /// Physical slots holding the chunked vector stream, in read order.
    pub vector_pages: Vec<u32>,
    /// First never-allocated physical slot.
    pub next_physical: u32,
    /// Physical slots free for reuse (no live directory references them).
    pub free_slots: Vec<u32>,
}

/// Embedding vectors stored alongside a tenant's entries, grouped the way
/// the retrieval indexes consume them. Written back by the index builder
/// via [`TenantKnowledgeStore::put_vectors`] and read through pinned
/// pages on the next cold page-in, so retrieval never recomputes what is
/// already durable.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredVectors {
    /// Embedding dimensionality (vocabulary size at fit time).
    pub dim: usize,
    /// One vector per live example, in [`KnowledgeContent::examples`] order.
    pub examples: Vec<Vec<f32>>,
    /// One vector per live instruction, in content order.
    pub instructions: Vec<Vec<f32>>,
    /// One vector per schema element, in content order.
    pub schema: Vec<Vec<f32>>,
}

/// One serialized knowledge entry, tagged so pages self-describe.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum EntryRecord {
    /// Id allocation and logical clock — always the first record.
    Meta {
        next_example_id: u64,
        next_instruction_id: u64,
        tick: u64,
    },
    Intent(Intent),
    Example(Example),
    Instruction(Instruction),
    Schema(SchemaElement),
    Hint(RetrievalStage, String),
}

/// Per-tenant in-memory state (behind its own mutex).
struct TenantState {
    slot: u64,
    dir: Arc<PageDirectory>,
    /// Open-snapshot refcounts by epoch.
    open_snapshots: BTreeMap<u64, usize>,
    /// Slots freed while the directory at `freed_at` could still be read
    /// by an open snapshot; reclaimed once no snapshot at or before
    /// `freed_at` remains.
    pending_free: Vec<(u64, Vec<u32>)>,
    free_slots: Vec<u32>,
    next_physical: u32,
}

impl TenantState {
    /// Move pending-free slots whose guarding snapshots have all closed
    /// onto the free list.
    fn reclaim(&mut self) {
        let min_open = self.open_snapshots.keys().next().copied();
        let mut kept = Vec::new();
        for (freed_at, slots) in self.pending_free.drain(..) {
            let reusable = match min_open {
                None => true,
                Some(min) => min > freed_at,
            };
            if reusable {
                self.free_slots.extend(slots);
            } else {
                kept.push((freed_at, slots));
            }
        }
        self.pending_free = kept;
    }

    fn alloc(&mut self) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            slot
        } else {
            let slot = self.next_physical;
            self.next_physical += 1;
            slot
        }
    }
}

/// Disk-backed sharded tenant store. See the module docs for the page,
/// snapshot, and recovery protocols.
pub struct TenantKnowledgeStore {
    fs: Arc<dyn StoreFs>,
    root: PathBuf,
    config: TenantStoreConfig,
    pool: Arc<BufferPool>,
    shards: Vec<Mutex<HashMap<String, Arc<Mutex<TenantState>>>>>,
    next_slot: AtomicU64,
    metrics: Option<Arc<MetricsRegistry>>,
    /// `true` when backed by the real filesystem: tenant directories are
    /// created on demand.
    create_dirs: bool,
}

impl fmt::Debug for TenantKnowledgeStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantKnowledgeStore")
            .field("root", &self.root)
            .field("shards", &self.shards.len())
            .field("pool", &self.pool)
            .finish()
    }
}

impl TenantKnowledgeStore {
    /// Open a store rooted at `root` on the real filesystem. Per-tenant
    /// directories are created on demand.
    pub fn open(
        root: impl Into<PathBuf>,
        config: TenantStoreConfig,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> TenantKnowledgeStore {
        let mut store =
            TenantKnowledgeStore::new_with(Arc::new(RealFs::new()), root, config, metrics);
        store.create_dirs = true;
        store
    }

    /// Open a store over an explicit filesystem — the seam the fault
    /// injector and the proptests plug into.
    pub fn new_with(
        fs: Arc<dyn StoreFs>,
        root: impl Into<PathBuf>,
        config: TenantStoreConfig,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> TenantKnowledgeStore {
        let shards = config.shards.max(1);
        let pool = Arc::new(BufferPool::with_metrics(
            PoolConfig {
                budget_bytes: config.pool_budget_bytes,
                page_size: config.page_size,
            },
            metrics.clone(),
        ));
        TenantKnowledgeStore {
            fs,
            root: root.into(),
            config,
            pool,
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            next_slot: AtomicU64::new(0),
            metrics,
            create_dirs: false,
        }
    }

    /// The shared buffer pool (for stats and budget checks).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The configured tunables.
    pub fn config(&self) -> &TenantStoreConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Paths and small helpers
    // ------------------------------------------------------------------

    fn tenant_dir(&self, tenant: &str) -> PathBuf {
        self.root.join(tenant)
    }

    fn snapshot_path(&self, tenant: &str) -> PathBuf {
        self.tenant_dir(tenant).join("knowledge.json")
    }

    fn wal_path(&self, tenant: &str) -> PathBuf {
        self.tenant_dir(tenant).join("knowledge.wal")
    }

    fn pages_path(&self, tenant: &str) -> PathBuf {
        self.tenant_dir(tenant).join("pages.dat")
    }

    fn shard_for(&self, tenant: &str) -> &Mutex<HashMap<String, Arc<Mutex<TenantState>>>> {
        let mut hash: u64 = 0xcbf29ce484222325;
        for &b in tenant.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        &self.shards[(hash as usize) % self.shards.len()]
    }

    fn lock_shard<'a>(
        shard: &'a Mutex<HashMap<String, Arc<Mutex<TenantState>>>>,
    ) -> MutexGuard<'a, HashMap<String, Arc<Mutex<TenantState>>>> {
        shard
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_tenant(state: &Arc<Mutex<TenantState>>) -> MutexGuard<'_, TenantState> {
        state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn io_err<'a>(
        op: &'static str,
        path: &'a std::path::Path,
    ) -> impl FnOnce(io::Error) -> TenantStoreError + 'a {
        move |source| TenantStoreError::Io {
            op,
            path: path.to_path_buf(),
            source,
        }
    }

    /// Whether the tenant has any durable files on disk.
    pub fn tenant_exists(&self, tenant: &str) -> bool {
        self.fs.exists(&self.wal_path(tenant))
            || self.fs.exists(&self.snapshot_path(tenant))
            || self.fs.exists(&self.pages_path(tenant))
    }

    fn open_writer(&self, tenant: &str) -> Result<DurableKnowledgeStore, TenantStoreError> {
        if self.create_dirs {
            let dir = self.tenant_dir(tenant);
            std::fs::create_dir_all(&dir).map_err(Self::io_err("create_dir_all", &dir))?;
        }
        Ok(DurableKnowledgeStore::open_with(
            Arc::clone(&self.fs),
            self.snapshot_path(tenant),
            self.wal_path(tenant),
            self.config.store.clone(),
            self.metrics.clone(),
        )?)
    }

    // ------------------------------------------------------------------
    // Cold load / page-in
    // ------------------------------------------------------------------

    /// Get or build the tenant's in-memory state. On a cold load the
    /// meta page is validated against the WAL/snapshot byte lengths;
    /// any mismatch or corruption rebuilds the pages from the WAL.
    fn tenant_entry(
        &self,
        tenant: &str,
        create: bool,
    ) -> Result<Arc<Mutex<TenantState>>, TenantStoreError> {
        {
            let shard = Self::lock_shard(self.shard_for(tenant));
            if let Some(state) = shard.get(tenant) {
                return Ok(Arc::clone(state));
            }
        }
        if !create && !self.tenant_exists(tenant) {
            return Err(TenantStoreError::UnknownTenant(tenant.to_string()));
        }
        // Build outside the shard lock: page-in may touch disk and must
        // not block unrelated tenants in the same shard. A racing load of
        // the same tenant is resolved by first-insert-wins below.
        let slot = self.next_slot.fetch_add(1, Ordering::SeqCst);
        let state = self.load_tenant(tenant, slot)?;
        let mut shard = Self::lock_shard(self.shard_for(tenant));
        if let Some(existing) = shard.get(tenant) {
            return Ok(Arc::clone(existing));
        }
        let state = Arc::new(Mutex::new(state));
        shard.insert(tenant.to_string(), Arc::clone(&state));
        Ok(state)
    }

    /// Cold-load one tenant: fast path validates the meta page against
    /// the WAL; slow path runs full recovery and re-pages.
    fn load_tenant(&self, tenant: &str, slot: u64) -> Result<TenantState, TenantStoreError> {
        let pages_path = self.pages_path(tenant);
        let wal_len = self.file_len(&self.wal_path(tenant))?;
        let snapshot_len = self.file_len(&self.snapshot_path(tenant))?;

        if self.fs.exists(&pages_path) {
            match self.read_meta_page(tenant, slot) {
                Ok(dir) if dir.wal_len == wal_len && dir.snapshot_len == snapshot_len => {
                    return Ok(TenantState {
                        slot,
                        next_physical: dir.next_physical,
                        free_slots: dir.free_slots.clone(),
                        dir: Arc::new(dir),
                        open_snapshots: BTreeMap::new(),
                        pending_free: Vec::new(),
                    });
                }
                Ok(_) => {
                    // Pages are consistent but stale: the WAL moved after
                    // the last completed flush (crash mid-commit).
                }
                Err(TenantStoreError::Page(_)) | Err(TenantStoreError::Corrupt(_)) => {
                    if let Some(m) = &self.metrics {
                        m.incr(names::PAGE_CHECKSUM_FAILURES, 1);
                    }
                }
                Err(other) => return Err(other),
            }
        }

        // Rebuild from the WAL (source of truth).
        if let Some(m) = &self.metrics {
            m.incr(names::PAGE_REBUILDS, 1);
        }
        let writer = self.open_writer(tenant)?;
        let content = writer.set().content();
        let epoch = writer.epoch();
        let wal_len = self.file_len(&self.wal_path(tenant))?;
        let snapshot_len = self.file_len(&self.snapshot_path(tenant))?;
        let mut state = TenantState {
            slot,
            dir: Arc::new(PageDirectory {
                epoch,
                wal_len,
                snapshot_len,
                entry_pages: Vec::new(),
                vector_pages: Vec::new(),
                next_physical: 1,
                free_slots: Vec::new(),
            }),
            open_snapshots: BTreeMap::new(),
            pending_free: Vec::new(),
            free_slots: Vec::new(),
            next_physical: 1,
        };
        self.flush_pages(
            tenant,
            &mut state,
            &content,
            epoch,
            wal_len,
            snapshot_len,
            None,
        )?;
        Ok(state)
    }

    fn file_len(&self, path: &std::path::Path) -> Result<u64, TenantStoreError> {
        if !self.fs.exists(path) {
            return Ok(0);
        }
        self.fs.len(path).map_err(Self::io_err("len", path))
    }

    /// Read and decode the meta page (direct, not pooled: it is read
    /// once per cold load and immediately superseded on every flush).
    fn read_meta_page(&self, tenant: &str, _slot: u64) -> Result<PageDirectory, TenantStoreError> {
        let path = self.pages_path(tenant);
        let bytes = self
            .fs
            .read_at(&path, 0, self.config.page_size)
            .map_err(Self::io_err("read meta page", &path))?;
        if let Some(m) = &self.metrics {
            m.incr(names::PAGE_READS, 1);
        }
        let page = Page::decode(&bytes, self.config.page_size)?;
        let record = page
            .record(0)
            .ok_or_else(|| TenantStoreError::Corrupt("meta page has no record".into()))?;
        let text = std::str::from_utf8(record)
            .map_err(|e| TenantStoreError::Corrupt(format!("page directory utf8: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| TenantStoreError::Corrupt(format!("page directory: {e}")))
    }

    // ------------------------------------------------------------------
    // Page flush (shadow paging)
    // ------------------------------------------------------------------

    /// Re-page the tenant's content: write entry (and optionally vector)
    /// pages to fresh physical slots, fsync, then overwrite the meta page
    /// and fsync. Frees the previously referenced slots into the
    /// pending-free list guarded by the pre-flush epoch.
    #[allow(clippy::too_many_arguments)]
    fn flush_pages(
        &self,
        tenant: &str,
        state: &mut TenantState,
        content: &KnowledgeContent,
        epoch: u64,
        wal_len: u64,
        snapshot_len: u64,
        vectors: Option<&StoredVectors>,
    ) -> Result<(), TenantStoreError> {
        let tracer = Tracer::new("store");
        let span = tracer.span(names::STORE_PAGE_FLUSH);
        let path = self.pages_path(tenant);
        let page_size = self.config.page_size;

        // Serialize entries into page-sized groups.
        let records = encode_entry_records(content)?;
        let capacity = Page::capacity(page_size);
        for r in &records {
            if r.len() > capacity {
                return Err(TenantStoreError::RecordTooLarge {
                    bytes: r.len(),
                    capacity,
                });
            }
        }

        state.reclaim();
        let prev_epoch = state.dir.epoch;
        let mut freed: Vec<u32> = state.dir.entry_pages.clone();
        freed.extend(&state.dir.vector_pages);

        // Pack records into pages greedily, allocating fresh slots.
        let mut entry_pages = Vec::new();
        let mut pages: Vec<Page> = Vec::new();
        {
            let mut current: Option<Page> = None;
            for record in &records {
                loop {
                    let page = current.get_or_insert_with(|| {
                        let slot = state.alloc();
                        entry_pages.push(slot);
                        Page::new(PageKind::Entry, slot, epoch, page_size)
                    });
                    match page.push(record) {
                        Ok(_) => break,
                        Err(PageError::PageFull) => {
                            if let Some(full) = current.take() {
                                pages.push(full);
                            }
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
            }
            if let Some(last) = current.take() {
                pages.push(last);
            }
        }

        // Vector stream, if the caller preserved or supplied vectors.
        let mut vector_pages = Vec::new();
        if let Some(v) = vectors {
            for chunk in encode_vector_stream(v).chunks(capacity) {
                let slot = state.alloc();
                vector_pages.push(slot);
                let mut page = Page::new(PageKind::Vector, slot, epoch, page_size);
                page.push(chunk)?;
                pages.push(page);
            }
        }

        // Shadow-page protocol: data pages first...
        for page in &pages {
            self.write_page(&path, state.slot, page)?;
        }
        self.fs
            .fsync(&path)
            .map_err(Self::io_err("fsync pages", &path))?;

        // ...then the directory, then fsync again.
        let dir = PageDirectory {
            epoch,
            wal_len,
            snapshot_len,
            entry_pages,
            vector_pages,
            next_physical: state.next_physical,
            free_slots: state.free_slots.clone(),
        };
        self.write_meta_page(&path, state.slot, &dir, epoch)?;
        self.fs
            .fsync(&path)
            .map_err(Self::io_err("fsync meta page", &path))?;

        state.dir = Arc::new(dir);
        if !freed.is_empty() {
            state.pending_free.push((prev_epoch, freed));
        }
        state.reclaim();

        span.attr("pages", pages.len() + 1).attr("epoch", epoch);
        span.finish();
        if let Some(m) = &self.metrics {
            m.record_trace(&tracer.finish());
        }
        Ok(())
    }

    fn write_page(
        &self,
        path: &std::path::Path,
        tenant_slot: u64,
        page: &Page,
    ) -> Result<(), TenantStoreError> {
        let offset = page.page_no() as u64 * self.config.page_size as u64;
        // The slot may be a reused one with a stale image in the pool.
        self.pool.invalidate(PageKey {
            tenant: tenant_slot,
            page_no: page.page_no(),
        });
        self.fs
            .write_at(path, offset, &page.seal())
            .map_err(Self::io_err("write page", path))?;
        if let Some(m) = &self.metrics {
            m.incr(names::PAGE_WRITES, 1);
        }
        Ok(())
    }

    fn write_meta_page(
        &self,
        path: &std::path::Path,
        tenant_slot: u64,
        dir: &PageDirectory,
        epoch: u64,
    ) -> Result<(), TenantStoreError> {
        let json = serde_json::to_string(dir)
            .map_err(|e| TenantStoreError::Corrupt(format!("encode directory: {e}")))?
            .into_bytes();
        let capacity = Page::capacity(self.config.page_size);
        if json.len() > capacity {
            return Err(TenantStoreError::DirectoryTooLarge {
                bytes: json.len(),
                capacity,
            });
        }
        let mut meta = Page::new(PageKind::Meta, 0, epoch, self.config.page_size);
        meta.push(&json)?;
        self.write_page(path, tenant_slot, &meta)
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Merge a staged batch durably for `tenant` and flush its pages.
    /// Returns the new knowledge epoch. The WAL commit is the durability
    /// point: a crash during the page flush is recovered by rebuilding
    /// pages from the WAL on the next load.
    pub fn commit(
        &self,
        tenant: &str,
        staging: StagingArea,
        label: &str,
    ) -> Result<u64, TenantStoreError> {
        let entry = self.tenant_entry(tenant, true)?;
        let mut state = Self::lock_tenant(&entry);
        let mut writer = self.open_writer(tenant)?;
        writer.commit(staging, label)?;
        self.flush_after_write(tenant, &mut state, &writer)
    }

    /// Apply one edit durably for `tenant` and flush its pages. Returns
    /// the new knowledge epoch.
    pub fn apply(&self, tenant: &str, edit: Edit) -> Result<u64, TenantStoreError> {
        let entry = self.tenant_entry(tenant, true)?;
        let mut state = Self::lock_tenant(&entry);
        let mut writer = self.open_writer(tenant)?;
        writer.apply(edit)?;
        self.flush_after_write(tenant, &mut state, &writer)
    }

    fn flush_after_write(
        &self,
        tenant: &str,
        state: &mut TenantState,
        writer: &DurableKnowledgeStore,
    ) -> Result<u64, TenantStoreError> {
        let epoch = writer.epoch();
        let content = writer.set().content();
        let wal_len = self.file_len(&self.wal_path(tenant))?;
        let snapshot_len = self.file_len(&self.snapshot_path(tenant))?;
        // Vectors are dropped on every mutation: they describe the old
        // epoch's entries. The index builder writes fresh ones back.
        self.flush_pages(tenant, state, &content, epoch, wal_len, snapshot_len, None)?;
        Ok(epoch)
    }

    /// Store embedding vectors for the tenant's current entries. No-op
    /// returning `false` if the tenant has moved past `epoch` (the
    /// vectors describe stale entries). The entry pages are untouched —
    /// only the vector stream and the directory are rewritten.
    pub fn put_vectors(
        &self,
        tenant: &str,
        epoch: u64,
        vectors: &StoredVectors,
    ) -> Result<bool, TenantStoreError> {
        let entry = self.tenant_entry(tenant, false)?;
        let mut state = Self::lock_tenant(&entry);
        if state.dir.epoch != epoch {
            return Ok(false);
        }
        state.reclaim();
        let path = self.pages_path(tenant);
        let capacity = Page::capacity(self.config.page_size);
        let freed = state.dir.vector_pages.clone();

        let mut vector_pages = Vec::new();
        let mut pages = Vec::new();
        for chunk in encode_vector_stream(vectors).chunks(capacity) {
            let slot = state.alloc();
            vector_pages.push(slot);
            let mut page = Page::new(PageKind::Vector, slot, epoch, self.config.page_size);
            page.push(chunk)?;
            pages.push(page);
        }
        for page in &pages {
            self.write_page(&path, state.slot, page)?;
        }
        self.fs
            .fsync(&path)
            .map_err(Self::io_err("fsync pages", &path))?;

        let dir = PageDirectory {
            vector_pages,
            next_physical: state.next_physical,
            free_slots: state.free_slots.clone(),
            ..(*state.dir).clone()
        };
        self.write_meta_page(&path, state.slot, &dir, epoch)?;
        self.fs
            .fsync(&path)
            .map_err(Self::io_err("fsync meta page", &path))?;
        state.dir = Arc::new(dir);
        if !freed.is_empty() {
            state.pending_free.push((epoch, freed));
        }
        state.reclaim();
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// The tenant's current knowledge epoch (paging in if cold).
    pub fn epoch(&self, tenant: &str) -> Result<u64, TenantStoreError> {
        let entry = self.tenant_entry(tenant, false)?;
        let state = Self::lock_tenant(&entry);
        Ok(state.dir.epoch)
    }

    /// Open an epoch snapshot: a stable read view of the tenant at its
    /// current epoch. Commits proceeding concurrently never mutate the
    /// pages this snapshot reads. Drop the snapshot to release them.
    pub fn snapshot(self: &Arc<Self>, tenant: &str) -> Result<TenantSnapshot, TenantStoreError> {
        let entry = self.tenant_entry(tenant, false)?;
        let mut state = Self::lock_tenant(&entry);
        let dir = Arc::clone(&state.dir);
        let epoch = dir.epoch;
        *state.open_snapshots.entry(epoch).or_insert(0) += 1;
        let slot = state.slot;
        drop(state);
        Ok(TenantSnapshot {
            store: Arc::clone(self),
            tenant: tenant.to_string(),
            state: entry,
            slot,
            epoch,
            dir,
        })
    }

    /// Pin one physical page of a tenant through the pool, loading and
    /// checksum-verifying it from disk on a miss.
    fn pin_page(
        &self,
        pool: &Arc<BufferPool>,
        tenant: &str,
        tenant_slot: u64,
        page_no: u32,
    ) -> Result<crate::pool::PinnedPage, TenantStoreError> {
        let path = self.pages_path(tenant);
        let page_size = self.config.page_size;
        let key = PageKey {
            tenant: tenant_slot,
            page_no,
        };
        let fs = &self.fs;
        let metrics = &self.metrics;
        pool.pin_with(key, || {
            let bytes = fs.read_at(&path, page_no as u64 * page_size as u64, page_size)?;
            if let Some(m) = metrics {
                m.incr(names::PAGE_READS, 1);
            }
            match Page::decode(&bytes, page_size) {
                Ok(page) => Ok(Arc::new(page)),
                Err(e) => {
                    if let Some(m) = metrics {
                        m.incr(names::PAGE_CHECKSUM_FAILURES, 1);
                    }
                    Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
                }
            }
        })
        .map_err(|source| TenantStoreError::Io {
            op: "pin page",
            path,
            source,
        })
    }

    /// Drop a tenant's in-memory state (testing aid: forces the next
    /// access to take the cold page-in path). On-disk files are untouched.
    pub fn forget(&self, tenant: &str) {
        let mut shard = Self::lock_shard(self.shard_for(tenant));
        shard.remove(tenant);
    }
}

// ---------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------

/// A stable read view of one tenant at one knowledge epoch. Holds the
/// page directory current at open time; pages it references are never
/// overwritten while it lives (copy-on-write flushes write elsewhere).
/// Dropping the snapshot releases the freed-slot quarantine.
pub struct TenantSnapshot {
    store: Arc<TenantKnowledgeStore>,
    tenant: String,
    state: Arc<Mutex<TenantState>>,
    slot: u64,
    epoch: u64,
    dir: Arc<PageDirectory>,
}

impl fmt::Debug for TenantSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantSnapshot")
            .field("tenant", &self.tenant)
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl TenantSnapshot {
    /// The tenant this snapshot reads.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The knowledge epoch this snapshot is stable at — the same value
    /// the serving caches key on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The page directory backing this snapshot.
    pub fn directory(&self) -> &PageDirectory {
        &self.dir
    }

    /// Materialize the knowledge content by reading every entry page
    /// through the buffer pool (pin → decode → unpin).
    pub fn content(&self) -> Result<KnowledgeContent, TenantStoreError> {
        let mut content = KnowledgeContent::default();
        let mut saw_meta = false;
        for &page_no in &self.dir.entry_pages {
            let pinned =
                self.store
                    .pin_page(self.store.pool(), &self.tenant, self.slot, page_no)?;
            for record in pinned.page().records() {
                let text = std::str::from_utf8(record)
                    .map_err(|e| TenantStoreError::Corrupt(format!("entry record utf8: {e}")))?;
                let record: EntryRecord = serde_json::from_str(text)
                    .map_err(|e| TenantStoreError::Corrupt(format!("entry record: {e}")))?;
                match record {
                    EntryRecord::Meta {
                        next_example_id,
                        next_instruction_id,
                        tick,
                    } => {
                        content.next_example_id = next_example_id;
                        content.next_instruction_id = next_instruction_id;
                        content.tick = tick;
                        saw_meta = true;
                    }
                    EntryRecord::Intent(i) => content.intents.push(i),
                    EntryRecord::Example(e) => content.examples.push(e),
                    EntryRecord::Instruction(i) => content.instructions.push(i),
                    EntryRecord::Schema(s) => content.schema_elements.push(s),
                    EntryRecord::Hint(stage, text) => content.retrieval_hints.push((stage, text)),
                }
            }
        }
        if !saw_meta && !self.dir.entry_pages.is_empty() {
            return Err(TenantStoreError::Corrupt(
                "entry pages lack a Meta record".into(),
            ));
        }
        Ok(content)
    }

    /// Materialize the knowledge set (empty audit log; see
    /// [`KnowledgeSet::from_content`]).
    pub fn knowledge_set(&self) -> Result<KnowledgeSet, TenantStoreError> {
        Ok(KnowledgeSet::from_content(self.content()?))
    }

    /// Read the stored embedding vectors through pinned pages, if an
    /// index builder wrote them back for this epoch. `None` when the
    /// vectors were invalidated by a later mutation (or never stored).
    pub fn vectors(&self) -> Result<Option<StoredVectors>, TenantStoreError> {
        if self.dir.vector_pages.is_empty() {
            return Ok(None);
        }
        let mut stream = Vec::new();
        for &page_no in &self.dir.vector_pages {
            let pinned =
                self.store
                    .pin_page(self.store.pool(), &self.tenant, self.slot, page_no)?;
            let page = pinned.page();
            let record = page
                .record(0)
                .ok_or_else(|| TenantStoreError::Corrupt("vector page has no record".into()))?;
            stream.extend_from_slice(record);
        }
        decode_vector_stream(&stream).map(Some)
    }
}

impl Drop for TenantSnapshot {
    fn drop(&mut self) {
        let mut state = TenantKnowledgeStore::lock_tenant(&self.state);
        if let Some(count) = state.open_snapshots.get_mut(&self.epoch) {
            *count -= 1;
            if *count == 0 {
                state.open_snapshots.remove(&self.epoch);
            }
        }
        state.reclaim();
    }
}

// ---------------------------------------------------------------------
// Record / stream codecs
// ---------------------------------------------------------------------

fn encode_entry_records(content: &KnowledgeContent) -> Result<Vec<Vec<u8>>, TenantStoreError> {
    let mut records = Vec::new();
    let mut push = |r: &EntryRecord| -> Result<(), TenantStoreError> {
        records.push(
            serde_json::to_string(r)
                .map_err(|e| TenantStoreError::Corrupt(format!("encode record: {e}")))?
                .into_bytes(),
        );
        Ok(())
    };
    push(&EntryRecord::Meta {
        next_example_id: content.next_example_id,
        next_instruction_id: content.next_instruction_id,
        tick: content.tick,
    })?;
    for i in &content.intents {
        push(&EntryRecord::Intent(i.clone()))?;
    }
    for e in &content.examples {
        push(&EntryRecord::Example(e.clone()))?;
    }
    for i in &content.instructions {
        push(&EntryRecord::Instruction(i.clone()))?;
    }
    for s in &content.schema_elements {
        push(&EntryRecord::Schema(s.clone()))?;
    }
    for (stage, text) in &content.retrieval_hints {
        push(&EntryRecord::Hint(*stage, text.clone()))?;
    }
    Ok(records)
}

/// `[dim u32][n_examples u32][n_instructions u32][n_schema u32]` followed
/// by every vector's `f32` components little-endian, group by group.
fn encode_vector_stream(v: &StoredVectors) -> Vec<u8> {
    let total = v.examples.len() + v.instructions.len() + v.schema.len();
    let mut out = Vec::with_capacity(16 + total * v.dim * 4);
    out.extend_from_slice(&(v.dim as u32).to_le_bytes());
    out.extend_from_slice(&(v.examples.len() as u32).to_le_bytes());
    out.extend_from_slice(&(v.instructions.len() as u32).to_le_bytes());
    out.extend_from_slice(&(v.schema.len() as u32).to_le_bytes());
    for group in [&v.examples, &v.instructions, &v.schema] {
        for vec in group {
            for &x in vec {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    out
}

fn decode_vector_stream(bytes: &[u8]) -> Result<StoredVectors, TenantStoreError> {
    let corrupt = |what: &str| TenantStoreError::Corrupt(format!("vector stream: {what}"));
    if bytes.len() < 16 {
        return Err(corrupt("short header"));
    }
    let read_u32 =
        |at: usize| u32::from_le_bytes([bytes[at], bytes[at + 1], bytes[at + 2], bytes[at + 3]]);
    let dim = read_u32(0) as usize;
    let counts = [
        read_u32(4) as usize,
        read_u32(8) as usize,
        read_u32(12) as usize,
    ];
    let total = counts.iter().sum::<usize>();
    let expected = 16 + total * dim * 4;
    if bytes.len() != expected {
        return Err(corrupt("length mismatch"));
    }
    let mut at = 16;
    let mut take_group = |count: usize| {
        let mut group = Vec::with_capacity(count);
        for _ in 0..count {
            let mut vec = Vec::with_capacity(dim);
            for _ in 0..dim {
                vec.push(f32::from_le_bytes([
                    bytes[at],
                    bytes[at + 1],
                    bytes[at + 2],
                    bytes[at + 3],
                ]));
                at += 4;
            }
            group.push(vec);
        }
        group
    };
    Ok(StoredVectors {
        dim,
        examples: take_group(counts[0]),
        instructions: take_group(counts[1]),
        schema: take_group(counts[2]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use crate::types::{FragmentKind, SourceRef, SqlFragment};

    fn edit(desc: &str) -> Edit {
        Edit::InsertExample {
            intent: None,
            description: desc.into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
            term: None,
            source: SourceRef::Manual,
        }
    }

    fn staged(descs: &[&str]) -> StagingArea {
        let mut area = StagingArea::new();
        for d in descs {
            area.stage(edit(d));
        }
        area
    }

    fn mem_store(mem: &Arc<MemFs>) -> Arc<TenantKnowledgeStore> {
        let fs: Arc<dyn StoreFs> = Arc::clone(mem) as Arc<dyn StoreFs>;
        Arc::new(TenantKnowledgeStore::new_with(
            fs,
            "/kb",
            TenantStoreConfig {
                page_size: 1024,
                pool_budget_bytes: 16 * 1024,
                shards: 4,
                store: StoreConfig::default(),
            },
            None,
        ))
    }

    #[test]
    fn commit_then_snapshot_round_trips_content() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let epoch = store
            .commit("t1", staged(&["a", "b", "c"]), "seed")
            .unwrap();
        let snap = store.snapshot("t1").unwrap();
        assert_eq!(snap.epoch(), epoch);
        let content = snap.content().unwrap();
        assert_eq!(content.examples.len(), 3);
        assert_eq!(content.examples[0].description, "a");
        // Matches the WAL-recovered set exactly.
        let ks = snap.knowledge_set().unwrap();
        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let truth = DurableKnowledgeStore::open_with(
            fs,
            "/kb/t1/knowledge.json",
            "/kb/t1/knowledge.wal",
            StoreConfig::default(),
            None,
        )
        .unwrap();
        assert!(truth.set().content_eq(&ks));
    }

    #[test]
    fn cold_load_uses_pages_without_replaying_wal() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store.commit("t1", staged(&["a", "b"]), "seed").unwrap();
        store.forget("t1");
        // Fast path: meta page validates against the WAL length.
        let snap = store.snapshot("t1").unwrap();
        assert_eq!(snap.content().unwrap().examples.len(), 2);
    }

    #[test]
    fn unknown_tenant_is_an_error() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        assert!(matches!(
            store.snapshot("ghost"),
            Err(TenantStoreError::UnknownTenant(_))
        ));
    }

    #[test]
    fn snapshot_reads_stable_view_across_concurrent_commit() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store.commit("t1", staged(&["a"]), "seed").unwrap();
        let snap = store.snapshot("t1").unwrap();
        let epoch_before = snap.epoch();
        // Commit while the snapshot is open.
        store.commit("t1", staged(&["b", "c"]), "more").unwrap();
        // The open snapshot still reads its epoch's bytes.
        let content = snap.content().unwrap();
        assert_eq!(content.examples.len(), 1);
        assert_eq!(snap.epoch(), epoch_before);
        // A fresh snapshot sees the new epoch.
        let fresh = store.snapshot("t1").unwrap();
        assert!(fresh.epoch() > epoch_before);
        assert_eq!(fresh.content().unwrap().examples.len(), 3);
    }

    #[test]
    fn freed_slots_reclaimed_only_after_snapshots_close() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store.commit("t1", staged(&["a"]), "seed").unwrap();
        let snap = store.snapshot("t1").unwrap();
        store.commit("t1", staged(&["b"]), "more").unwrap();
        {
            let entry = store.tenant_entry("t1", false).unwrap();
            let state = TenantKnowledgeStore::lock_tenant(&entry);
            assert!(
                !state.pending_free.is_empty(),
                "old pages must be quarantined while the snapshot is open"
            );
        }
        drop(snap);
        {
            let entry = store.tenant_entry("t1", false).unwrap();
            let state = TenantKnowledgeStore::lock_tenant(&entry);
            assert!(state.pending_free.is_empty(), "drop must release the slots");
            assert!(!state.free_slots.is_empty());
        }
    }

    #[test]
    fn crash_mid_flush_rebuilds_from_wal() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store.commit("t1", staged(&["a", "b"]), "seed").unwrap();
        // Corrupt the pages file wholesale; the WAL stays intact.
        mem.write_file(std::path::Path::new("/kb/t1/pages.dat"), &[0xFF; 2048])
            .unwrap();
        // A fresh store (fresh pool — a crash kills the process) rebuilds.
        let store2 = mem_store(&mem);
        let snap = store2.snapshot("t1").unwrap();
        assert_eq!(snap.content().unwrap().examples.len(), 2);
    }

    #[test]
    fn stale_pages_after_wal_append_are_rebuilt() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        store.commit("t1", staged(&["a"]), "seed").unwrap();
        // Append to the WAL behind the paging layer's back (simulates a
        // crash after the WAL commit but before the page flush).
        {
            let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
            let mut writer = DurableKnowledgeStore::open_with(
                fs,
                "/kb/t1/knowledge.json",
                "/kb/t1/knowledge.wal",
                StoreConfig::default(),
                None,
            )
            .unwrap();
            writer.apply(edit("b")).unwrap();
        }
        let store2 = mem_store(&mem);
        let snap = store2.snapshot("t1").unwrap();
        assert_eq!(
            snap.content().unwrap().examples.len(),
            2,
            "stale pages must lose to the WAL"
        );
    }

    #[test]
    fn vectors_round_trip_and_invalidate_on_commit() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let epoch = store.commit("t1", staged(&["a", "b"]), "seed").unwrap();
        let vectors = StoredVectors {
            dim: 3,
            examples: vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            instructions: vec![],
            schema: vec![],
        };
        assert!(store.put_vectors("t1", epoch, &vectors).unwrap());
        let snap = store.snapshot("t1").unwrap();
        assert_eq!(snap.vectors().unwrap().unwrap(), vectors);
        drop(snap);
        // Stale epoch: rejected.
        let new_epoch = store.commit("t1", staged(&["c"]), "more").unwrap();
        assert!(!store.put_vectors("t1", epoch, &vectors).unwrap());
        // Vectors were dropped by the commit.
        let snap = store.snapshot("t1").unwrap();
        assert_eq!(snap.epoch(), new_epoch);
        assert!(snap.vectors().unwrap().is_none());
        // Cold load too.
        store.forget("t1");
        let snap = store.snapshot("t1").unwrap();
        assert!(snap.vectors().unwrap().is_none());
    }

    #[test]
    fn vectors_survive_cold_load() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        let epoch = store.commit("t1", staged(&["a"]), "seed").unwrap();
        // Large enough to span multiple 1 KiB pages.
        let vectors = StoredVectors {
            dim: 200,
            examples: vec![(0..200).map(|i| i as f32 * 0.5).collect(); 4],
            instructions: vec![(0..200).map(|i| -(i as f32)).collect()],
            schema: vec![],
        };
        assert!(store.put_vectors("t1", epoch, &vectors).unwrap());
        store.forget("t1");
        let snap = store.snapshot("t1").unwrap();
        assert_eq!(snap.vectors().unwrap().unwrap(), vectors);
    }

    #[test]
    fn many_tenants_independent_and_pool_bounded() {
        let mem = Arc::new(MemFs::new());
        let store = mem_store(&mem);
        for i in 0..40 {
            let tenant = format!("t{i}");
            store
                .commit(&tenant, staged(&[&format!("example-{i}")]), "seed")
                .unwrap();
        }
        for i in 0..40 {
            let tenant = format!("t{i}");
            let snap = store.snapshot(&tenant).unwrap();
            let content = snap.content().unwrap();
            assert_eq!(content.examples[0].description, format!("example-{i}"));
        }
        let stats = store.pool().stats();
        assert!(
            stats.resident_bytes <= 16 * 1024,
            "pool resident {} exceeds budget",
            stats.resident_bytes
        );
    }

    #[test]
    fn vector_stream_codec_round_trips() {
        let v = StoredVectors {
            dim: 2,
            examples: vec![vec![1.5, -2.5]],
            instructions: vec![vec![0.0, 3.25], vec![7.0, -1.0]],
            schema: vec![],
        };
        let bytes = encode_vector_stream(&v);
        assert_eq!(decode_vector_stream(&bytes).unwrap(), v);
        assert!(decode_vector_stream(&bytes[..bytes.len() - 1]).is_err());
        assert!(decode_vector_stream(&bytes[..10]).is_err());
    }
}
