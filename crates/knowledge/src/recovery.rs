//! Crash recovery for the durable knowledge store.
//!
//! Recovery rebuilds the knowledge set from the snapshot plus the journal
//! tail, under one invariant: **the recovered set is `content_eq` to the
//! replay of some committed prefix of the edit history** — never a panic,
//! never a half-applied merge. The three damage classes map to three
//! responses:
//!
//! - a *torn tail* (incomplete or checksum-failing final frame) is cut
//!   off by truncating the journal back to the last valid record
//!   boundary;
//! - an *unterminated batch* at the tail (crash between a merge's
//!   `BatchStart` and its `BatchCommit`) is discarded and truncated, so
//!   the merge rolls back as a unit;
//! - *mid-file corruption* (a bad frame with readable data after it, or
//!   a record that refuses to replay) quarantines the damaged file —
//!   renamed aside, never deleted — and the valid prefix is immediately
//!   re-persisted as a snapshot so the next open is clean.
//!
//! A journal generation opens with a [`JournalRecord::Baseline`] epoch
//! marker. When the loaded snapshot is *newer* than the journal's
//! baseline — the signature of a crash between compaction's snapshot
//! rename and its journal reset — every journal record is already folded
//! into the snapshot, so recovery skips the journal and truncates it
//! instead of double-applying. A journal *ahead* of its snapshot (the
//! snapshot was lost or quarantined after a compaction) is unreplayable
//! and quarantined with it.
//!
//! Re-opening an already-recovered store is idempotent: it finds a clean
//! journal and replays to the identical state.

use crate::fs::StoreFs;
use crate::journal::{scan, JournalRecord, ScanEnd};
use crate::persist;
use crate::set::{Edit, KnowledgeSet};
use crate::store::StoreError;
use genedit_telemetry::{MetricsRegistry, Tracer};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// How recovery left the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// Neither snapshot nor journal existed — a brand-new store.
    FreshStart,
    /// Snapshot and journal were intact; nothing needed repair.
    Clean,
    /// A torn tail (and/or an unterminated trailing batch) was truncated.
    TruncatedTail,
    /// Mid-file corruption was quarantined.
    Quarantined,
}

/// What recovery found and did. Returned by `DurableKnowledgeStore::open`
/// and folded into `store.*` metrics.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// How recovery classified the on-disk state.
    pub outcome: RecoveryOutcome,
    /// Whether a snapshot file was loaded as the replay base.
    pub snapshot_loaded: bool,
    /// Valid records found in the journal.
    pub records_scanned: usize,
    /// Standalone + batched edits actually applied.
    pub edits_replayed: usize,
    /// Checkpoint records replayed.
    pub checkpoints_replayed: usize,
    /// Merge batches committed during replay.
    pub batches_committed: usize,
    /// Trailing unterminated batches discarded (0 or 1).
    pub batches_discarded: usize,
    /// Bytes cut from the journal (torn tail + discarded batch).
    pub bytes_truncated: u64,
    /// Files renamed aside because of unrecoverable damage.
    pub quarantined: Vec<PathBuf>,
    /// Wall-clock recovery duration, milliseconds.
    pub duration_ms: f64,
}

impl RecoveryReport {
    fn fresh() -> RecoveryReport {
        RecoveryReport {
            outcome: RecoveryOutcome::FreshStart,
            snapshot_loaded: false,
            records_scanned: 0,
            edits_replayed: 0,
            checkpoints_replayed: 0,
            batches_committed: 0,
            batches_discarded: 0,
            bytes_truncated: 0,
            quarantined: Vec::new(),
            duration_ms: 0.0,
        }
    }

    /// True when recovery had to repair or quarantine anything.
    pub fn repaired(&self) -> bool {
        !matches!(
            self.outcome,
            RecoveryOutcome::FreshStart | RecoveryOutcome::Clean
        )
    }
}

/// Outcome of replaying scanned records onto a base set.
struct ReplayOutcome {
    /// Index of the first record that refused to replay (malformed
    /// sequence or inapplicable edit) — treated as corruption.
    bad_record: Option<usize>,
    /// Byte offset where an unterminated trailing batch starts, if any.
    discarded_batch_at: Option<u64>,
    edits: usize,
    checkpoints: usize,
    batches: usize,
}

/// Replay the valid record prefix onto `base`. Batches apply atomically:
/// buffered until their commit marker, rolled back wholesale if any edit
/// inside refuses. `offsets[i]` is the byte offset of `records[i]`.
fn replay_into(
    base: &mut KnowledgeSet,
    records: &[JournalRecord],
    offsets: &[u64],
) -> ReplayOutcome {
    let mut outcome = ReplayOutcome {
        bad_record: None,
        discarded_batch_at: None,
        edits: 0,
        checkpoints: 0,
        batches: 0,
    };
    let mut pending: Option<(String, u32, Vec<Edit>, u64)> = None;
    for (i, record) in records.iter().enumerate() {
        let bad = match (&mut pending, record) {
            // The epoch marker is consumed before replay; one appearing
            // mid-journal never comes from the writer.
            (_, JournalRecord::Baseline { .. }) => true,
            (None, JournalRecord::Edit(edit)) => match base.apply(edit.clone()) {
                Ok(_) => {
                    outcome.edits += 1;
                    false
                }
                Err(_) => true,
            },
            (None, JournalRecord::Checkpoint { label }) => {
                base.checkpoint(label.clone());
                outcome.checkpoints += 1;
                false
            }
            (None, JournalRecord::BatchStart { label, count }) => {
                pending = Some((label.clone(), *count, Vec::new(), offsets[i]));
                false
            }
            // A commit with no open batch never comes from the writer.
            (None, JournalRecord::BatchCommit) => true,
            (Some((_, _, edits, _)), JournalRecord::Edit(edit)) => {
                edits.push(edit.clone());
                false
            }
            (Some((label, count, edits, _)), JournalRecord::BatchCommit) => {
                if edits.len() != *count as usize {
                    true
                } else {
                    // Apply the batch atomically, mirroring
                    // `StagingArea::commit`: checkpoint first, roll the
                    // whole batch back if any edit refuses.
                    let backup = base.clone();
                    base.checkpoint(label.clone());
                    let failed = edits.drain(..).any(|edit| base.apply(edit).is_err());
                    if failed {
                        *base = backup;
                        true
                    } else {
                        outcome.batches += 1;
                        outcome.edits += *count as usize;
                        pending = None;
                        false
                    }
                }
            }
            // Checkpoints and nested batches inside an open batch never
            // come from the writer either.
            (Some(_), JournalRecord::Checkpoint { .. })
            | (Some(_), JournalRecord::BatchStart { .. }) => true,
        };
        if bad {
            outcome.bad_record = Some(i);
            return outcome;
        }
    }
    if let Some((_, _, _, start)) = pending {
        // Crash between BatchStart and BatchCommit: the merge never
        // committed, so it is discarded as a unit.
        outcome.discarded_batch_at = Some(start);
    }
    outcome
}

/// Rename `path` aside to the first free `<path>.quarantine[.n]` name.
fn quarantine(fs: &Arc<dyn StoreFs>, path: &Path) -> Result<PathBuf, StoreError> {
    let base = format!("{}.quarantine", path.display());
    let mut candidate = PathBuf::from(&base);
    let mut n = 1;
    while fs.exists(&candidate) {
        candidate = PathBuf::from(format!("{base}.{n}"));
        n += 1;
    }
    fs.rename(path, &candidate)
        .map_err(|source| StoreError::Io {
            op: "quarantine rename",
            path: path.to_path_buf(),
            source,
        })?;
    Ok(candidate)
}

fn read_optional(fs: &Arc<dyn StoreFs>, path: &Path) -> Result<Option<Vec<u8>>, StoreError> {
    if !fs.exists(path) {
        return Ok(None);
    }
    match fs.read(path) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(source) => Err(StoreError::Io {
            op: "read",
            path: path.to_path_buf(),
            source,
        }),
    }
}

/// Recover the knowledge set from `snapshot_path` + `journal_path`.
///
/// On return the on-disk journal has been repaired in place (torn tails
/// and unterminated batches truncated). A [`RecoveryOutcome::Quarantined`]
/// outcome means the caller must re-persist the recovered set as a
/// snapshot — the damaged journal was renamed aside, so the replayed
/// prefix no longer lives in any live file.
pub fn recover(
    fs: &Arc<dyn StoreFs>,
    snapshot_path: &Path,
    journal_path: &Path,
    max_snapshot_bytes: u64,
    metrics: Option<&Arc<MetricsRegistry>>,
) -> Result<(KnowledgeSet, RecoveryReport), StoreError> {
    let started = Instant::now();
    let tracer = Tracer::new("store");
    let span = tracer.span(genedit_telemetry::names::STORE_RECOVER);
    let mut report = RecoveryReport::fresh();

    // ------------------------------------------------------------------
    // Base state: the snapshot, if one exists and decodes.
    // ------------------------------------------------------------------
    let mut set = KnowledgeSet::new();
    let snapshot_len = if fs.exists(snapshot_path) {
        fs.len(snapshot_path).unwrap_or(0)
    } else {
        0
    };
    if fs.exists(snapshot_path) && snapshot_len > max_snapshot_bytes {
        tracer.warning(format!(
            "snapshot {} is {snapshot_len} bytes (limit {max_snapshot_bytes}); quarantining",
            snapshot_path.display()
        ));
        report.quarantined.push(quarantine(fs, snapshot_path)?);
    } else if let Some(bytes) = read_optional(fs, snapshot_path)? {
        match std::str::from_utf8(&bytes)
            .ok()
            .and_then(|json| persist::from_json(json).ok())
        {
            Some(loaded) => {
                set = loaded;
                report.snapshot_loaded = true;
            }
            None => {
                tracer.warning(format!(
                    "snapshot {} is corrupt; quarantining",
                    snapshot_path.display()
                ));
                report.quarantined.push(quarantine(fs, snapshot_path)?);
            }
        }
    }

    // ------------------------------------------------------------------
    // Journal: scan the valid prefix, replay it, repair the file.
    // ------------------------------------------------------------------
    let journal_bytes = read_optional(fs, journal_path)?.unwrap_or_default();
    let journal_existed = fs.exists(journal_path);
    let scanned = scan(&journal_bytes);
    report.records_scanned = scanned.records.len();

    // ------------------------------------------------------------------
    // Epoch check: a journal generation leads with a Baseline marker of
    // the state it was started from. Compare it with the loaded base.
    // ------------------------------------------------------------------
    enum JournalEpoch {
        /// Journal matches the base (or carries no marker): replay,
        /// skipping the marker itself.
        Aligned(usize),
        /// The snapshot is newer — crash between compaction's snapshot
        /// rename and journal reset. Every record is already folded in.
        Stale,
        /// The journal is ahead of the base — the snapshot it assumes
        /// was lost. Its records cannot replay.
        Ahead,
    }
    let epoch = match scanned.records.first() {
        Some(JournalRecord::Baseline {
            log_len,
            checkpoints,
        }) => {
            let (sl, sc) = (set.log().len() as u64, set.checkpoints().len() as u64);
            if (*log_len, *checkpoints) == (sl, sc) {
                JournalEpoch::Aligned(1)
            } else if *log_len <= sl && *checkpoints <= sc {
                JournalEpoch::Stale
            } else {
                JournalEpoch::Ahead
            }
        }
        // No epoch marker (hand-built journal): replay everything as-is.
        _ => JournalEpoch::Aligned(0),
    };

    match epoch {
        JournalEpoch::Stale => {
            tracer.warning(format!(
                "journal {} predates the snapshot (crash between compaction's \
                 rename and reset); discarding {} already-applied records",
                journal_path.display(),
                report.records_scanned.saturating_sub(1),
            ));
            fs.truncate(journal_path, 0)
                .map_err(|source| StoreError::Io {
                    op: "truncate",
                    path: journal_path.to_path_buf(),
                    source,
                })?;
            report.bytes_truncated += journal_bytes.len() as u64;
            report.outcome = RecoveryOutcome::TruncatedTail;
        }
        JournalEpoch::Ahead => {
            tracer.warning(format!(
                "journal {} is ahead of its base state (the snapshot it \
                 assumes is gone); quarantining",
                journal_path.display()
            ));
            report.bytes_truncated += journal_bytes.len() as u64;
            report.quarantined.push(quarantine(fs, journal_path)?);
            report.outcome = RecoveryOutcome::Quarantined;
        }
        JournalEpoch::Aligned(skip) => {
            let records = &scanned.records[skip..];
            let offsets = &scanned.offsets[skip..];
            let replayed = replay_into(&mut set, records, offsets);
            report.edits_replayed = replayed.edits;
            report.checkpoints_replayed = replayed.checkpoints;
            report.batches_committed = replayed.batches;

            // The prefix of the journal that is both valid *and* fully
            // replayed. Everything after it is damage of one class or
            // the other.
            let committed_bytes = match (replayed.bad_record, replayed.discarded_batch_at) {
                (Some(i), _) => offsets[i],
                (None, Some(start)) => start,
                (None, None) => scanned.valid_bytes,
            };

            if replayed.bad_record.is_some() || scanned.end == ScanEnd::Corrupt {
                // Mid-file damage: rename the whole journal aside. The
                // valid replayed prefix survives in memory; the caller
                // snapshots it.
                tracer.warning(format!(
                    "journal {} has mid-file corruption after {} records; quarantining",
                    journal_path.display(),
                    report.records_scanned
                ));
                report.bytes_truncated += journal_bytes.len() as u64 - committed_bytes;
                report.quarantined.push(quarantine(fs, journal_path)?);
                report.outcome = RecoveryOutcome::Quarantined;
            } else {
                let tail = journal_bytes.len() as u64 - committed_bytes;
                if tail > 0 {
                    if replayed.discarded_batch_at.is_some() {
                        report.batches_discarded = 1;
                        tracer.warning(format!(
                            "journal {} ends in an uncommitted merge batch; rolling it back",
                            journal_path.display()
                        ));
                    }
                    fs.truncate(journal_path, committed_bytes)
                        .map_err(|source| StoreError::Io {
                            op: "truncate",
                            path: journal_path.to_path_buf(),
                            source,
                        })?;
                    report.bytes_truncated += tail;
                    report.outcome = RecoveryOutcome::TruncatedTail;
                } else if journal_existed || report.snapshot_loaded {
                    report.outcome = RecoveryOutcome::Clean;
                }
            }
        }
    }
    if !report.quarantined.is_empty() {
        report.outcome = RecoveryOutcome::Quarantined;
    }

    report.duration_ms = started.elapsed().as_secs_f64() * 1e3;
    span.attr("records", report.records_scanned)
        .attr("edits_replayed", report.edits_replayed)
        .attr("bytes_truncated", report.bytes_truncated)
        .attr("quarantined", report.quarantined.len())
        .attr("outcome", format!("{:?}", report.outcome));
    span.finish();
    if let Some(m) = metrics {
        m.incr("store.recovery.runs", 1);
        m.incr(
            "store.recovery.records_replayed",
            report.records_scanned as u64,
        );
        m.incr("store.recovery.bytes_truncated", report.bytes_truncated);
        m.incr(
            "store.recovery.quarantined",
            report.quarantined.len() as u64,
        );
        m.observe("store.recovery.ms", report.duration_ms);
        m.record_trace(&tracer.finish());
    }
    Ok((set, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use crate::journal::encode_record;
    use crate::types::{FragmentKind, SourceRef, SqlFragment};

    fn edit(desc: &str) -> Edit {
        Edit::InsertExample {
            intent: None,
            description: desc.into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
            term: None,
            source: SourceRef::Manual,
        }
    }

    fn fs_with_journal(records: &[JournalRecord]) -> (Arc<dyn StoreFs>, PathBuf, PathBuf) {
        let fs: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let journal = PathBuf::from("k.wal");
        let mut bytes = Vec::new();
        for r in records {
            bytes.extend_from_slice(&encode_record(r).unwrap());
        }
        fs.write_file(&journal, &bytes).unwrap();
        (fs, PathBuf::from("k.json"), journal)
    }

    #[test]
    fn fresh_directory_recovers_to_empty() {
        let fs: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let (set, report) =
            recover(&fs, Path::new("k.json"), Path::new("k.wal"), u64::MAX, None).unwrap();
        assert!(set.content_eq(&KnowledgeSet::new()));
        assert_eq!(report.outcome, RecoveryOutcome::FreshStart);
        assert!(!report.repaired());
    }

    #[test]
    fn clean_journal_replays_in_full() {
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Edit(edit("a")),
            JournalRecord::Checkpoint { label: "cp".into() },
            JournalRecord::BatchStart {
                label: "m".into(),
                count: 2,
            },
            JournalRecord::Edit(edit("b")),
            JournalRecord::Edit(edit("c")),
            JournalRecord::BatchCommit,
        ]);
        let (set, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::Clean);
        assert_eq!(set.examples().len(), 3);
        assert_eq!(report.edits_replayed, 3);
        assert_eq!(report.checkpoints_replayed, 1);
        assert_eq!(report.batches_committed, 1);
        // The batch's checkpoint is replayed from its BatchStart label.
        assert_eq!(set.checkpoints().len(), 2);
    }

    #[test]
    fn unterminated_trailing_batch_rolls_back_and_truncates() {
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Edit(edit("a")),
            JournalRecord::BatchStart {
                label: "m".into(),
                count: 2,
            },
            JournalRecord::Edit(edit("b")),
        ]);
        let before = fs.len(&journal).unwrap();
        let (set, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::TruncatedTail);
        assert_eq!(set.examples().len(), 1, "uncommitted merge must roll back");
        assert_eq!(report.batches_discarded, 1);
        assert!(report.bytes_truncated > 0);
        assert!(fs.len(&journal).unwrap() < before);

        // Idempotent: a second recovery is clean and identical.
        let (set2, report2) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report2.outcome, RecoveryOutcome::Clean);
        assert!(set.content_eq(&set2));
        assert_eq!(report2.bytes_truncated, 0);
    }

    #[test]
    fn commit_without_start_is_corruption() {
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Edit(edit("a")),
            JournalRecord::BatchCommit,
            JournalRecord::Edit(edit("b")),
        ]);
        let (set, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::Quarantined);
        assert_eq!(set.examples().len(), 1);
        assert!(!fs.exists(&journal), "damaged journal renamed aside");
        assert!(fs.exists(&report.quarantined[0]));
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_not_fatal() {
        let fs: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let snap = PathBuf::from("k.json");
        let journal = PathBuf::from("k.wal");
        fs.write_file(&snap, b"{ definitely not a knowledge set")
            .unwrap();
        fs.write_file(
            &journal,
            &encode_record(&JournalRecord::Edit(edit("a"))).unwrap(),
        )
        .unwrap();
        let (set, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::Quarantined);
        assert_eq!(set.examples().len(), 1, "journal still replays");
        assert!(!fs.exists(&snap));
        assert!(fs.exists(&PathBuf::from("k.json.quarantine")));
    }

    #[test]
    fn stale_journal_is_skipped_not_double_applied() {
        // A crash between compaction's snapshot rename and its journal
        // reset leaves a snapshot that already contains every journal
        // record. The baseline epoch detects it.
        let mut set = KnowledgeSet::new();
        set.apply(edit("a")).unwrap();
        set.apply(edit("b")).unwrap();
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Baseline {
                log_len: 0,
                checkpoints: 0,
            },
            JournalRecord::Edit(edit("a")),
            JournalRecord::Edit(edit("b")),
        ]);
        fs.write_file(&snap, persist::to_json(&set).unwrap().as_bytes())
            .unwrap();
        let (recovered, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::TruncatedTail);
        assert_eq!(report.edits_replayed, 0, "records must not re-apply");
        assert!(recovered.content_eq(&set));
        assert_eq!(recovered.log().len(), 2, "no duplicated log entries");
        assert_eq!(fs.len(&journal).unwrap(), 0, "stale journal emptied");
    }

    #[test]
    fn journal_ahead_of_its_base_is_quarantined() {
        // A journal whose baseline assumes state that no snapshot holds
        // (the snapshot was lost after a compaction) cannot replay.
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Baseline {
                log_len: 5,
                checkpoints: 1,
            },
            JournalRecord::Edit(edit("late")),
        ]);
        let (set, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::Quarantined);
        assert!(set.content_eq(&KnowledgeSet::new()));
        assert!(!fs.exists(&journal), "unreplayable journal renamed aside");
        assert!(fs.exists(&report.quarantined[0]));
    }

    #[test]
    fn matching_baseline_replays_the_tail() {
        let mut set = KnowledgeSet::new();
        set.apply(edit("a")).unwrap();
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Baseline {
                log_len: 1,
                checkpoints: 0,
            },
            JournalRecord::Edit(edit("b")),
        ]);
        fs.write_file(&snap, persist::to_json(&set).unwrap().as_bytes())
            .unwrap();
        let (recovered, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::Clean);
        assert_eq!(report.edits_replayed, 1);
        assert_eq!(recovered.examples().len(), 2);
    }

    #[test]
    fn mid_journal_baseline_is_corruption() {
        let (fs, snap, journal) = fs_with_journal(&[
            JournalRecord::Edit(edit("a")),
            JournalRecord::Baseline {
                log_len: 1,
                checkpoints: 0,
            },
            JournalRecord::Edit(edit("b")),
        ]);
        let (set, report) = recover(&fs, &snap, &journal, u64::MAX, None).unwrap();
        assert_eq!(report.outcome, RecoveryOutcome::Quarantined);
        assert_eq!(set.examples().len(), 1);
    }

    #[test]
    fn quarantine_names_never_collide() {
        let fs: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let path = PathBuf::from("f");
        fs.write_file(&path, b"1").unwrap();
        let q1 = quarantine(&fs, &path).unwrap();
        fs.write_file(&path, b"2").unwrap();
        let q2 = quarantine(&fs, &path).unwrap();
        assert_ne!(q1, q2);
        assert_eq!(fs.read(&q1).unwrap(), b"1");
        assert_eq!(fs.read(&q2).unwrap(), b"2");
    }
}
