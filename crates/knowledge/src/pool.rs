//! Buffer-pool manager: pinned frames, clock eviction, memory budget.
//!
//! The pool caches decoded [`Page`]s across all tenants under a single
//! byte budget so hot tenants stay resident while cold tenants page in
//! on demand. Three rules govern it:
//!
//! 1. **Pin/unpin reference counting.** [`BufferPool::pin_with`] returns
//!    a [`PinnedPage`] RAII guard; while any guard for a frame is alive
//!    the frame cannot be evicted, so readers never observe a page being
//!    reclaimed under them. Dropping the guard unpins.
//! 2. **Clock (second-chance) eviction.** When admitting a page would
//!    exceed the budget, a clock hand sweeps the frames: pinned frames
//!    are skipped, referenced frames get their bit cleared and a second
//!    chance, and the first unpinned unreferenced frame is reclaimed.
//! 3. **Frames are clean by construction.** Pages are immutable once
//!    pooled — the tenant store writes new page versions to disk *before*
//!    publishing them (copy-on-write), so eviction never writes back and
//!    losing the pool loses nothing.
//!
//! If every frame is pinned the pool admits past the budget rather than
//! deadlock, and counts the overcommit ([`names::POOL_OVERCOMMITS`]);
//! the budget is a target enforced whenever any unpinned frame exists.
//!
//! ```
//! use std::sync::Arc;
//! use genedit_knowledge::page::{Page, PageKind, DEFAULT_PAGE_SIZE};
//! use genedit_knowledge::pool::{BufferPool, PageKey, PoolConfig};
//!
//! let pool = Arc::new(BufferPool::new(PoolConfig {
//!     budget_bytes: 64 * 1024,
//!     ..PoolConfig::default()
//! }));
//! let key = PageKey { tenant: 3, page_no: 0 };
//! let pinned = pool
//!     .pin_with(key, || {
//!         // Loader runs only on a miss — normally a checksummed read
//!         // from the tenant's page file.
//!         let mut page = Page::new(PageKind::Entry, 0, 1, DEFAULT_PAGE_SIZE);
//!         page.push(b"record").unwrap();
//!         Ok(Arc::new(page))
//!     })
//!     .unwrap();
//! assert_eq!(pinned.page().record(0).unwrap(), b"record");
//! drop(pinned); // unpin: the frame is now evictable
//! ```

use crate::page::{Page, DEFAULT_PAGE_SIZE};
use genedit_telemetry::{names, MetricsRegistry};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};

/// Buffer-pool sizing.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Target bytes of resident page data across all tenants. The pool
    /// evicts unpinned frames to stay at or under this.
    pub budget_bytes: usize,
    /// Page size the pool accounts with (all pages share one size).
    pub page_size: usize,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            budget_bytes: 64 * 1024 * 1024,
            page_size: DEFAULT_PAGE_SIZE,
        }
    }
}

/// Identifies one page across the whole pool: a tenant slot (assigned by
/// the tenant store) plus the physical page number in that tenant's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageKey {
    /// Tenant slot id.
    pub tenant: u64,
    /// Physical page number within the tenant's page file.
    pub page_no: u32,
}

#[derive(Debug)]
struct Frame {
    key: PageKey,
    page: Arc<Page>,
    pins: u32,
    /// Clock reference bit: set on every hit, cleared by the sweep.
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolState {
    map: HashMap<PageKey, usize>,
    frames: Vec<Option<Frame>>,
    free: Vec<usize>,
    hand: usize,
    resident_bytes: usize,
    pinned_frames: usize,
}

/// Point-in-time counters for tests and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Requests served from a resident frame.
    pub hits: u64,
    /// Requests that ran the loader.
    pub misses: u64,
    /// Frames evicted by the clock sweep.
    pub evictions: u64,
    /// Admissions past the budget because all frames were pinned.
    pub overcommits: u64,
    /// Bytes of page data currently resident.
    pub resident_bytes: usize,
    /// Frames currently pinned.
    pub pinned_frames: usize,
}

/// The shared buffer pool. Construct once, share via `Arc`, and pin
/// pages with [`BufferPool::pin_with`]. See the module docs for the
/// eviction protocol.
pub struct BufferPool {
    config: PoolConfig,
    state: Mutex<PoolState>,
    counters: Mutex<Counters>,
    metrics: Option<Arc<MetricsRegistry>>,
}

#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    hits: u64,
    misses: u64,
    evictions: u64,
    overcommits: u64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("BufferPool")
            .field("budget_bytes", &self.config.budget_bytes)
            .field("resident_bytes", &stats.resident_bytes)
            .field("pinned_frames", &stats.pinned_frames)
            .finish()
    }
}

impl BufferPool {
    /// A pool with the given budget; no metrics.
    pub fn new(config: PoolConfig) -> BufferPool {
        BufferPool::with_metrics(config, None)
    }

    /// A pool that reports `store.pool.*` counters and gauges.
    pub fn with_metrics(config: PoolConfig, metrics: Option<Arc<MetricsRegistry>>) -> BufferPool {
        BufferPool {
            config,
            state: Mutex::new(PoolState::default()),
            counters: Mutex::new(Counters::default()),
            metrics,
        }
    }

    /// The configured sizing.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_counters(&self) -> MutexGuard<'_, Counters> {
        self.counters
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Pin an already-resident frame; `None` on miss. Takes the lock.
    fn try_pin_resident(&self, key: PageKey) -> Option<Arc<Page>> {
        let mut state = self.lock();
        let idx = *state.map.get(&key)?;
        let (page, newly_pinned) = {
            let frame = state.frames[idx].as_mut()?;
            frame.referenced = true;
            let newly_pinned = frame.pins == 0;
            frame.pins += 1;
            (Arc::clone(&frame.page), newly_pinned)
        };
        if newly_pinned {
            state.pinned_frames += 1;
        }
        drop(state);
        self.lock_counters().hits += 1;
        self.publish_metrics(names::POOL_HIT);
        Some(page)
    }

    /// Pin the page under `key`, running `loader` only on a miss. The
    /// returned guard keeps the frame resident until dropped. Loader
    /// errors propagate without admitting anything.
    pub fn pin_with(
        self: &Arc<Self>,
        key: PageKey,
        loader: impl FnOnce() -> io::Result<Arc<Page>>,
    ) -> io::Result<PinnedPage> {
        // Fast path: already resident.
        if let Some(page) = self.try_pin_resident(key) {
            return Ok(PinnedPage {
                pool: Arc::clone(self),
                key,
                page,
            });
        }

        // Miss: load outside the lock so slow disk I/O for one tenant
        // never blocks hits for others.
        let page = loader()?;
        let page_bytes = page.page_size();

        // Another thread may have admitted the same key while we loaded;
        // reuse its frame and drop our copy.
        loop {
            if let Some(page) = self.try_pin_resident(key) {
                return Ok(PinnedPage {
                    pool: Arc::clone(self),
                    key,
                    page,
                });
            }
            let state = self.lock();
            if !state.map.contains_key(&key) {
                break self.admit(state, key, page, page_bytes);
            }
            // Admitted between the pin attempt and the lock — retry the pin.
        }
    }

    /// Admit a freshly loaded page under the lock, evicting to budget.
    fn admit(
        self: &Arc<Self>,
        mut state: MutexGuard<'_, PoolState>,
        key: PageKey,
        page: Arc<Page>,
        page_bytes: usize,
    ) -> io::Result<PinnedPage> {
        // Evict until the new page fits (or nothing evictable remains).
        let mut evicted = 0u64;
        while state.resident_bytes + page_bytes > self.config.budget_bytes {
            if !Self::evict_one(&mut state) {
                break;
            }
            evicted += 1;
        }
        let overcommitted = state.resident_bytes + page_bytes > self.config.budget_bytes;

        let idx = match state.free.pop() {
            Some(idx) => idx,
            None => {
                state.frames.push(None);
                state.frames.len() - 1
            }
        };
        state.frames[idx] = Some(Frame {
            key,
            page: Arc::clone(&page),
            pins: 1,
            referenced: true,
        });
        state.map.insert(key, idx);
        state.resident_bytes += page_bytes;
        state.pinned_frames += 1;
        {
            let mut counters = self.lock_counters();
            counters.misses += 1;
            counters.evictions += evicted;
            if overcommitted {
                counters.overcommits += 1;
            }
        }
        drop(state);
        self.publish_metrics(names::POOL_MISS);
        Ok(PinnedPage {
            pool: Arc::clone(self),
            key,
            page,
        })
    }

    /// One clock sweep step: reclaim the first unpinned, unreferenced
    /// frame (clearing reference bits along the way). `false` when every
    /// frame is pinned.
    fn evict_one(state: &mut PoolState) -> bool {
        let frame_count = state.frames.len();
        if frame_count == 0 {
            return false;
        }
        // Two full sweeps: the first clears reference bits, the second
        // then finds any unpinned frame. More passes can't help.
        for _ in 0..(2 * frame_count) {
            let idx = state.hand % frame_count;
            state.hand = (state.hand + 1) % frame_count;
            let Some(frame) = state.frames[idx].as_mut() else {
                continue;
            };
            if frame.pins > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            let key = frame.key;
            let bytes = frame.page.page_size();
            state.frames[idx] = None;
            state.free.push(idx);
            state.map.remove(&key);
            state.resident_bytes -= bytes;
            return true;
        }
        false
    }

    fn unpin(&self, key: PageKey) {
        let mut state = self.lock();
        if let Some(&idx) = state.map.get(&key) {
            if let Some(frame) = state.frames[idx].as_mut() {
                frame.pins = frame.pins.saturating_sub(1);
                if frame.pins == 0 {
                    state.pinned_frames = state.pinned_frames.saturating_sub(1);
                }
            }
        }
        drop(state);
        self.publish_metrics("");
    }

    /// Drop the frame under `key` if resident and unpinned — used when a
    /// physical page slot is reused for a new page version and the cached
    /// image would be stale. Pinned frames are left alone (their readers
    /// hold a snapshot that still owns the old slot).
    pub fn invalidate(&self, key: PageKey) {
        let mut state = self.lock();
        if let Some(&idx) = state.map.get(&key) {
            if let Some(frame) = state.frames[idx].as_ref() {
                if frame.pins == 0 {
                    let bytes = frame.page.page_size();
                    state.frames[idx] = None;
                    state.free.push(idx);
                    state.map.remove(&key);
                    state.resident_bytes -= bytes;
                }
            }
        }
        drop(state);
        self.publish_metrics("");
    }

    /// Current counters and residency.
    pub fn stats(&self) -> PoolStats {
        // One lock at a time: `admit` holds the state lock while taking
        // the counter lock, so grabbing them together here could deadlock.
        let counters = *self.lock_counters();
        let state = self.lock();
        PoolStats {
            hits: counters.hits,
            misses: counters.misses,
            evictions: counters.evictions,
            overcommits: counters.overcommits,
            resident_bytes: state.resident_bytes,
            pinned_frames: state.pinned_frames,
        }
    }

    fn publish_metrics(&self, event: &str) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        match event {
            names::POOL_HIT => metrics.incr(names::POOL_HIT, 1),
            names::POOL_MISS => metrics.incr(names::POOL_MISS, 1),
            _ => {}
        }
        let stats = self.stats();
        metrics.set_gauge(names::POOL_RESIDENT_BYTES, stats.resident_bytes as f64);
        metrics.set_gauge(names::POOL_PINNED, stats.pinned_frames as f64);
        if event == names::POOL_MISS {
            // Evictions/overcommits only change on the miss path. Mirror
            // the pool's internal counters into the registry by publishing
            // the delta (the registry has no counter-set operation). The
            // internal stats stay authoritative if publishers race.
            let behind = stats
                .evictions
                .saturating_sub(metrics.counter(names::POOL_EVICTIONS));
            metrics.incr(names::POOL_EVICTIONS, behind);
            let behind = stats
                .overcommits
                .saturating_sub(metrics.counter(names::POOL_OVERCOMMITS));
            metrics.incr(names::POOL_OVERCOMMITS, behind);
        }
    }
}

/// RAII pin on one pooled page. While alive the frame cannot be evicted;
/// drop to unpin. Clone the inner [`Arc<Page>`] via [`PinnedPage::page`]
/// if the bytes must outlive the pin.
pub struct PinnedPage {
    pool: Arc<BufferPool>,
    key: PageKey,
    page: Arc<Page>,
}

impl PinnedPage {
    /// The pinned page.
    pub fn page(&self) -> &Arc<Page> {
        &self.page
    }

    /// The key this pin holds.
    pub fn key(&self) -> PageKey {
        self.key
    }
}

impl std::fmt::Debug for PinnedPage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedPage")
            .field("key", &self.key)
            .finish()
    }
}

impl Drop for PinnedPage {
    fn drop(&mut self) {
        self.pool.unpin(self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn test_page(no: u32, size: usize) -> Arc<Page> {
        Arc::new(Page::new(PageKind::Entry, no, 1, size))
    }

    fn small_pool(pages: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(PoolConfig {
            budget_bytes: pages * 256,
            page_size: 256,
        }))
    }

    fn key(tenant: u64, page_no: u32) -> PageKey {
        PageKey { tenant, page_no }
    }

    #[test]
    fn hit_after_miss_without_reloading() {
        let pool = small_pool(4);
        let p1 = pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap();
        drop(p1);
        let p2 = pool
            .pin_with(key(1, 0), || panic!("must not reload a resident page"))
            .unwrap();
        assert_eq!(p2.page().page_no(), 0);
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn budget_is_enforced_by_eviction() {
        let pool = small_pool(2);
        for i in 0..10 {
            let pinned = pool.pin_with(key(1, i), || Ok(test_page(i, 256))).unwrap();
            drop(pinned);
        }
        let stats = pool.stats();
        assert!(
            stats.resident_bytes <= 2 * 256,
            "resident {} exceeds budget",
            stats.resident_bytes
        );
        assert_eq!(stats.evictions, 8);
        assert_eq!(stats.overcommits, 0);
    }

    #[test]
    fn pinned_pages_are_never_evicted() {
        let pool = small_pool(2);
        let held = pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap();
        // Fill well past the budget while the pin is held.
        for i in 1..10 {
            drop(pool.pin_with(key(1, i), || Ok(test_page(i, 256))).unwrap());
        }
        // The pinned page is still resident: pinning again is a hit.
        let hits_before = pool.stats().hits;
        drop(
            pool.pin_with(key(1, 0), || panic!("pinned page was evicted"))
                .unwrap(),
        );
        assert_eq!(pool.stats().hits, hits_before + 1);
        drop(held);
    }

    #[test]
    fn all_pinned_overcommits_instead_of_deadlocking() {
        let pool = small_pool(2);
        let _a = pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap();
        let _b = pool.pin_with(key(1, 1), || Ok(test_page(1, 256))).unwrap();
        let _c = pool.pin_with(key(1, 2), || Ok(test_page(2, 256))).unwrap();
        let stats = pool.stats();
        assert!(stats.resident_bytes > 2 * 256);
        assert!(stats.overcommits >= 1);
    }

    #[test]
    fn second_chance_prefers_unreferenced_frames() {
        let pool = small_pool(2);
        drop(pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap());
        drop(pool.pin_with(key(1, 1), || Ok(test_page(1, 256))).unwrap());
        // Admitting page 2 evicts one frame and clears the survivor's
        // reference bit. Resident now: page 2 (referenced, just admitted)
        // and one old page (unreferenced).
        drop(pool.pin_with(key(1, 2), || Ok(test_page(2, 256))).unwrap());
        // Admitting page 3 must take the unreferenced old page and give
        // the freshly referenced page 2 its second chance.
        drop(pool.pin_with(key(1, 3), || Ok(test_page(3, 256))).unwrap());
        let hits_before = pool.stats().hits;
        drop(
            pool.pin_with(key(1, 2), || panic!("referenced page was evicted"))
                .unwrap(),
        );
        assert_eq!(pool.stats().hits, hits_before + 1, "page 2 was evicted");
    }

    #[test]
    fn invalidate_drops_unpinned_skips_pinned() {
        let pool = small_pool(4);
        let held = pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap();
        pool.invalidate(key(1, 0));
        // Pinned: still resident.
        assert_eq!(pool.stats().resident_bytes, 256);
        drop(held);
        pool.invalidate(key(1, 0));
        assert_eq!(pool.stats().resident_bytes, 0);
        // Re-pin runs the loader again.
        drop(pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap());
        assert_eq!(pool.stats().misses, 2);
    }

    #[test]
    fn metrics_gauges_track_residency() {
        let metrics = Arc::new(MetricsRegistry::new());
        let pool = Arc::new(BufferPool::with_metrics(
            PoolConfig {
                budget_bytes: 4 * 256,
                page_size: 256,
            },
            Some(Arc::clone(&metrics)),
        ));
        let pinned = pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap();
        assert_eq!(metrics.gauge(names::POOL_RESIDENT_BYTES), Some(256.0));
        assert_eq!(metrics.gauge(names::POOL_PINNED), Some(1.0));
        drop(pinned);
        assert_eq!(metrics.gauge(names::POOL_PINNED), Some(0.0));
    }

    #[test]
    fn metrics_counters_mirror_pool_stats() {
        let metrics = Arc::new(MetricsRegistry::new());
        let pool = Arc::new(BufferPool::with_metrics(
            PoolConfig {
                budget_bytes: 2 * 256,
                page_size: 256,
            },
            Some(Arc::clone(&metrics)),
        ));
        // Fill the 2-frame budget, then admit more to force evictions.
        for no in 0..4u32 {
            drop(
                pool.pin_with(key(1, no), || Ok(test_page(no, 256)))
                    .unwrap(),
            );
        }
        drop(pool.pin_with(key(1, 0), || Ok(test_page(0, 256))).unwrap());
        let stats = pool.stats();
        assert!(stats.evictions > 0);
        assert_eq!(metrics.counter(names::POOL_HIT), stats.hits);
        assert_eq!(metrics.counter(names::POOL_MISS), stats.misses);
        assert_eq!(metrics.counter(names::POOL_EVICTIONS), stats.evictions);
        assert_eq!(metrics.counter(names::POOL_OVERCOMMITS), stats.overcommits);
    }
}
