//! Filesystem seam for the durable knowledge store.
//!
//! Everything the journal and snapshot machinery does to disk goes
//! through the [`StoreFs`] trait, so the same code can run against the
//! real filesystem ([`RealFs`]), an in-memory filesystem with an explicit
//! crash/durability model ([`MemFs`]), or either of those wrapped in a
//! deterministic fault injector ([`FaultyFs`]).
//!
//! [`FaultyFs`] mirrors `genedit_llm::fault`: its schedule is a pure
//! function of `(seed, operation counter)`, independent of operation
//! content, so two runs with the same seed inject byte-identical faults.
//! It models the storage failure modes the recovery path must survive —
//! short writes that error after persisting a prefix, torn writes that
//! silently truncate at an arbitrary byte offset, single-bit flips,
//! failed fsyncs, failed renames, and whole-process crash points.

use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// The filesystem operations the durable store needs. All methods are
/// `&self`; implementations handle their own locking so a store and its
/// tests can share one filesystem through an `Arc`.
pub trait StoreFs: Send + Sync {
    /// Read the whole file. Missing files are an `io::ErrorKind::NotFound`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Create-or-truncate the file and write `data` in full.
    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append `data` to the file, creating it if missing.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Force file contents to durable storage.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Remove the file. Missing files are an error.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Whether the path currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// Current length of the file in bytes.
    fn len(&self, path: &Path) -> io::Result<u64>;
    /// Truncate the file to `len` bytes (no-op if already shorter).
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;

    /// Read exactly `len` bytes starting at `offset`. Reads that run past
    /// the end of the file are an `io::ErrorKind::UnexpectedEof`. The
    /// default implementation slices a whole-file [`StoreFs::read`];
    /// backends override it with positioned I/O.
    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let data = self.read(path)?;
        let start = offset as usize;
        let end = start.saturating_add(len);
        if end > data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "read_at {}..{} past end of {} ({} bytes)",
                    start,
                    end,
                    path.display(),
                    data.len()
                ),
            ));
        }
        Ok(data[start..end].to_vec())
    }

    /// Write `data` at `offset`, extending the file with zeros if the
    /// offset is past the current end. Creates the file if missing. The
    /// default implementation rewrites the whole file; backends override
    /// it with positioned I/O.
    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut contents = if self.exists(path) {
            self.read(path)?
        } else {
            Vec::new()
        };
        let start = offset as usize;
        let end = start + data.len();
        if contents.len() < end {
            contents.resize(end, 0);
        }
        contents[start..end].copy_from_slice(data);
        self.write_file(path, &contents)
    }
}

// ---------------------------------------------------------------------
// Real filesystem
// ---------------------------------------------------------------------

/// [`StoreFs`] backed by `std::fs`.
#[derive(Debug, Default)]
pub struct RealFs;

impl RealFs {
    /// The real-filesystem backend.
    pub fn new() -> RealFs {
        RealFs
    }
}

impl StoreFs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(data)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::OpenOptions::new().write(true).open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)?;
        file.sync_all()
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut file = fs::File::open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom};
        // Positioned write into an existing (or new) file: never truncate.
        let mut file = fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)?;
        file.seek(SeekFrom::Start(offset))?;
        file.write_all(data)
    }
}

// ---------------------------------------------------------------------
// In-memory filesystem with a crash/durability model
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Default)]
struct MemFile {
    /// Current contents — what a reader sees.
    data: Vec<u8>,
    /// Contents as of the last fsync — what survives a crash.
    durable: Vec<u8>,
}

/// In-memory [`StoreFs`] that distinguishes written from durable bytes:
/// writes land in a volatile view, `fsync` promotes the volatile view to
/// durable, and [`MemFs::crash`] discards everything volatile — exactly
/// the window a real power loss erases. Renames and truncates are treated
/// as durable metadata operations (the common journaling-filesystem
/// behaviour the snapshot rename protocol relies on).
#[derive(Default)]
pub struct MemFs {
    files: Mutex<BTreeMap<PathBuf, MemFile>>,
}

impl MemFs {
    /// An empty in-memory filesystem.
    pub fn new() -> MemFs {
        MemFs::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<PathBuf, MemFile>> {
        self.files
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Simulate a power loss: every file reverts to its last-fsynced
    /// contents. Files that were never fsynced revert to empty.
    pub fn crash(&self) {
        for file in self.lock().values_mut() {
            file.data = file.durable.clone();
        }
    }

    /// Paths currently present, for test assertions.
    pub fn paths(&self) -> Vec<PathBuf> {
        self.lock().keys().cloned().collect()
    }

    fn not_found(path: &Path) -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, format!("{}", path.display()))
    }
}

impl StoreFs for MemFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.lock()
            .get(path)
            .map(|f| f.data.clone())
            .ok_or_else(|| Self::not_found(path))
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.lock().entry(path.to_path_buf()).or_default().data = data.to_vec();
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.lock()
            .entry(path.to_path_buf())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.get_mut(path).ok_or_else(|| Self::not_found(path))?;
        file.durable = file.data.clone();
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.remove(from).ok_or_else(|| Self::not_found(from))?;
        files.insert(to.to_path_buf(), file);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| Self::not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().contains_key(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.lock()
            .get(path)
            .map(|f| f.data.len() as u64)
            .ok_or_else(|| Self::not_found(path))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.get_mut(path).ok_or_else(|| Self::not_found(path))?;
        let len = len as usize;
        if file.data.len() > len {
            file.data.truncate(len);
        }
        if file.durable.len() > len {
            file.durable.truncate(len);
        }
        Ok(())
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let files = self.lock();
        let file = files.get(path).ok_or_else(|| Self::not_found(path))?;
        let start = offset as usize;
        let end = start.saturating_add(len);
        if end > file.data.len() {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("read_at past end of {}", path.display()),
            ));
        }
        Ok(file.data[start..end].to_vec())
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        let mut files = self.lock();
        let file = files.entry(path.to_path_buf()).or_default();
        let start = offset as usize;
        let end = start + data.len();
        // Volatile until the next fsync, like append/write_file.
        if file.data.len() < end {
            file.data.resize(end, 0);
        }
        file.data[start..end].copy_from_slice(data);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

/// Per-category injection rates, each an independent probability in
/// `[0, 1]` evaluated per operation, plus an optional hard crash point.
/// The first matching fault wins for an operation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IoFaultConfig {
    /// `append` persists a seeded prefix of the bytes, then errors.
    pub short_write: f64,
    /// `append` silently persists only a seeded prefix — the on-disk tail
    /// is truncated at an arbitrary byte offset with no error reported.
    pub torn_write: f64,
    /// `append` flips one seeded bit in the bytes before persisting them.
    pub bit_flip: f64,
    /// `fsync` fails without promoting anything to durable storage.
    pub fsync_fail: f64,
    /// `rename` fails, leaving both paths untouched.
    pub rename_fail: f64,
    /// After this many operations, every further operation fails with a
    /// simulated crash — the driver then crashes the backing [`MemFs`]
    /// and re-opens the store to exercise recovery.
    pub crash_after_ops: Option<u64>,
}

impl IoFaultConfig {
    /// Every probabilistic category at the same rate, no crash point.
    pub fn uniform(rate: f64) -> IoFaultConfig {
        IoFaultConfig {
            short_write: rate,
            torn_write: rate,
            bit_flip: rate,
            fsync_fail: rate,
            rename_fail: rate,
            crash_after_ops: None,
        }
    }

    /// Only a deterministic crash point, no probabilistic faults.
    pub fn crash_at(ops: u64) -> IoFaultConfig {
        IoFaultConfig {
            crash_after_ops: Some(ops),
            ..IoFaultConfig::default()
        }
    }
}

/// Counts of injected faults, by category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoFaultLog {
    /// Operations that passed through the wrapper (faulted or not).
    pub ops: u64,
    /// Writes cut short mid-buffer.
    pub short_writes: u64,
    /// Appends torn at a frame-unaligned offset.
    pub torn_writes: u64,
    /// Single-bit payload corruptions.
    pub bit_flips: u64,
    /// fsync calls failed artificially.
    pub fsync_failures: u64,
    /// Renames failed artificially.
    pub rename_failures: u64,
    /// Operations refused because the crash point had been reached.
    pub refused_after_crash: u64,
}

impl IoFaultLog {
    /// Total injected faults (excluding post-crash refusals).
    pub fn total(&self) -> u64 {
        self.short_writes
            + self.torn_writes
            + self.bit_flips
            + self.fsync_failures
            + self.rename_failures
    }
}

/// Wraps a [`StoreFs`] and injects storage faults on a deterministic
/// per-seed schedule — the storage-layer sibling of
/// `genedit_llm::fault::FaultInjector`.
pub struct FaultyFs {
    inner: Arc<dyn StoreFs>,
    config: IoFaultConfig,
    seed: u64,
    counter: Mutex<u64>,
    log: Mutex<IoFaultLog>,
    crashed: AtomicBool,
}

impl FaultyFs {
    /// Wrap `inner` with a fault schedule derived purely from `seed`.
    pub fn new(inner: Arc<dyn StoreFs>, config: IoFaultConfig, seed: u64) -> FaultyFs {
        FaultyFs {
            inner,
            config,
            seed,
            counter: Mutex::new(0),
            log: Mutex::new(IoFaultLog::default()),
            crashed: AtomicBool::new(false),
        }
    }

    /// Snapshot of the injected-fault counters.
    pub fn log(&self) -> IoFaultLog {
        *self.lock_log()
    }

    /// Whether the crash point has been reached.
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn lock_log(&self) -> MutexGuard<'_, IoFaultLog> {
        self.log
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Advance the operation counter; `Err` once the crash point is hit.
    fn next_op(&self) -> io::Result<u64> {
        let n = {
            let mut counter = self
                .counter
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *counter += 1;
            *counter
        };
        self.lock_log().ops += 1;
        let past_crash_point = self
            .config
            .crash_after_ops
            .map(|limit| n > limit)
            .unwrap_or(false);
        if past_crash_point || self.crashed() {
            self.crashed.store(true, Ordering::SeqCst);
            self.lock_log().refused_after_crash += 1;
            return Err(io::Error::other(format!("simulated crash at op #{n}")));
        }
        Ok(n)
    }

    /// Probability draw for slot `n`, category `category` — a pure
    /// function of (seed, n, category), independent of operation content.
    fn roll(&self, n: u64, category: &str) -> f64 {
        hash01(&["iofault", category, &n.to_string()], self.seed)
    }

    /// Seeded cut point in `1..len` for prefix-persisting faults.
    fn cut(&self, n: u64, len: usize) -> usize {
        if len <= 1 {
            return 0;
        }
        1 + (hash_u64(&["iocut", &n.to_string()], self.seed) as usize) % (len - 1)
    }
}

impl StoreFs for FaultyFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.next_op()?;
        self.inner.read(path)
    }

    fn write_file(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.next_op()?;
        self.inner.write_file(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let n = self.next_op()?;
        if self.roll(n, "short-write") < self.config.short_write {
            self.lock_log().short_writes += 1;
            let cut = self.cut(n, data.len());
            self.inner.append(path, &data[..cut])?;
            return Err(io::Error::other(format!(
                "injected short write #{n}: {cut}/{} bytes",
                data.len()
            )));
        }
        if self.roll(n, "torn-write") < self.config.torn_write {
            self.lock_log().torn_writes += 1;
            let cut = self.cut(n, data.len());
            return self.inner.append(path, &data[..cut]);
        }
        if self.roll(n, "bit-flip") < self.config.bit_flip && !data.is_empty() {
            self.lock_log().bit_flips += 1;
            let mut corrupted = data.to_vec();
            let byte = (hash_u64(&["ioflip", &n.to_string()], self.seed) as usize) % data.len();
            let bit = (hash_u64(&["iobit", &n.to_string()], self.seed) % 8) as u8;
            corrupted[byte] ^= 1 << bit;
            return self.inner.append(path, &corrupted);
        }
        self.inner.append(path, data)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        let n = self.next_op()?;
        if self.roll(n, "fsync-fail") < self.config.fsync_fail {
            self.lock_log().fsync_failures += 1;
            return Err(io::Error::other(format!("injected fsync failure #{n}")));
        }
        self.inner.fsync(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let n = self.next_op()?;
        if self.roll(n, "rename-fail") < self.config.rename_fail {
            self.lock_log().rename_failures += 1;
            return Err(io::Error::other(format!("injected rename failure #{n}")));
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.next_op()?;
        self.inner.remove(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.next_op()?;
        self.inner.len(path)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.next_op()?;
        self.inner.truncate(path, len)
    }

    fn read_at(&self, path: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        self.next_op()?;
        self.inner.read_at(path, offset, len)
    }

    fn write_at(&self, path: &Path, offset: u64, data: &[u8]) -> io::Result<()> {
        let n = self.next_op()?;
        if self.roll(n, "short-write") < self.config.short_write {
            self.lock_log().short_writes += 1;
            let cut = self.cut(n, data.len());
            self.inner.write_at(path, offset, &data[..cut])?;
            return Err(io::Error::other(format!(
                "injected short page write #{n}: {cut}/{} bytes",
                data.len()
            )));
        }
        if self.roll(n, "torn-write") < self.config.torn_write {
            // A torn page: only a prefix of the page image lands, silently.
            self.lock_log().torn_writes += 1;
            let cut = self.cut(n, data.len());
            return self.inner.write_at(path, offset, &data[..cut]);
        }
        if self.roll(n, "bit-flip") < self.config.bit_flip && !data.is_empty() {
            self.lock_log().bit_flips += 1;
            let mut corrupted = data.to_vec();
            let byte = (hash_u64(&["ioflip", &n.to_string()], self.seed) as usize) % data.len();
            let bit = (hash_u64(&["iobit", &n.to_string()], self.seed) % 8) as u8;
            corrupted[byte] ^= 1 << bit;
            return self.inner.write_at(path, offset, &corrupted);
        }
        self.inner.write_at(path, offset, data)
    }
}

// ---------------------------------------------------------------------
// Hashing (mirrors genedit_llm::oracle::hash01 — this crate sits below
// genedit-llm in the dependency graph, so the few lines are duplicated
// rather than inverting the dependency)
// ---------------------------------------------------------------------

/// Deterministic draw in `[0, 1)` from string parts and a seed.
fn hash01(parts: &[&str], seed: u64) -> f64 {
    (hash_u64(parts, seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// FNV-1a over the parts and seed, finished with a splitmix64 mixer.
fn hash_u64(parts: &[&str], seed: u64) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for p in parts {
        for &b in p.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    let mut z = hash.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn memfs_round_trips_and_tracks_durability() {
        let fs = MemFs::new();
        fs.append(&p("a"), b"hello").unwrap();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hello");
        // Not yet fsynced: a crash loses it.
        fs.crash();
        assert_eq!(fs.read(&p("a")).unwrap(), b"");
        fs.append(&p("a"), b"hi").unwrap();
        fs.fsync(&p("a")).unwrap();
        fs.append(&p("a"), b"-volatile").unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("a")).unwrap(), b"hi");
    }

    #[test]
    fn memfs_rename_truncate_remove() {
        let fs = MemFs::new();
        fs.write_file(&p("x"), b"abcdef").unwrap();
        fs.truncate(&p("x"), 3).unwrap();
        assert_eq!(fs.read(&p("x")).unwrap(), b"abc");
        fs.rename(&p("x"), &p("y")).unwrap();
        assert!(!fs.exists(&p("x")));
        assert_eq!(fs.len(&p("y")).unwrap(), 3);
        fs.remove(&p("y")).unwrap();
        assert!(fs.read(&p("y")).is_err());
    }

    #[test]
    fn faulty_fs_same_seed_same_schedule() {
        let run = |seed: u64| -> (Vec<bool>, IoFaultLog) {
            let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
            let faulty = FaultyFs::new(mem, IoFaultConfig::uniform(0.3), seed);
            let outcomes = (0..100)
                .map(|i| faulty.append(&p("f"), format!("rec{i}").as_bytes()).is_ok())
                .collect();
            (outcomes, faulty.log())
        };
        let (a, log_a) = run(7);
        let (b, log_b) = run(7);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert!(log_a.total() > 0, "30% uniform must inject something");
        let (c, _) = run(8);
        assert_ne!(a, c);
    }

    #[test]
    fn crash_point_refuses_every_later_op() {
        let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let faulty = FaultyFs::new(Arc::clone(&mem), IoFaultConfig::crash_at(3), 1);
        assert!(faulty.append(&p("f"), b"1").is_ok());
        assert!(faulty.append(&p("f"), b"2").is_ok());
        assert!(faulty.fsync(&p("f")).is_ok());
        assert!(faulty.append(&p("f"), b"3").is_err());
        assert!(faulty.fsync(&p("f")).is_err());
        assert!(faulty.crashed());
        // The durable prefix survives on the shared backing fs.
        mem.as_ref().fsync(&p("f")).ok();
        assert_eq!(mem.read(&p("f")).unwrap(), b"12");
    }

    #[test]
    fn short_write_persists_a_strict_prefix() {
        let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let config = IoFaultConfig {
            short_write: 1.0,
            ..IoFaultConfig::default()
        };
        let faulty = FaultyFs::new(Arc::clone(&mem), config, 11);
        let data = b"0123456789abcdef";
        assert!(faulty.append(&p("f"), data).is_err());
        let on_disk = mem.read(&p("f")).unwrap();
        assert!(!on_disk.is_empty() && on_disk.len() < data.len());
        assert_eq!(&data[..on_disk.len()], &on_disk[..]);
        assert_eq!(faulty.log().short_writes, 1);
    }

    #[test]
    fn memfs_positioned_io_round_trips_and_stays_volatile() {
        let fs = MemFs::new();
        fs.write_at(&p("pages"), 8, b"PAGE").unwrap();
        assert_eq!(fs.len(&p("pages")).unwrap(), 12);
        assert_eq!(fs.read_at(&p("pages"), 0, 8).unwrap(), vec![0u8; 8]);
        assert_eq!(fs.read_at(&p("pages"), 8, 4).unwrap(), b"PAGE");
        assert!(fs.read_at(&p("pages"), 10, 4).is_err());
        // write_at is volatile until fsync, like append.
        fs.crash();
        assert!(fs.read(&p("pages")).unwrap().is_empty());
        fs.write_at(&p("pages"), 0, b"durable!").unwrap();
        fs.fsync(&p("pages")).unwrap();
        fs.write_at(&p("pages"), 0, b"volatile").unwrap();
        fs.crash();
        assert_eq!(fs.read(&p("pages")).unwrap(), b"durable!");
    }

    #[test]
    fn faulty_write_at_tears_pages_deterministically() {
        let run = |seed: u64| {
            let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
            let config = IoFaultConfig {
                torn_write: 1.0,
                ..IoFaultConfig::default()
            };
            let faulty = FaultyFs::new(Arc::clone(&mem), config, seed);
            faulty.write_at(&p("pages"), 0, &[0xAA; 64]).unwrap();
            mem.read(&p("pages")).unwrap()
        };
        let a = run(3);
        assert!(!a.is_empty() && a.len() < 64, "page must be torn");
        assert!(a.iter().all(|&b| b == 0xAA));
        assert_eq!(a, run(3), "same seed, same tear point");
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
        let config = IoFaultConfig {
            bit_flip: 1.0,
            ..IoFaultConfig::default()
        };
        let faulty = FaultyFs::new(Arc::clone(&mem), config, 5);
        let data = vec![0u8; 64];
        faulty.append(&p("f"), &data).unwrap();
        let on_disk = mem.read(&p("f")).unwrap();
        assert_eq!(on_disk.len(), data.len());
        let flipped: u32 = on_disk
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
        assert_eq!(faulty.log().bit_flips, 1);
    }
}
