//! # genedit-knowledge — the company-specific knowledge set
//!
//! Implements the paper's knowledge view (§2.1, §3.2): decomposed SQL
//! examples, natural-language instructions, value-augmented schema
//! elements, user intents, provenance, and the audit/checkpoint machinery
//! behind the knowledge-set library (§4.2.2), plus the staging area used
//! while SMEs iterate on feedback (§4.2.1).
//!
//! ```
//! use genedit_knowledge::{decompose_sql, FragmentKind};
//!
//! let frags = decompose_sql(
//!     "WITH F AS (SELECT ORG, SUM(REV) AS R FROM FIN GROUP BY ORG) \
//!      SELECT ORG FROM F WHERE R > 10",
//! ).unwrap();
//! assert!(frags.iter().any(|f| f.kind == FragmentKind::CteDefinition));
//! assert!(frags.iter().any(|f| f.pseudo_sql() == "... WHERE R > 10 ..."));
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod decompose;
pub mod fs;
pub mod journal;
pub mod mine;
pub mod page;
pub mod persist;
pub mod pool;
pub mod preprocess;
pub mod recovery;
pub mod refresh;
pub mod set;
pub mod staging;
pub mod store;
pub mod tenants;
pub mod types;

pub use decompose::{decompose, decompose_sql, split_conjuncts, to_cte_normal_form};
pub use fs::{FaultyFs, IoFaultConfig, IoFaultLog, MemFs, RealFs, StoreFs};
pub use journal::{
    crc32, encode_record, scan, FsyncPolicy, Journal, JournalError, JournalRecord, ScanEnd,
    ScanOutcome,
};
pub use mine::{mine_intents, IntentProposal};
pub use page::{Page, PageError, PageKind, DEFAULT_PAGE_SIZE};
pub use persist::{from_json, load, load_with_limit, save, to_json, PersistError};
pub use pool::{BufferPool, PageKey, PinnedPage, PoolConfig, PoolStats};
pub use preprocess::{
    build_knowledge_set, build_knowledge_set_traced, describe_fragment, DomainDocument, Guideline,
    PreprocessConfig, QueryLogEntry, TermDefinition,
};
pub use recovery::{recover, RecoveryOutcome, RecoveryReport};
pub use refresh::{refresh_document, RefreshReport};
pub use set::{
    CheckpointInfo, Edit, EditOutcome, KnowledgeError, KnowledgeSet, KnowledgeStats, LoggedEdit,
};
pub use staging::{CommitError, StagedEdit, StagingArea};
pub use store::{DurableKnowledgeStore, StoreConfig, StoreError};
pub use tenants::{
    PageDirectory, StoredVectors, TenantKnowledgeStore, TenantSnapshot, TenantStoreConfig,
    TenantStoreError,
};
pub use types::{
    Example, ExampleId, FragmentKind, Instruction, InstructionId, Intent, Provenance,
    RetrievalStage, SchemaElement, SourceRef, SqlFragment,
};
