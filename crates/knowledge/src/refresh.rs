//! Provenance-driven maintenance (§2.1).
//!
//! "An important aspect of maintenance is keeping track of provenance in
//! the view to update it as documents change." [`refresh_document`]
//! replaces every knowledge element whose provenance points at a changed
//! document with elements regenerated from the new version — through the
//! normal edit path, so the change is logged, auditable, and revertible
//! like any other.

use crate::preprocess::DomainDocument;
use crate::set::{Edit, KnowledgeError, KnowledgeSet};
use crate::types::{FragmentKind, SourceRef, SqlFragment};

/// Summary of one document refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshReport {
    /// Examples removed because their provenance pointed at the document.
    pub removed_examples: usize,
    /// Instructions removed for the same reason.
    pub removed_instructions: usize,
    /// Examples regenerated from the new document version.
    pub inserted_examples: usize,
    /// Instructions regenerated from the new document version.
    pub inserted_instructions: usize,
}

/// Replace all knowledge derived from `doc.doc_id` with the content of the
/// supplied (new) document version. A checkpoint labeled with the document
/// id is recorded before the refresh so it can be reverted as a unit.
pub fn refresh_document(
    ks: &mut KnowledgeSet,
    doc: &DomainDocument,
) -> Result<(u64, RefreshReport), KnowledgeError> {
    let checkpoint = ks.checkpoint(format!("refresh doc {}", doc.doc_id));
    let mut report = RefreshReport {
        removed_examples: 0,
        removed_instructions: 0,
        inserted_examples: 0,
        inserted_instructions: 0,
    };

    // Remove everything previously derived from this document.
    let stale_instructions: Vec<_> = ks
        .instructions()
        .iter()
        .filter(|i| matches!(i.provenance.source, SourceRef::Document { doc_id, .. } if doc_id == doc.doc_id))
        .map(|i| i.id)
        .collect();
    for id in stale_instructions {
        ks.apply(Edit::DeleteInstruction { id })?;
        report.removed_instructions += 1;
    }
    let stale_examples: Vec<_> = ks
        .examples()
        .iter()
        .filter(|e| matches!(e.provenance.source, SourceRef::Document { doc_id, .. } if doc_id == doc.doc_id))
        .map(|e| e.id)
        .collect();
    for id in stale_examples {
        ks.apply(Edit::DeleteExample { id })?;
        report.removed_examples += 1;
    }

    // Re-ingest the new version (mirrors the pre-processing rules).
    for term in &doc.terms {
        ks.apply(Edit::InsertInstruction {
            intent: term.intent.clone(),
            text: format!("{} means: {}", term.term, term.meaning),
            sql_hint: term.sql.clone(),
            term: Some(term.term.clone()),
            source: SourceRef::Document {
                doc_id: doc.doc_id,
                section: "terms".into(),
            },
        })?;
        report.inserted_instructions += 1;
        if let Some(sql) = &term.sql {
            ks.apply(Edit::InsertExample {
                intent: term.intent.clone(),
                description: format!("{} ({})", term.term, term.meaning),
                fragment: SqlFragment::new(FragmentKind::TermDefinition, sql.clone(), "main"),
                term: Some(term.term.clone()),
                source: SourceRef::Document {
                    doc_id: doc.doc_id,
                    section: "terms".into(),
                },
            })?;
            report.inserted_examples += 1;
        }
    }
    for g in &doc.guidelines {
        ks.apply(Edit::InsertInstruction {
            intent: g.intent.clone(),
            text: g.text.clone(),
            sql_hint: g.sql_hint.clone(),
            term: None,
            source: SourceRef::Document {
                doc_id: doc.doc_id,
                section: g.section.clone(),
            },
        })?;
        report.inserted_instructions += 1;
    }
    Ok((checkpoint, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{Guideline, TermDefinition};

    fn doc_v1() -> DomainDocument {
        DomainDocument {
            doc_id: 9,
            title: "defs v1".into(),
            terms: vec![TermDefinition {
                term: "RPV".into(),
                meaning: "revenue per viewer".into(),
                sql: Some("R / NULLIF(V, 0)".into()),
                intent: None,
            }],
            guidelines: vec![Guideline {
                text: "old guidance".into(),
                sql_hint: None,
                intent: None,
                section: "s".into(),
            }],
        }
    }

    fn doc_v2() -> DomainDocument {
        DomainDocument {
            doc_id: 9,
            title: "defs v2".into(),
            terms: vec![TermDefinition {
                term: "RPV".into(),
                // The definition changed: now net revenue.
                meaning: "net revenue per unique viewer".into(),
                sql: Some("(R - REFUNDS) / NULLIF(UV, 0)".into()),
                intent: None,
            }],
            guidelines: vec![],
        }
    }

    fn seeded() -> KnowledgeSet {
        let mut ks = KnowledgeSet::new();
        // Unrelated manual knowledge that must survive refreshes.
        ks.apply(Edit::InsertInstruction {
            intent: None,
            text: "manual note".into(),
            sql_hint: None,
            term: None,
            source: SourceRef::Manual,
        })
        .unwrap();
        let (_, r) = refresh_document(&mut ks, &doc_v1()).unwrap();
        assert_eq!(r.inserted_instructions, 2);
        assert_eq!(r.inserted_examples, 1);
        ks
    }

    #[test]
    fn refresh_replaces_only_that_documents_knowledge() {
        let mut ks = seeded();
        let before_manual = ks
            .instructions()
            .iter()
            .filter(|i| i.provenance.source == SourceRef::Manual)
            .count();
        let (_, report) = refresh_document(&mut ks, &doc_v2()).unwrap();
        assert_eq!(report.removed_instructions, 2);
        assert_eq!(report.removed_examples, 1);
        assert_eq!(report.inserted_instructions, 1); // v2 dropped the guideline
        assert_eq!(report.inserted_examples, 1);
        // The new definition is in, the old one gone.
        assert!(ks
            .instructions()
            .iter()
            .any(|i| i.text.contains("net revenue")));
        assert!(!ks
            .instructions()
            .iter()
            .any(|i| i.text.contains("old guidance")));
        assert!(ks
            .examples()
            .iter()
            .any(|e| e.fragment.sql.contains("REFUNDS")));
        // Manual knowledge untouched.
        let after_manual = ks
            .instructions()
            .iter()
            .filter(|i| i.provenance.source == SourceRef::Manual)
            .count();
        assert_eq!(before_manual, after_manual);
    }

    #[test]
    fn refresh_is_revertible_as_a_unit() {
        let mut ks = seeded();
        let snapshot = ks.clone();
        let (checkpoint, _) = refresh_document(&mut ks, &doc_v2()).unwrap();
        assert!(!ks.content_eq(&snapshot));
        ks.revert_to(checkpoint).unwrap();
        assert!(ks.content_eq(&snapshot));
    }

    #[test]
    fn refresh_of_unknown_doc_only_inserts() {
        let mut ks = KnowledgeSet::new();
        let (_, report) = refresh_document(&mut ks, &doc_v2()).unwrap();
        assert_eq!(report.removed_examples + report.removed_instructions, 0);
        assert_eq!(report.inserted_instructions, 1);
    }
}
