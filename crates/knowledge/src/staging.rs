//! Staged edits (§4.2.1).
//!
//! "Staging … means accepting the edit and taking it to an environment
//! that mimics the deployed system for testing." A [`StagingArea`] holds
//! accepted-but-unmerged edits; [`StagingArea::materialize`] produces the
//! knowledge set *as it would look* with the staged edits applied — used
//! for regeneration during feedback iteration — without touching the
//! deployed set. [`StagingArea::commit`] merges into the deployed set
//! (after regression testing and approval, which the core crate drives).

use crate::set::{Edit, KnowledgeError, KnowledgeSet};
use std::fmt;

/// Why a [`StagingArea::commit`] failed.
#[derive(Debug)]
pub enum CommitError {
    /// A staged edit refused to apply; the merge was rolled back to the
    /// pre-merge checkpoint and the deployed set is unchanged.
    Apply(KnowledgeError),
    /// A staged edit refused to apply *and* the rollback to the pre-merge
    /// checkpoint failed too — the deployed set may hold a partial merge
    /// and should be restored from its audit log or a durable store.
    RollbackFailed {
        /// The error that aborted the merge.
        apply: KnowledgeError,
        /// The error that then broke the rollback.
        rollback: KnowledgeError,
    },
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Apply(e) => write!(f, "staged edit no longer applies: {e}"),
            CommitError::RollbackFailed { apply, rollback } => write!(
                f,
                "staged edit no longer applies ({apply}) and rollback failed ({rollback}); \
                 the deployed set may be partially merged"
            ),
        }
    }
}

impl std::error::Error for CommitError {}

/// A staged edit with its stable handle.
#[derive(Debug, Clone, PartialEq)]
pub struct StagedEdit {
    /// Stable handle for [`StagingArea::unstage`].
    pub handle: u64,
    /// The staged edit.
    pub edit: Edit,
}

/// Accumulates edits an SME has accepted from the recommendations panel.
#[derive(Debug, Clone, Default)]
pub struct StagingArea {
    next_handle: u64,
    staged: Vec<StagedEdit>,
}

impl StagingArea {
    /// An empty staging area.
    pub fn new() -> StagingArea {
        StagingArea::default()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Number of staged edits.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// The staged edits in staging order.
    pub fn staged(&self) -> &[StagedEdit] {
        &self.staged
    }

    /// Stage an edit; returns a handle usable with [`StagingArea::unstage`].
    pub fn stage(&mut self, edit: Edit) -> u64 {
        let handle = self.next_handle;
        self.next_handle += 1;
        self.staged.push(StagedEdit { handle, edit });
        handle
    }

    /// Remove a staged edit. Returns it if present.
    pub fn unstage(&mut self, handle: u64) -> Option<Edit> {
        let pos = self.staged.iter().position(|s| s.handle == handle)?;
        Some(self.staged.remove(pos).edit)
    }

    /// Drop every staged edit.
    pub fn clear(&mut self) {
        self.staged.clear();
    }

    /// Build the knowledge set as it would look with staged edits applied.
    /// `base` is untouched. An edit that no longer applies (e.g. its
    /// target was deleted in the meantime) surfaces as an error so the SME
    /// can unstage it.
    pub fn materialize(&self, base: &KnowledgeSet) -> Result<KnowledgeSet, KnowledgeError> {
        let mut staged = base.clone();
        for s in &self.staged {
            staged.apply(s.edit.clone())?;
        }
        Ok(staged)
    }

    /// Merge the staged edits into the deployed set, consuming the area.
    /// A checkpoint labeled `label` is recorded *before* the merge so the
    /// merge can be reverted as a unit.
    pub fn commit(self, base: &mut KnowledgeSet, label: &str) -> Result<u64, CommitError> {
        let checkpoint = base.checkpoint(label);
        for s in self.staged {
            if let Err(apply) = base.apply(s.edit) {
                // Roll the whole merge back; partial merges would leave the
                // deployed set inconsistent with what was regression-tested.
                return Err(match base.revert_to(checkpoint) {
                    Ok(()) => CommitError::Apply(apply),
                    Err(rollback) => CommitError::RollbackFailed { apply, rollback },
                });
            }
        }
        Ok(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::EditOutcome;
    use crate::types::{FragmentKind, SourceRef, SqlFragment};

    fn insert_edit(desc: &str) -> Edit {
        Edit::InsertExample {
            intent: None,
            description: desc.into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
            term: None,
            source: SourceRef::Feedback { feedback_id: 1 },
        }
    }

    #[test]
    fn materialize_leaves_base_untouched() {
        let base = KnowledgeSet::new();
        let mut area = StagingArea::new();
        area.stage(insert_edit("a"));
        area.stage(insert_edit("b"));
        let staged = area.materialize(&base).unwrap();
        assert_eq!(staged.examples().len(), 2);
        assert_eq!(base.examples().len(), 0);
    }

    #[test]
    fn unstage_removes_one() {
        let mut area = StagingArea::new();
        let h1 = area.stage(insert_edit("a"));
        let _h2 = area.stage(insert_edit("b"));
        assert!(area.unstage(h1).is_some());
        assert!(area.unstage(h1).is_none());
        assert_eq!(area.len(), 1);
    }

    #[test]
    fn commit_merges_and_checkpoints() {
        let mut base = KnowledgeSet::new();
        let mut area = StagingArea::new();
        area.stage(insert_edit("a"));
        let cp = area.commit(&mut base, "merge feedback 1").unwrap();
        assert_eq!(base.examples().len(), 1);
        // The checkpoint captures the pre-merge state.
        base.revert_to(cp).unwrap();
        assert_eq!(base.examples().len(), 0);
    }

    #[test]
    fn commit_is_atomic_on_failure() {
        let mut base = KnowledgeSet::new();
        let id = match base.apply(insert_edit("victim")).unwrap() {
            EditOutcome::InsertedExample(id) => id,
            _ => unreachable!(),
        };
        let mut area = StagingArea::new();
        area.stage(insert_edit("ok")); // would succeed
        area.stage(Edit::DeleteExample { id });
        area.stage(Edit::DeleteExample { id }); // second delete fails
        let before = base.clone();
        match area.commit(&mut base, "doomed") {
            Err(CommitError::Apply(_)) => {}
            other => panic!("expected CommitError::Apply, got {other:?}"),
        }
        assert!(base.content_eq(&before));
    }

    #[test]
    fn stale_staged_edit_errors_in_materialize() {
        let mut base = KnowledgeSet::new();
        let id = match base.apply(insert_edit("victim")).unwrap() {
            EditOutcome::InsertedExample(id) => id,
            _ => unreachable!(),
        };
        let mut area = StagingArea::new();
        area.stage(Edit::DeleteExample { id });
        base.apply(Edit::DeleteExample { id }).unwrap(); // deleted underneath
        assert!(area.materialize(&base).is_err());
    }
}
