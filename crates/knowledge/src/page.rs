//! Fixed-size checksummed pages with slotted records.
//!
//! The tenant paging layer stores knowledge-set entries and vector data
//! in fixed-size pages (default [`DEFAULT_PAGE_SIZE`] bytes) so the
//! buffer pool can account for memory exactly and evict in O(1) units.
//! The layout is the classic slotted page:
//!
//! ```text
//! offset 0                                                page_size
//! ┌──────────┬──────────────────────┬───────┬──────────────────────┐
//! │ header   │ record 0 │ record 1 …│ free  │ … slot 1 │ slot 0    │
//! │ 32 bytes │ (grow upward →)      │ space │ (← grow downward)    │
//! └──────────┴──────────────────────┴───────┴──────────────────────┘
//! ```
//!
//! Header (32 bytes, little-endian):
//!
//! | bytes  | field      | meaning                                     |
//! |--------|------------|---------------------------------------------|
//! | 0–3    | magic      | `"GEPG"`                                    |
//! | 4–5    | version    | format version, currently 1                 |
//! | 6      | kind       | [`PageKind`] discriminant                   |
//! | 7      | (pad)      | zero                                        |
//! | 8–11   | page_no    | logical page number within its file         |
//! | 12–19  | epoch      | knowledge epoch the page was written at     |
//! | 20–21  | slot_count | number of live slots                        |
//! | 22–23  | free_off   | offset of the start of free space           |
//! | 24–27  | crc32      | CRC-32 of the page with this field zeroed   |
//! | 28–31  | (reserved) | zero                                        |
//!
//! Each slot is 4 bytes — record offset `u16` then record length `u16` —
//! which caps the page size at 64 KiB. The CRC covers the *entire* page
//! (free space included, so stale bytes can't alias as records), letting
//! [`Page::decode`] reject torn or bit-flipped pages after a crash; the
//! caller then rebuilds the page from the WAL, which remains the source
//! of truth.

use crate::journal::crc32;
use std::fmt;

/// Page magic bytes, `"GEPG"`.
pub const PAGE_MAGIC: [u8; 4] = *b"GEPG";
/// Current page-format version.
pub const PAGE_VERSION: u16 = 1;
/// Size of the fixed page header in bytes.
pub const PAGE_HEADER_BYTES: usize = 32;
/// Size of one slot-directory entry in bytes.
pub const SLOT_BYTES: usize = 4;
/// Default page size. Large enough for typical knowledge entries while
/// keeping cold-tenant page-in granular.
pub const DEFAULT_PAGE_SIZE: usize = 8192;
/// Maximum page size (slot offsets are `u16`).
pub const MAX_PAGE_SIZE: usize = 64 * 1024;
/// Minimum page size (header plus one slot plus one byte of payload).
pub const MIN_PAGE_SIZE: usize = 64;

const CRC_OFFSET: usize = 24;

/// What a page holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// The tenant's page directory (page 0 of every tenant file).
    Meta,
    /// Serialized knowledge-set entry records.
    Entry,
    /// Chunked embedding vector data.
    Vector,
}

impl PageKind {
    fn to_u8(self) -> u8 {
        match self {
            PageKind::Meta => 0,
            PageKind::Entry => 1,
            PageKind::Vector => 2,
        }
    }

    fn from_u8(raw: u8) -> Option<PageKind> {
        match raw {
            0 => Some(PageKind::Meta),
            1 => Some(PageKind::Entry),
            2 => Some(PageKind::Vector),
            _ => None,
        }
    }
}

/// Errors from page encode/decode and record insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The buffer is not a whole page of the expected size.
    WrongSize {
        /// Bytes received.
        got: usize,
        /// Bytes expected (the configured page size).
        expected: usize,
    },
    /// The magic bytes are not `"GEPG"`.
    BadMagic,
    /// The format version is unknown.
    BadVersion(u16),
    /// The page kind discriminant is unknown.
    BadKind(u8),
    /// The stored CRC does not match the page contents — a torn write,
    /// bit flip, or stale page. The caller must rebuild from the WAL.
    BadChecksum {
        /// CRC stored in the header.
        stored: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// A slot points outside the page or overlaps the header.
    CorruptSlot(u16),
    /// The record can never fit in a page of this size.
    RecordTooLarge {
        /// Record length in bytes.
        len: usize,
        /// Maximum payload a fresh page of this size can hold.
        capacity: usize,
    },
    /// The record does not fit in *this* page's remaining free space
    /// (a fresh page would hold it — start one).
    PageFull,
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::WrongSize { got, expected } => {
                write!(f, "page buffer is {got} bytes, expected {expected}")
            }
            PageError::BadMagic => write!(f, "bad page magic"),
            PageError::BadVersion(v) => write!(f, "unknown page version {v}"),
            PageError::BadKind(k) => write!(f, "unknown page kind {k}"),
            PageError::BadChecksum { stored, computed } => {
                write!(
                    f,
                    "page checksum mismatch: stored {stored:#x}, computed {computed:#x}"
                )
            }
            PageError::CorruptSlot(i) => write!(f, "slot {i} points outside the page"),
            PageError::RecordTooLarge { len, capacity } => {
                write!(f, "record of {len} bytes exceeds page capacity {capacity}")
            }
            PageError::PageFull => write!(f, "page full"),
        }
    }
}

impl std::error::Error for PageError {}

/// A fixed-size slotted page. Build one with [`Page::new`] + [`Page::push`],
/// serialize with [`Page::seal`], and reconstruct with [`Page::decode`]
/// (which verifies the checksum). Once in the buffer pool pages are
/// immutable — mutation is copy-on-write at the tenant-store level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    kind: PageKind,
    page_no: u32,
    epoch: u64,
    page_size: usize,
    /// (offset, len) per slot, in insertion order.
    slots: Vec<(u16, u16)>,
    /// Record heap: bytes `PAGE_HEADER_BYTES..free_off`.
    buf: Vec<u8>,
    free_off: usize,
}

impl Page {
    /// An empty page. `page_size` is clamped to
    /// [`MIN_PAGE_SIZE`]..=[`MAX_PAGE_SIZE`].
    pub fn new(kind: PageKind, page_no: u32, epoch: u64, page_size: usize) -> Page {
        let page_size = page_size.clamp(MIN_PAGE_SIZE, MAX_PAGE_SIZE);
        Page {
            kind,
            page_no,
            epoch,
            page_size,
            slots: Vec::new(),
            buf: vec![0u8; page_size],
            free_off: PAGE_HEADER_BYTES,
        }
    }

    /// Largest single record a fresh page of `page_size` bytes can hold.
    pub fn capacity(page_size: usize) -> usize {
        let page_size = page_size.clamp(MIN_PAGE_SIZE, MAX_PAGE_SIZE);
        page_size - PAGE_HEADER_BYTES - SLOT_BYTES
    }

    /// The page kind.
    pub fn kind(&self) -> PageKind {
        self.kind
    }

    /// Logical page number within its tenant file.
    pub fn page_no(&self) -> u32 {
        self.page_no
    }

    /// Knowledge epoch this page was written at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Configured page size in bytes (what [`Page::seal`] emits).
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of records on the page.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Free bytes available for one more record (slot entry accounted).
    pub fn free_space(&self) -> usize {
        let slot_dir = (self.slots.len() + 1) * SLOT_BYTES;
        self.page_size.saturating_sub(self.free_off + slot_dir)
    }

    /// Append a record; returns its slot index.
    ///
    /// `PageFull` means this page is out of space but a fresh page would
    /// hold the record; `RecordTooLarge` means no page of this size ever
    /// will (the caller must chunk, as the vector stream does).
    pub fn push(&mut self, record: &[u8]) -> Result<u16, PageError> {
        if record.len() > Page::capacity(self.page_size) {
            return Err(PageError::RecordTooLarge {
                len: record.len(),
                capacity: Page::capacity(self.page_size),
            });
        }
        if record.len() > self.free_space() {
            return Err(PageError::PageFull);
        }
        let off = self.free_off;
        self.buf[off..off + record.len()].copy_from_slice(record);
        self.slots.push((off as u16, record.len() as u16));
        self.free_off += record.len();
        Ok((self.slots.len() - 1) as u16)
    }

    /// The record in `slot`, if present.
    pub fn record(&self, slot: u16) -> Option<&[u8]> {
        let (off, len) = *self.slots.get(slot as usize)?;
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// All records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> {
        self.slots
            .iter()
            .map(|&(off, len)| &self.buf[off as usize..off as usize + len as usize])
    }

    /// Serialize to exactly [`Page::page_size`] bytes with the header CRC
    /// set. The CRC covers the whole page with the CRC field zeroed.
    pub fn seal(&self) -> Vec<u8> {
        let mut out = self.buf.clone();
        out[0..4].copy_from_slice(&PAGE_MAGIC);
        out[4..6].copy_from_slice(&PAGE_VERSION.to_le_bytes());
        out[6] = self.kind.to_u8();
        out[7] = 0;
        out[8..12].copy_from_slice(&self.page_no.to_le_bytes());
        out[12..20].copy_from_slice(&self.epoch.to_le_bytes());
        out[20..22].copy_from_slice(&(self.slots.len() as u16).to_le_bytes());
        out[22..24].copy_from_slice(&(self.free_off as u16).to_le_bytes());
        out[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&0u32.to_le_bytes());
        out[28..32].copy_from_slice(&[0u8; 4]);
        // Slot directory grows from the end of the page.
        for (i, &(off, len)) in self.slots.iter().enumerate() {
            let slot_end = self.page_size - i * SLOT_BYTES;
            out[slot_end - 4..slot_end - 2].copy_from_slice(&off.to_le_bytes());
            out[slot_end - 2..slot_end].copy_from_slice(&len.to_le_bytes());
        }
        let crc = crc32(&out);
        out[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and verify a sealed page. Any corruption — wrong size, bad
    /// magic/version/kind, checksum mismatch, out-of-bounds slot — is an
    /// error, and the caller falls back to rebuilding from the WAL.
    pub fn decode(bytes: &[u8], page_size: usize) -> Result<Page, PageError> {
        let page_size = page_size.clamp(MIN_PAGE_SIZE, MAX_PAGE_SIZE);
        if bytes.len() != page_size {
            return Err(PageError::WrongSize {
                got: bytes.len(),
                expected: page_size,
            });
        }
        if bytes[0..4] != PAGE_MAGIC {
            return Err(PageError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != PAGE_VERSION {
            return Err(PageError::BadVersion(version));
        }
        let kind = PageKind::from_u8(bytes[6]).ok_or(PageError::BadKind(bytes[6]))?;
        let stored = u32::from_le_bytes([
            bytes[CRC_OFFSET],
            bytes[CRC_OFFSET + 1],
            bytes[CRC_OFFSET + 2],
            bytes[CRC_OFFSET + 3],
        ]);
        let mut scratch = bytes.to_vec();
        scratch[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&0u32.to_le_bytes());
        let computed = crc32(&scratch);
        if stored != computed {
            return Err(PageError::BadChecksum { stored, computed });
        }
        let page_no = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let mut epoch_bytes = [0u8; 8];
        epoch_bytes.copy_from_slice(&bytes[12..20]);
        let epoch = u64::from_le_bytes(epoch_bytes);
        let slot_count = u16::from_le_bytes([bytes[20], bytes[21]]) as usize;
        let free_off = u16::from_le_bytes([bytes[22], bytes[23]]) as usize;
        if free_off < PAGE_HEADER_BYTES || free_off + slot_count * SLOT_BYTES > page_size {
            return Err(PageError::CorruptSlot(0));
        }
        let mut slots = Vec::with_capacity(slot_count);
        for i in 0..slot_count {
            let slot_end = page_size - i * SLOT_BYTES;
            let off = u16::from_le_bytes([bytes[slot_end - 4], bytes[slot_end - 3]]);
            let len = u16::from_le_bytes([bytes[slot_end - 2], bytes[slot_end - 1]]);
            let end = off as usize + len as usize;
            if (off as usize) < PAGE_HEADER_BYTES || end > free_off {
                return Err(PageError::CorruptSlot(i as u16));
            }
            slots.push((off, len));
        }
        // Normalize: zero the header and slot directory so a decoded
        // page is byte-identical to the freshly built page it was sealed
        // from (and `seal` of either produces the same output).
        let mut buf = bytes.to_vec();
        buf[..PAGE_HEADER_BYTES].fill(0);
        buf[page_size - slot_count * SLOT_BYTES..].fill(0);
        Ok(Page {
            kind,
            page_no,
            epoch,
            page_size,
            slots,
            buf,
            free_off,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_decode_round_trip() {
        let mut page = Page::new(PageKind::Entry, 7, 42, DEFAULT_PAGE_SIZE);
        let a = page.push(b"first record").unwrap();
        let b = page.push(b"second").unwrap();
        assert_eq!((a, b), (0, 1));
        let bytes = page.seal();
        assert_eq!(bytes.len(), DEFAULT_PAGE_SIZE);
        let back = Page::decode(&bytes, DEFAULT_PAGE_SIZE).unwrap();
        assert_eq!(back.kind(), PageKind::Entry);
        assert_eq!(back.page_no(), 7);
        assert_eq!(back.epoch(), 42);
        assert_eq!(back.record(0).unwrap(), b"first record");
        assert_eq!(back.record(1).unwrap(), b"second");
        assert_eq!(back.records().count(), 2);
        assert_eq!(back, page);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut page = Page::new(PageKind::Vector, 1, 9, MIN_PAGE_SIZE);
        page.push(b"payload").unwrap();
        let sealed = page.seal();
        for byte in 0..sealed.len() {
            for bit in 0..8 {
                let mut corrupt = sealed.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    Page::decode(&corrupt, MIN_PAGE_SIZE).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn torn_page_is_detected() {
        let mut page = Page::new(PageKind::Entry, 0, 1, 256);
        page.push(b"a record that matters").unwrap();
        let sealed = page.seal();
        // A torn write leaves a prefix of the new image over old bytes.
        let mut torn = vec![0xEE; 256];
        torn[..100].copy_from_slice(&sealed[..100]);
        assert!(matches!(
            Page::decode(&torn, 256),
            Err(PageError::BadChecksum { .. })
        ));
    }

    #[test]
    fn page_full_vs_record_too_large() {
        let mut page = Page::new(PageKind::Entry, 0, 0, MIN_PAGE_SIZE);
        let cap = Page::capacity(MIN_PAGE_SIZE);
        assert!(matches!(
            page.push(&vec![0u8; cap + 1]),
            Err(PageError::RecordTooLarge { .. })
        ));
        page.push(&vec![1u8; cap]).unwrap();
        assert!(matches!(page.push(b"x"), Err(PageError::PageFull)));
    }

    #[test]
    fn free_space_accounts_for_slot_directory() {
        let mut page = Page::new(PageKind::Entry, 0, 0, 256);
        let before = page.free_space();
        page.push(b"1234").unwrap();
        // 4 record bytes plus 4 slot bytes.
        assert_eq!(page.free_space(), before - 8);
    }

    #[test]
    fn empty_page_round_trips() {
        let page = Page::new(PageKind::Meta, 0, 0, DEFAULT_PAGE_SIZE);
        let back = Page::decode(&page.seal(), DEFAULT_PAGE_SIZE).unwrap();
        assert_eq!(back.slot_count(), 0);
        assert_eq!(back.kind(), PageKind::Meta);
    }
}
