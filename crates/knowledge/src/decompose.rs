//! SQL decomposition (§3.2.1).
//!
//! "We first rewrite the queries to use CTEs (WITH clause with subqueries).
//! Then, each rewritten query is decomposed into sub-queries based on its
//! subqueries in the WITH clauses, and finally into sub-statements based on
//! inner clauses."
//!
//! [`to_cte_normal_form`] performs the first rewrite (lifting FROM-level
//! derived tables into named CTEs); [`decompose`] produces the clause-level
//! [`SqlFragment`]s that become knowledge-set examples and the pseudo-SQL
//! attached to CoT plan steps.

use crate::types::{FragmentKind, SqlFragment};
use genedit_sql::ast::*;
use genedit_sql::error::EngineResult;
use genedit_sql::eval::collect_window_calls;
use genedit_sql::parser::parse_statement;
use std::collections::HashSet;

/// Rewrite a query so that every FROM-level derived table becomes a named
/// CTE on the outermost WITH clause. CTEs keep dependency order (a lifted
/// subquery precedes the CTE that references it).
pub fn to_cte_normal_form(query: &Query) -> Query {
    let mut used: HashSet<String> = query.ctes.iter().map(|c| c.name.to_uppercase()).collect();
    let mut lifted: Vec<Cte> = Vec::new();

    let mut out = query.clone();
    // Existing CTE bodies may themselves contain derived tables.
    let mut new_ctes = Vec::with_capacity(out.ctes.len());
    for cte in out.ctes.drain(..) {
        let mut body = (*cte.query).clone();
        rewrite_query_body(&mut body, &mut lifted, &mut used);
        new_ctes.push(Cte {
            name: cte.name,
            query: Box::new(body),
        });
    }
    rewrite_query_body(&mut out, &mut lifted, &mut used);

    // lifted CTEs first (innermost dependencies were pushed first), then
    // the original CTEs.
    let mut ctes = lifted;
    ctes.extend(new_ctes);
    out.ctes = ctes;
    out
}

fn rewrite_query_body(query: &mut Query, lifted: &mut Vec<Cte>, used: &mut HashSet<String>) {
    rewrite_set_expr(&mut query.body, lifted, used);
}

fn rewrite_set_expr(body: &mut SetExpr, lifted: &mut Vec<Cte>, used: &mut HashSet<String>) {
    match body {
        SetExpr::Select(select) => {
            if let Some(from) = &mut select.from {
                rewrite_table_ref(from, lifted, used);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            rewrite_set_expr(left, lifted, used);
            rewrite_set_expr(right, lifted, used);
        }
    }
}

fn rewrite_table_ref(tr: &mut TableRef, lifted: &mut Vec<Cte>, used: &mut HashSet<String>) {
    match tr {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, alias } => {
            let mut body = (**query).clone();
            // Recurse first so inner derived tables lift before this one.
            rewrite_query_body(&mut body, lifted, used);
            // Inner WITH clauses hoist to the top level too.
            let inner_ctes = std::mem::take(&mut body.ctes);
            for c in inner_ctes {
                used.insert(c.name.to_uppercase());
                lifted.push(c);
            }
            let name = fresh_name(alias, used);
            lifted.push(Cte {
                name: name.clone(),
                query: Box::new(body),
            });
            *tr = TableRef::Named {
                name,
                alias: Some(alias.clone()),
            };
        }
        TableRef::Join { left, right, .. } => {
            rewrite_table_ref(left, lifted, used);
            rewrite_table_ref(right, lifted, used);
        }
    }
}

fn fresh_name(alias: &str, used: &mut HashSet<String>) -> String {
    let base = alias.to_uppercase();
    let mut candidate = format!("{base}_CTE");
    let mut n = 1;
    while used.contains(&candidate) {
        n += 1;
        candidate = format!("{base}_CTE_{n}");
    }
    used.insert(candidate.clone());
    candidate
}

/// Decompose a query into clause-level fragments, after CTE normalization.
pub fn decompose(query: &Query) -> Vec<SqlFragment> {
    let normalized = to_cte_normal_form(query);
    let mut out = Vec::new();
    for cte in &normalized.ctes {
        out.push(SqlFragment::new(
            FragmentKind::CteDefinition,
            format!("{} AS ({})", cte.name, cte.query),
            cte.name.clone(),
        ));
        decompose_query_into(&cte.query, &cte.name, &mut out);
    }
    decompose_query_into(&normalized, "main", &mut out);
    out
}

/// Parse and decompose a SQL string.
pub fn decompose_sql(sql: &str) -> EngineResult<Vec<SqlFragment>> {
    let Statement::Query(q) = parse_statement(sql)?;
    Ok(decompose(&q))
}

fn decompose_query_into(query: &Query, scope: &str, out: &mut Vec<SqlFragment>) {
    decompose_set_expr(&query.body, scope, out);
    if !query.order_by.is_empty() {
        let items: Vec<String> = query.order_by.iter().map(|o| o.to_string()).collect();
        out.push(SqlFragment::new(
            FragmentKind::OrderBy,
            format!("ORDER BY {}", items.join(", ")),
            scope,
        ));
    }
    if let Some(n) = query.limit {
        out.push(SqlFragment::new(
            FragmentKind::Limit,
            format!("LIMIT {n}"),
            scope,
        ));
    }
}

fn decompose_set_expr(body: &SetExpr, scope: &str, out: &mut Vec<SqlFragment>) {
    match body {
        SetExpr::Select(select) => decompose_select(select, scope, out),
        SetExpr::SetOp { left, right, .. } => {
            decompose_set_expr(left, scope, out);
            decompose_set_expr(right, scope, out);
        }
    }
}

fn decompose_select(select: &Select, scope: &str, out: &mut Vec<SqlFragment>) {
    // Projection list.
    let items: Vec<String> = select.items.iter().map(|i| i.to_string()).collect();
    out.push(SqlFragment::new(
        FragmentKind::Projection,
        format!(
            "SELECT {}{}",
            if select.distinct { "DISTINCT " } else { "" },
            items.join(", ")
        ),
        scope,
    ));

    // Window expressions get their own fragments: they are the hardest
    // sub-statements and the most valuable as reusable examples.
    let mut wins: Vec<&Expr> = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            collect_window_calls(expr, &mut wins);
        }
    }
    for w in wins {
        out.push(SqlFragment::new(FragmentKind::Window, w.to_string(), scope));
    }

    if let Some(from) = &select.from {
        out.push(SqlFragment::new(
            FragmentKind::From,
            format!("FROM {from}"),
            scope,
        ));
    }
    if let Some(selection) = &select.selection {
        for conjunct in split_conjuncts(selection) {
            out.push(SqlFragment::new(
                FragmentKind::Where,
                format!("WHERE {conjunct}"),
                scope,
            ));
        }
    }
    if !select.group_by.is_empty() {
        let keys: Vec<String> = select.group_by.iter().map(|e| e.to_string()).collect();
        out.push(SqlFragment::new(
            FragmentKind::GroupBy,
            format!("GROUP BY {}", keys.join(", ")),
            scope,
        ));
    }
    if let Some(h) = &select.having {
        out.push(SqlFragment::new(
            FragmentKind::Having,
            format!("HAVING {h}"),
            scope,
        ));
    }
}

/// Split an expression on top-level ANDs.
pub fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            other => out.push(other),
        }
    }
    walk(e, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        let Statement::Query(q) = parse_statement(sql).unwrap();
        q
    }

    #[test]
    fn derived_table_lifts_to_cte() {
        let norm = to_cte_normal_form(&q(
            "SELECT t.a FROM (SELECT a FROM base WHERE a > 1) AS t WHERE t.a < 10",
        ));
        assert_eq!(norm.ctes.len(), 1);
        assert_eq!(norm.ctes[0].name, "T_CTE");
        match norm.as_select().unwrap().from.as_ref().unwrap() {
            TableRef::Named { name, alias } => {
                assert_eq!(name, "T_CTE");
                assert_eq!(alias.as_deref(), Some("t"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn nested_derived_tables_lift_in_dependency_order() {
        let norm = to_cte_normal_form(&q(
            "SELECT * FROM (SELECT * FROM (SELECT 1 AS x) AS inner1) AS outer1",
        ));
        assert_eq!(norm.ctes.len(), 2);
        assert_eq!(norm.ctes[0].name, "INNER1_CTE");
        assert_eq!(norm.ctes[1].name, "OUTER1_CTE");
    }

    #[test]
    fn normalization_preserves_semantics() {
        use genedit_sql::{execute_sql, Column, DataType, Database, Table, Value};
        let mut db = Database::new("d");
        let mut t = Table::new("base", vec![Column::new("a", DataType::Integer)]);
        for i in 0..20 {
            t.push_row(vec![Value::Integer(i)]).unwrap();
        }
        db.add_table(t).unwrap();
        let sql = "SELECT t.a FROM (SELECT a FROM base WHERE a > 5) AS t \
                   JOIN (SELECT a FROM base WHERE a < 15) AS u ON t.a = u.a ORDER BY t.a";
        let original = execute_sql(&db, sql).unwrap();
        let norm = to_cte_normal_form(&q(sql));
        let rewritten = genedit_sql::execute(&db, &Statement::Query(norm)).unwrap();
        assert!(original.ex_equal(&rewritten));
    }

    #[test]
    fn name_collisions_get_suffixes() {
        let norm = to_cte_normal_form(&q("WITH T_CTE AS (SELECT 1 AS x) \
             SELECT * FROM (SELECT 2 AS y) AS t CROSS JOIN T_CTE"));
        let names: Vec<&str> = norm.ctes.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"T_CTE"));
        assert!(names.contains(&"T_CTE_2"));
    }

    #[test]
    fn inner_with_clauses_hoist() {
        let norm = to_cte_normal_form(&q(
            "SELECT * FROM (WITH inner_cte AS (SELECT 1 AS x) SELECT * FROM inner_cte) AS d",
        ));
        let names: Vec<&str> = norm.ctes.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["inner_cte", "D_CTE"]);
    }

    #[test]
    fn decompose_covers_all_clauses() {
        let frags = decompose_sql(
            "WITH F AS (SELECT ORG, SUM(REV) AS R FROM FIN WHERE COUNTRY = 'Canada' \
             AND OWNED = 'COC' GROUP BY ORG HAVING SUM(REV) > 0) \
             SELECT ORG, R, ROW_NUMBER() OVER (ORDER BY R DESC) AS RNK \
             FROM F ORDER BY RNK LIMIT 5",
        )
        .unwrap();
        let kind_count = |k: FragmentKind| frags.iter().filter(|f| f.kind == k).count();
        assert_eq!(kind_count(FragmentKind::CteDefinition), 1);
        assert_eq!(kind_count(FragmentKind::Projection), 2); // F + main
        assert_eq!(kind_count(FragmentKind::From), 2);
        assert_eq!(kind_count(FragmentKind::Where), 2); // two conjuncts
        assert_eq!(kind_count(FragmentKind::GroupBy), 1);
        assert_eq!(kind_count(FragmentKind::Having), 1);
        assert_eq!(kind_count(FragmentKind::Window), 1);
        assert_eq!(kind_count(FragmentKind::OrderBy), 1);
        assert_eq!(kind_count(FragmentKind::Limit), 1);
    }

    #[test]
    fn fragments_carry_scope() {
        let frags =
            decompose_sql("WITH F AS (SELECT A FROM T WHERE A > 1) SELECT A FROM F").unwrap();
        let where_frag = frags
            .iter()
            .find(|f| f.kind == FragmentKind::Where)
            .unwrap();
        assert_eq!(where_frag.scope, "F");
        let main_from = frags
            .iter()
            .find(|f| f.kind == FragmentKind::From && f.scope == "main")
            .unwrap();
        assert_eq!(main_from.sql, "FROM F");
    }

    #[test]
    fn conjunct_splitting_respects_or() {
        let e = genedit_sql::parse_expression("a = 1 AND (b = 2 OR c = 3) AND d = 4").unwrap();
        let parts = split_conjuncts(&e);
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn paper_from_fragment_shape() {
        // Fig. 2's first plan step carries "... FROM SPORTS_FINANCIALS ...".
        let frags = decompose_sql("SELECT ORG_NAME FROM SPORTS_FINANCIALS").unwrap();
        let from = frags.iter().find(|f| f.kind == FragmentKind::From).unwrap();
        assert_eq!(from.pseudo_sql(), "... FROM SPORTS_FINANCIALS ...");
    }
}
