//! The durable knowledge store: journal + snapshot under one handle.
//!
//! [`DurableKnowledgeStore`] wires the write-ahead journal and the JSON
//! snapshot together so the knowledge set — the system's one durable,
//! evolving asset — survives crashes with a bounded, configurable loss
//! window:
//!
//! - every mutation is **journaled before it is visible** in memory
//!   (classic WAL discipline; [`KnowledgeSet::check`] runs first so an
//!   unreplayable record is never written);
//! - staged merges go through [`DurableKnowledgeStore::commit`], which
//!   journals `BatchStart ‖ edits ‖ BatchCommit` as one contiguous write —
//!   recovery replays the merge all-or-nothing, mirroring
//!   `StagingArea::commit`'s in-memory atomicity;
//! - [`DurableKnowledgeStore::compact`] folds the journal into a fresh
//!   snapshot (temp file, fsync, atomic rename) and resets the journal —
//!   snapshot-plus-tail is the steady-state on-disk layout;
//! - opening runs [`recovery`](crate::recovery) first, and if anything was
//!   quarantined the recovered state is immediately re-snapshotted so the
//!   next open is clean.

use crate::fs::{RealFs, StoreFs};
use crate::journal::{FsyncPolicy, Journal, JournalError, JournalRecord};
use crate::persist::{self, PersistError};
use crate::recovery::{recover, RecoveryReport};
use crate::set::{Edit, EditOutcome, KnowledgeError, KnowledgeSet};
use crate::staging::StagingArea;
use genedit_telemetry::{MetricsRegistry, Tracer};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors from the durable store.
#[derive(Debug)]
pub enum StoreError {
    /// Journal append/sync/truncate failed.
    Journal(JournalError),
    /// Snapshot encode/decode failed.
    Persist(PersistError),
    /// An edit was rejected by the knowledge set (nothing was journaled).
    Knowledge(KnowledgeError),
    /// A raw filesystem operation failed.
    Io {
        /// The operation that failed.
        op: &'static str,
        /// The file involved.
        path: PathBuf,
        /// Underlying I/O error.
        source: io::Error,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Journal(e) => write!(f, "store journal error: {e}"),
            StoreError::Persist(e) => write!(f, "store snapshot error: {e}"),
            StoreError::Knowledge(e) => write!(f, "store rejected edit: {e}"),
            StoreError::Io { op, path, source } => {
                write!(f, "store {op} failed on {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<JournalError> for StoreError {
    fn from(e: JournalError) -> StoreError {
        StoreError::Journal(e)
    }
}
impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> StoreError {
        StoreError::Persist(e)
    }
}
impl From<KnowledgeError> for StoreError {
    fn from(e: KnowledgeError) -> StoreError {
        StoreError::Knowledge(e)
    }
}

/// Tunables for the durable store.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// When journal appends are forced to durable storage.
    pub fsync: FsyncPolicy,
    /// Snapshot files larger than this are quarantined instead of read
    /// (guards recovery against allocating for a garbage length).
    pub max_snapshot_bytes: u64,
    /// When set, `commit` triggers compaction once the journal exceeds
    /// this many bytes.
    pub compact_after_bytes: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            fsync: FsyncPolicy::Always,
            max_snapshot_bytes: persist::DEFAULT_MAX_BYTES,
            compact_after_bytes: None,
        }
    }
}

/// A crash-safe [`KnowledgeSet`]: snapshot + checksummed edit journal.
pub struct DurableKnowledgeStore {
    fs: Arc<dyn StoreFs>,
    snapshot_path: PathBuf,
    journal: Journal,
    set: KnowledgeSet,
    recovery: RecoveryReport,
    config: StoreConfig,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl DurableKnowledgeStore {
    /// Open (or create) a store in `dir` on the real filesystem, with
    /// default configuration: `<dir>/knowledge.json` + `<dir>/knowledge.wal`.
    pub fn open(dir: impl AsRef<Path>) -> Result<DurableKnowledgeStore, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            op: "create_dir_all",
            path: dir.to_path_buf(),
            source,
        })?;
        DurableKnowledgeStore::open_with(
            Arc::new(RealFs::new()),
            dir.join("knowledge.json"),
            dir.join("knowledge.wal"),
            StoreConfig::default(),
            None,
        )
    }

    /// Open a store over an explicit filesystem — the seam the fault
    /// injector, the durability sweep, and the proptests plug into.
    ///
    /// Runs recovery first; if recovery quarantined anything, the
    /// recovered state is immediately compacted into a fresh snapshot so
    /// the damage cannot be observed twice.
    pub fn open_with(
        fs: Arc<dyn StoreFs>,
        snapshot_path: impl Into<PathBuf>,
        journal_path: impl Into<PathBuf>,
        config: StoreConfig,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Result<DurableKnowledgeStore, StoreError> {
        let snapshot_path = snapshot_path.into();
        let journal_path = journal_path.into();
        let (set, recovery) = recover(
            &fs,
            &snapshot_path,
            &journal_path,
            config.max_snapshot_bytes,
            metrics.as_ref(),
        )?;
        let mut journal = Journal::new(Arc::clone(&fs), journal_path, config.fsync);
        if let Some(m) = &metrics {
            journal = journal.with_metrics(Arc::clone(m));
        }
        let mut store = DurableKnowledgeStore {
            fs,
            snapshot_path,
            journal,
            set,
            recovery,
            config,
            metrics,
        };
        if !store.recovery.quarantined.is_empty() {
            // The replayed prefix only lives in memory once its file was
            // renamed aside; persist it now so re-opening is idempotent.
            store.compact()?;
        } else if store.journal.byte_len() == 0 {
            // Start the journal generation with its epoch marker (fresh
            // store, or a stale journal recovery truncated away).
            store.write_baseline()?;
        }
        Ok(store)
    }

    /// Append the epoch marker that opens a journal generation.
    fn write_baseline(&mut self) -> Result<(), StoreError> {
        self.journal.append(&JournalRecord::Baseline {
            log_len: self.set.log().len() as u64,
            checkpoints: self.set.checkpoints().len() as u64,
        })?;
        Ok(())
    }

    /// The recovered / live knowledge set. Mutations must go through the
    /// store so they hit the journal first.
    pub fn set(&self) -> &KnowledgeSet {
        &self.set
    }

    /// What recovery found when this store was opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Current journal size in bytes (0 right after compaction).
    pub fn journal_bytes(&self) -> u64 {
        self.journal.byte_len()
    }

    /// The **knowledge epoch**: a monotone version number that advances
    /// with every durable mutation (standalone edit, checkpoint replay,
    /// or staged-merge commit). It is the edit-log length — exactly the
    /// `log_len` the journal's `Baseline` epoch marker records at each
    /// generation boundary — so it survives crash recovery bit-for-bit.
    ///
    /// Serving-layer caches key their entries by this value: a
    /// `submit_edits` merge bumps the epoch, which silently invalidates
    /// every cache entry keyed under the previous one.
    pub fn epoch(&self) -> u64 {
        self.set.log().len() as u64
    }

    /// Apply one edit durably: validate, journal, then apply.
    pub fn apply(&mut self, edit: Edit) -> Result<EditOutcome, StoreError> {
        // Validate first — the journal must never hold a record that
        // recovery cannot replay.
        self.set.check(&edit)?;
        self.journal.append(&JournalRecord::Edit(edit.clone()))?;
        Ok(self.set.apply(edit)?)
    }

    /// Record a named checkpoint durably.
    pub fn checkpoint(&mut self, label: &str) -> Result<u64, StoreError> {
        self.journal.append(&JournalRecord::Checkpoint {
            label: label.to_string(),
        })?;
        Ok(self.set.checkpoint(label))
    }

    /// Merge a staging area durably. The batch is validated against a
    /// scratch copy, journaled as `BatchStart ‖ edits ‖ BatchCommit` in
    /// one contiguous write, and only then made visible — a crash at any
    /// point replays either the whole merge or none of it. Returns the
    /// pre-merge checkpoint id, like `StagingArea::commit`.
    pub fn commit(&mut self, staging: StagingArea, label: &str) -> Result<u64, StoreError> {
        self.commit_from(staging, label, None)
    }

    /// [`DurableKnowledgeStore::commit`] with provenance: `origin` names
    /// the serving request (or harness run) whose feedback produced this
    /// batch, and is recorded as a `request_id` attribute on the
    /// `store.commit` span so knowledge mutations join against serve
    /// traces and flight-recorder dumps.
    pub fn commit_from(
        &mut self,
        staging: StagingArea,
        label: &str,
        origin: Option<&str>,
    ) -> Result<u64, StoreError> {
        let tracer = Tracer::new("store");
        let span = tracer.span(genedit_telemetry::names::STORE_COMMIT);
        if let Some(request_id) = origin {
            span.attr("request_id", request_id);
        }
        // Dry-run on a scratch copy, in exactly the order recovery will
        // replay: checkpoint first, then every edit.
        let mut next = self.set.clone();
        let checkpoint = next.checkpoint(label);
        let mut records = Vec::with_capacity(staging.len() + 2);
        records.push(JournalRecord::BatchStart {
            label: label.to_string(),
            count: staging.len() as u32,
        });
        for staged in staging.staged() {
            next.apply(staged.edit.clone())?;
            records.push(JournalRecord::Edit(staged.edit.clone()));
        }
        records.push(JournalRecord::BatchCommit);

        // Journal before visibility. On failure, cut any partially
        // appended frames back off so the on-disk journal stays a clean
        // record sequence.
        let pre_len = self.journal.byte_len();
        let edits = staging.len();
        if let Err(e) = self.journal.append_batch(&records) {
            let _ = self.journal.truncate(pre_len);
            return Err(e.into());
        }
        self.set = next;
        span.attr("edits", edits).attr("label", label);
        span.finish();
        if let Some(m) = &self.metrics {
            m.incr("store.commit.merges", 1);
            m.incr("store.commit.edits", edits as u64);
            m.record_trace(&tracer.finish());
        }
        if let Some(limit) = self.config.compact_after_bytes {
            if self.journal.byte_len() > limit {
                self.compact()?;
            }
        }
        Ok(checkpoint)
    }

    /// Fold the journal into a fresh snapshot: write a temp file, fsync,
    /// atomically rename over the snapshot, then reset the journal.
    /// A crash at any point leaves either the old snapshot + full journal
    /// or the new snapshot (+ journal, which replays idempotently).
    pub fn compact(&mut self) -> Result<(), StoreError> {
        let tracer = Tracer::new("store");
        let span = tracer.span(genedit_telemetry::names::STORE_COMPACT);
        let json = persist::to_json(&self.set)?;
        let tmp = PathBuf::from(format!("{}.tmp", self.snapshot_path.display()));
        let io_err = |op: &'static str, path: &Path| {
            let path = path.to_path_buf();
            move |source| StoreError::Io { op, path, source }
        };
        let result = self
            .fs
            .write_file(&tmp, json.as_bytes())
            .map_err(io_err("write snapshot", &tmp))
            .and_then(|()| self.fs.fsync(&tmp).map_err(io_err("fsync snapshot", &tmp)))
            .and_then(|()| {
                self.fs
                    .rename(&tmp, &self.snapshot_path)
                    .map_err(io_err("rename snapshot", &self.snapshot_path))
            });
        if let Err(e) = result {
            // Best effort: never leave an orphaned temp snapshot behind.
            let _ = self.fs.remove(&tmp);
            return Err(e);
        }
        self.journal.reset()?;
        // New generation, new epoch marker. A crash anywhere in this
        // window is safe: before reset the old journal's baseline is
        // older than the renamed snapshot (recovery skips it); after
        // reset an empty journal gets its marker on the next open.
        self.write_baseline()?;
        span.attr("snapshot_bytes", json.len());
        span.finish();
        if let Some(m) = &self.metrics {
            m.incr("store.compact.runs", 1);
            m.incr("store.compact.snapshot_bytes", json.len() as u64);
            m.record_trace(&tracer.finish());
        }
        Ok(())
    }

    /// Force every acknowledged append to durable storage (meaningful
    /// under `FsyncPolicy::EveryN` / `Never`).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        Ok(self.journal.sync()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use crate::journal::encode_record;
    use crate::recovery::RecoveryOutcome;
    use crate::types::{FragmentKind, SourceRef, SqlFragment};

    fn edit(desc: &str) -> Edit {
        Edit::InsertExample {
            intent: None,
            description: desc.into(),
            fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
            term: None,
            source: SourceRef::Manual,
        }
    }

    fn open_mem(mem: &Arc<MemFs>) -> DurableKnowledgeStore {
        let fs: Arc<dyn StoreFs> = Arc::clone(mem) as Arc<dyn StoreFs>;
        DurableKnowledgeStore::open_with(fs, "k.json", "k.wal", StoreConfig::default(), None)
            .unwrap()
    }

    #[test]
    fn edits_survive_a_crash_before_any_snapshot() {
        let mem = Arc::new(MemFs::new());
        let mut store = open_mem(&mem);
        store.apply(edit("a")).unwrap();
        store.apply(edit("b")).unwrap();
        store.checkpoint("cp").unwrap();
        let live = store.set().clone();
        mem.crash();
        let reopened = open_mem(&mem);
        assert!(reopened.set().content_eq(&live));
        assert_eq!(reopened.set().checkpoints().len(), 1);
        assert_eq!(reopened.recovery_report().outcome, RecoveryOutcome::Clean);
    }

    #[test]
    fn commit_is_atomic_across_crashes_and_matches_staging_semantics() {
        let mem = Arc::new(MemFs::new());
        let mut store = open_mem(&mem);
        store.apply(edit("base")).unwrap();
        let mut area = StagingArea::new();
        area.stage(edit("m1"));
        area.stage(edit("m2"));
        let cp = store.commit(area, "merge").unwrap();
        assert_eq!(store.set().examples().len(), 3);
        mem.crash();
        let mut reopened = open_mem(&mem);
        assert!(reopened.set().content_eq(store.set()));
        // The checkpoint id replays identically, so revert works post-crash.
        reopened.set.revert_to(cp).unwrap();
        assert_eq!(reopened.set.examples().len(), 1);
    }

    #[test]
    fn invalid_edit_is_rejected_without_touching_the_journal() {
        let mem = Arc::new(MemFs::new());
        let mut store = open_mem(&mem);
        store.apply(edit("a")).unwrap();
        let before = store.journal_bytes();
        let err = store.apply(Edit::DeleteExample {
            id: crate::types::ExampleId(999),
        });
        assert!(matches!(err, Err(StoreError::Knowledge(_))));
        assert_eq!(store.journal_bytes(), before, "nothing journaled");
        assert_eq!(store.set().examples().len(), 1);
    }

    #[test]
    fn compaction_folds_journal_into_snapshot() {
        let mem = Arc::new(MemFs::new());
        let mut store = open_mem(&mem);
        store.apply(edit("a")).unwrap();
        store.apply(edit("b")).unwrap();
        let before = store.journal_bytes();
        store.compact().unwrap();
        // Only the new generation's epoch marker remains.
        let baseline_len = encode_record(&JournalRecord::Baseline {
            log_len: 2,
            checkpoints: 0,
        })
        .unwrap()
        .len() as u64;
        assert!(before > baseline_len);
        assert_eq!(store.journal_bytes(), baseline_len);
        let live = store.set().clone();
        mem.crash();
        let reopened = open_mem(&mem);
        assert!(reopened.set().content_eq(&live));
        assert!(reopened.recovery_report().snapshot_loaded);
        // Log and checkpoints survive compaction too (the snapshot is the
        // full persisted set, not just content).
        assert_eq!(reopened.set().log().len(), live.log().len());
    }

    #[test]
    fn auto_compaction_triggers_on_journal_growth() {
        let mem = Arc::new(MemFs::new());
        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let config = StoreConfig {
            compact_after_bytes: Some(64),
            ..StoreConfig::default()
        };
        let mut store =
            DurableKnowledgeStore::open_with(fs, "k.json", "k.wal", config, None).unwrap();
        let mut area = StagingArea::new();
        area.stage(edit("big-enough-to-cross-the-limit"));
        store.commit(area, "merge").unwrap();
        // Compacted: only the new generation's epoch marker remains.
        let baseline_len = encode_record(&JournalRecord::Baseline {
            log_len: 1,
            checkpoints: 1,
        })
        .unwrap()
        .len() as u64;
        assert_eq!(
            store.journal_bytes(),
            baseline_len,
            "commit should have compacted"
        );
        assert!(mem.paths().contains(&PathBuf::from("k.json")));
    }

    #[test]
    fn crash_between_snapshot_rename_and_journal_reset_is_safe() {
        let mem = Arc::new(MemFs::new());
        let mut store = open_mem(&mem);
        store.apply(edit("a")).unwrap();
        store.apply(edit("b")).unwrap();
        let live = store.set().clone();
        // Simulate compaction crashing right after the snapshot rename:
        // the new snapshot is durable but the journal was never reset.
        let json = persist::to_json(store.set()).unwrap();
        mem.write_file(Path::new("k.json"), json.as_bytes())
            .unwrap();
        mem.fsync(Path::new("k.json")).unwrap();
        mem.crash();
        let reopened = open_mem(&mem);
        assert!(reopened.set().content_eq(&live));
        assert_eq!(
            reopened.set().log().len(),
            live.log().len(),
            "journal records must not replay on top of a snapshot that \
             already contains them"
        );
        assert_eq!(
            reopened.recovery_report().outcome,
            RecoveryOutcome::TruncatedTail
        );
        // The next open finds a fresh generation and is clean.
        let again = open_mem(&mem);
        assert_eq!(again.recovery_report().outcome, RecoveryOutcome::Clean);
        assert!(again.set().content_eq(&live));
    }

    #[test]
    fn epoch_advances_on_commit_and_survives_crash() {
        let mem = Arc::new(MemFs::new());
        let mut store = open_mem(&mem);
        assert_eq!(store.epoch(), 0);
        store.apply(edit("a")).unwrap();
        let after_apply = store.epoch();
        assert!(after_apply > 0);
        let mut area = StagingArea::new();
        area.stage(edit("m1"));
        area.stage(edit("m2"));
        store.commit(area, "merge").unwrap();
        let after_commit = store.epoch();
        assert!(after_commit > after_apply, "a merge must bump the epoch");
        store.compact().unwrap();
        assert_eq!(store.epoch(), after_commit, "compaction is not a mutation");
        mem.crash();
        let reopened = open_mem(&mem);
        assert_eq!(reopened.epoch(), after_commit, "epoch replays exactly");
    }

    #[test]
    fn metrics_record_store_activity() {
        let mem = Arc::new(MemFs::new());
        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let metrics = Arc::new(MetricsRegistry::new());
        let mut store = DurableKnowledgeStore::open_with(
            fs,
            "k.json",
            "k.wal",
            StoreConfig::default(),
            Some(Arc::clone(&metrics)),
        )
        .unwrap();
        store.apply(edit("a")).unwrap();
        let mut area = StagingArea::new();
        area.stage(edit("b"));
        store.commit(area, "merge").unwrap();
        store.compact().unwrap();
        assert_eq!(metrics.counter("store.recovery.runs"), 1);
        assert!(metrics.counter("store.journal.appends") >= 2);
        assert_eq!(metrics.counter("store.commit.merges"), 1);
        assert_eq!(metrics.counter("store.compact.runs"), 1);
    }
}
