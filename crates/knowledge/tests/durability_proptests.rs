//! Durability property tests: the durable knowledge store under
//! deterministic crash points and storage-fault schedules.
//!
//! The properties:
//! 1. crash anywhere — recovery never panics and restores *exactly* the
//!    acknowledged prefix: every acked operation survives (fsync-Always
//!    leaves no loss window) and no unacked operation leaks in;
//! 2. arbitrary interleavings of appends, staged merges, checkpoints,
//!    and snapshot compactions reload to the identical set — no torn or
//!    duplicated records, with or without a crash in between;
//! 3. under random storage faults (short writes, torn writes, bit
//!    flips, failed fsyncs/renames) recovery still returns a
//!    self-consistent state — the replay of its own audit log — and
//!    re-opening an already-recovered store is idempotent;
//! 4. a quarantined journal is renamed aside (never deleted) and leaves
//!    a telemetry trail.

use genedit_knowledge::{
    scan, DurableKnowledgeStore, Edit, FaultyFs, IoFaultConfig, KnowledgeSet, MemFs,
    RetrievalStage, StagingArea, StoreConfig, StoreError, StoreFs,
};
use genedit_knowledge::{FragmentKind, SourceRef, SqlFragment};
use genedit_telemetry::MetricsRegistry;
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

fn insert(desc: &str) -> Edit {
    Edit::InsertExample {
        intent: None,
        description: desc.into(),
        fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
        term: None,
        source: SourceRef::Manual,
    }
}

/// One store operation of the replayed workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(String),
    Hint(String),
    Checkpoint(String),
    Merge(Vec<String>),
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(Op::Insert),
        "[a-z]{1,8}".prop_map(Op::Hint),
        "[a-z]{1,6}".prop_map(Op::Checkpoint),
        prop::collection::vec("[a-z]{1,8}".prop_map(String::from), 1..4).prop_map(Op::Merge),
        Just(Op::Compact),
        "[a-z]{1,8}".prop_map(Op::Insert),
        prop::collection::vec("[a-z]{1,8}".prop_map(String::from), 1..4).prop_map(Op::Merge),
    ]
}

fn apply_op(store: &mut DurableKnowledgeStore, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Insert(d) => store.apply(insert(d)).map(|_| ()),
        Op::Hint(t) => store
            .apply(Edit::AddRetrievalHint {
                stage: RetrievalStage::SchemaLinking,
                text: t.clone(),
            })
            .map(|_| ()),
        Op::Checkpoint(label) => store.checkpoint(label).map(|_| ()),
        Op::Merge(descs) => {
            let mut area = StagingArea::new();
            for d in descs {
                area.stage(insert(d));
            }
            store.commit(area, "merge").map(|_| ())
        }
        Op::Compact => store.compact(),
    }
}

fn open(fs: Arc<dyn StoreFs>) -> Result<DurableKnowledgeStore, StoreError> {
    DurableKnowledgeStore::open_with(fs, "k.json", "k.wal", StoreConfig::default(), None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: crash at an arbitrary fs-operation count, during any
    /// workload. The recovered store must be content-equal to the state
    /// after the last *acknowledged* operation — nothing acked is lost,
    /// nothing unacked leaks in — and re-opening again changes nothing.
    #[test]
    fn crash_at_any_point_recovers_exactly_the_acked_prefix(
        ops in prop::collection::vec(arb_op(), 1..20),
        crash_after in 1u64..180,
        seed in 0u64..1_000,
    ) {
        let mem = Arc::new(MemFs::new());
        let faulty: Arc<dyn StoreFs> = Arc::new(FaultyFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            IoFaultConfig::crash_at(crash_after),
            seed,
        ));
        let mut acked = KnowledgeSet::new();
        if let Ok(mut store) = open(faulty) {
            acked = store.set().clone();
            for op in &ops {
                match apply_op(&mut store, op) {
                    Ok(()) => acked = store.set().clone(),
                    // First failure is the simulated crash; every later
                    // operation is refused too.
                    Err(_) => break,
                }
            }
        }
        mem.crash();

        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let reopened = open(Arc::clone(&fs)).expect("recovery on a healthy fs never fails");
        prop_assert!(
            reopened.set().content_eq(&acked),
            "recovered {:?} != acked {:?} (crash_after={crash_after})",
            reopened.set().stats(),
            acked.stats(),
        );
        prop_assert_eq!(reopened.set().log().len(), acked.log().len());
        prop_assert_eq!(reopened.set().checkpoints().len(), acked.checkpoints().len());

        // Idempotent: recovery already repaired the files in place.
        drop(reopened);
        let again = open(fs).expect("second open never fails");
        prop_assert!(again.set().content_eq(&acked));
        prop_assert!(
            !again.recovery_report().repaired(),
            "second open found damage: {:?}",
            again.recovery_report()
        );
    }

    /// Property 2: without faults, any interleaving of appends, merges,
    /// checkpoints, and compactions reloads exactly — before and after a
    /// crash (fsync-Always makes acked == durable).
    #[test]
    fn interleaved_appends_and_compactions_reload_exactly(
        ops in prop::collection::vec(arb_op(), 1..25),
    ) {
        let mem = Arc::new(MemFs::new());
        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let mut store = open(Arc::clone(&fs)).expect("open");
        for op in &ops {
            apply_op(&mut store, op).expect("no faults injected");
        }
        let live = store.set().clone();
        drop(store);

        let reloaded = open(Arc::clone(&fs)).expect("reload");
        prop_assert!(reloaded.set().content_eq(&live));
        prop_assert_eq!(reloaded.set().log().len(), live.log().len(), "no torn/duplicated records");
        prop_assert_eq!(reloaded.set().checkpoints().len(), live.checkpoints().len());
        prop_assert!(!reloaded.recovery_report().repaired());
        drop(reloaded);

        mem.crash();
        let recovered = open(fs).expect("recover");
        prop_assert!(recovered.set().content_eq(&live));
        prop_assert_eq!(recovered.set().log().len(), live.log().len());
    }

    /// Property 3: under random storage faults the store may lose
    /// acknowledged data (a torn write acks bytes that never hit the
    /// platter) but recovery must never panic or error, must produce a
    /// state that is the replay of its own audit log, and must leave the
    /// files repaired so the next open is clean.
    #[test]
    fn random_storage_faults_never_break_recovery(
        ops in prop::collection::vec(arb_op(), 1..20),
        rate in 0.0f64..0.25,
        seed in 0u64..1_000,
    ) {
        let mem = Arc::new(MemFs::new());
        let faulty: Arc<dyn StoreFs> = Arc::new(FaultyFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            IoFaultConfig::uniform(rate),
            seed,
        ));
        if let Ok(mut store) = open(faulty) {
            for op in &ops {
                // Faults are transient here: keep driving the workload.
                let _ = apply_op(&mut store, op);
            }
        }
        mem.crash();

        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        let reopened = open(Arc::clone(&fs)).expect("recovery on a healthy fs never fails");
        let replayed = KnowledgeSet::from_log(
            reopened.set().log().iter().map(|l| l.edit.clone()),
        )
        .expect("recovered audit log must replay");
        prop_assert!(
            replayed.content_eq(reopened.set()),
            "recovered state is not the replay of its own log"
        );
        let first = reopened.set().clone();
        drop(reopened);

        let again = open(fs).expect("second open never fails");
        prop_assert!(again.set().content_eq(&first), "reopen must be idempotent");
        prop_assert!(
            !again.recovery_report().repaired(),
            "second open found damage: {:?}",
            again.recovery_report()
        );
    }
}

/// Property 4 as a deterministic test: mid-file journal corruption is
/// quarantined — the damaged file is renamed aside, never deleted — and
/// the event is visible in telemetry (a recovery warning and the
/// `store.recovery.quarantined` counter).
#[test]
fn quarantined_journal_leaves_the_file_and_a_warning() {
    let mem = Arc::new(MemFs::new());
    let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
    let mut store = DurableKnowledgeStore::open_with(
        Arc::clone(&fs),
        "k.json",
        "k.wal",
        StoreConfig::default(),
        None,
    )
    .expect("open");
    for i in 0..6 {
        store.apply(insert(&format!("e{i}"))).expect("apply");
    }
    drop(store);

    // Flip one payload byte in a mid-file record (readable data follows,
    // so this is corruption, not a torn tail).
    let mut bytes = mem.read(Path::new("k.wal")).expect("journal exists");
    let offsets = scan(&bytes).offsets;
    assert!(offsets.len() >= 4);
    let victim = offsets[2] as usize + 8 + 2; // 2 bytes into record 2's payload
    bytes[victim] ^= 0x40;
    mem.write_file(Path::new("k.wal"), &bytes).expect("rewrite");
    mem.fsync(Path::new("k.wal")).expect("fsync");

    let metrics = Arc::new(MetricsRegistry::new());
    let store = DurableKnowledgeStore::open_with(
        fs,
        "k.json",
        "k.wal",
        StoreConfig::default(),
        Some(Arc::clone(&metrics)),
    )
    .expect("quarantine is not fatal");

    let report = store.recovery_report();
    assert!(report
        .quarantined
        .iter()
        .any(|p| p.to_string_lossy().contains("k.wal.quarantine")));
    assert!(
        mem.paths()
            .iter()
            .any(|p| p.to_string_lossy().contains("k.wal.quarantine")),
        "quarantined file must stay on disk: {:?}",
        mem.paths()
    );
    // The valid prefix (the records before the flipped byte) survived.
    assert!(!store.set().examples().is_empty());
    assert_eq!(metrics.counter("store.recovery.quarantined"), 1);
    assert!(
        metrics.counter("trace.warnings") >= 1,
        "quarantine must leave a warning in telemetry"
    );
}
