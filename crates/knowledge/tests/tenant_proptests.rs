//! Property tests for the tiered tenant storage layer (DESIGN.md §17):
//!
//! 1. **Pinned pages are never evicted.** Under an arbitrary schedule of
//!    pins, unpins, and admissions that overflows the pool budget many
//!    times over, a page whose pin guard is still alive is always served
//!    from memory — its loader is never re-run.
//! 2. **Snapshot reads are epoch-consistent.** Any interleaving of
//!    commits and snapshot opens/reads/drops yields, for every read,
//!    exactly the content the tenant had at the snapshot's epoch — even
//!    when later commits rewrite and reclaim the underlying page slots.
//! 3. **Crash during a page flush recovers the acked WAL prefix.** With
//!    a seeded [`FaultyFs`] crashing at an arbitrary fs-operation count,
//!    a fresh store over the healed filesystem (new process, new buffer
//!    pool) serves exactly the state of the last durable WAL commit: the
//!    failing commit is either fully present (the WAL append was already
//!    acked when the page flush died) or fully absent — never torn.

use genedit_knowledge::tenants::{TenantKnowledgeStore, TenantStoreConfig};
use genedit_knowledge::{
    BufferPool, Edit, FaultyFs, IoFaultConfig, KnowledgeSet, MemFs, Page, PageKey, PageKind,
    PoolConfig, StagingArea, StoreConfig, StoreFs,
};
use genedit_knowledge::{FragmentKind, SourceRef, SqlFragment};
use proptest::prelude::*;
use std::sync::Arc;

const PAGE_SIZE: usize = 512;

fn edit(desc: &str) -> Edit {
    Edit::InsertExample {
        intent: None,
        description: desc.into(),
        fragment: SqlFragment::new(FragmentKind::Where, "WHERE A = 1", "main"),
        term: None,
        source: SourceRef::Manual,
    }
}

fn staged(descs: &[String]) -> StagingArea {
    let mut area = StagingArea::new();
    for d in descs {
        area.stage(edit(d));
    }
    area
}

fn tenant_store(mem: &Arc<MemFs>, faulty: Option<Arc<dyn StoreFs>>) -> Arc<TenantKnowledgeStore> {
    let fs: Arc<dyn StoreFs> = faulty.unwrap_or_else(|| Arc::clone(mem) as Arc<dyn StoreFs>);
    Arc::new(TenantKnowledgeStore::new_with(
        fs,
        "/kb",
        TenantStoreConfig {
            page_size: 1024,
            // Tiny budget: a handful of frames, so eviction is constant.
            pool_budget_bytes: 8 * 1024,
            shards: 4,
            store: StoreConfig::default(),
        },
        None,
    ))
}

fn page_for(no: u32) -> Arc<Page> {
    let mut page = Page::new(PageKind::Entry, no, 1, PAGE_SIZE);
    page.push(format!("record-{no}").as_bytes()).expect("fits");
    Arc::new(page)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Property 1: a pinned page is never evicted, no matter how hard
    /// the admission schedule presses on the budget. The pool budget
    /// holds 4 frames; we keep up to 3 pinned while admitting dozens of
    /// other pages, and every re-pin of a held page must be a hit (the
    /// loader for it panics).
    #[test]
    fn pinned_pages_survive_any_admission_schedule(
        schedule in prop::collection::vec((0u32..64, 0u8..2), 1..80),
        held in prop::collection::vec(100u32..103, 1..3),
    ) {
        let pool = Arc::new(BufferPool::new(PoolConfig {
            budget_bytes: 4 * PAGE_SIZE,
            page_size: PAGE_SIZE,
        }));
        let key = |no: u32| PageKey { tenant: 1, page_no: no };

        // Take the pins we promise to hold for the whole schedule.
        let pins: Vec<_> = held
            .iter()
            .map(|&no| pool.pin_with(key(no), || Ok(page_for(no))).expect("pin"))
            .collect();

        for (no, repin_held) in &schedule {
            // Churn: admit an arbitrary page (immediately unpinned).
            let churn = pool
                .pin_with(key(*no), || Ok(page_for(*no)))
                .expect("churn pin");
            drop(churn);
            if *repin_held == 1 {
                // Every held page must still be resident: the loader
                // panicking proves the frame was never evicted.
                for &no in &held {
                    let hit = pool
                        .pin_with(key(no), || panic!("pinned page {no} was evicted"))
                        .expect("re-pin");
                    prop_assert_eq!(hit.page().page_no(), no);
                }
            }
        }

        let distinct: std::collections::BTreeSet<u32> = held.iter().copied().collect();
        let stats = pool.stats();
        prop_assert!(stats.pinned_frames >= distinct.len());
        drop(pins);
        // Once unpinned, the frames are ordinary eviction candidates and
        // the pool can get back under budget.
        for no in 0..8u32 {
            let p = pool.pin_with(key(no), || Ok(page_for(no))).expect("pin");
            drop(p);
        }
        prop_assert!(pool.stats().resident_bytes <= 4 * PAGE_SIZE);
    }

    /// Property 2: every snapshot read returns the content of the
    /// tenant at the snapshot's epoch, under any interleaving of
    /// commits, opens, reads, and drops. `ops` encodes the schedule:
    /// (tenant, action, payload) with actions cycling commit / open /
    /// read / drop over the open-snapshot list.
    #[test]
    fn snapshot_reads_are_epoch_consistent_under_interleaving(
        ops in prop::collection::vec(
            (0u8..2, 0u8..4, "[a-z]{1,6}"),
            1..30,
        ),
    ) {
        let mem = Arc::new(MemFs::new());
        let store = tenant_store(&mem, None);
        let tenants = ["t0", "t1"];
        // Model: the expected KnowledgeSet per tenant, updated on commit.
        let mut model: Vec<KnowledgeSet> = vec![KnowledgeSet::new(), KnowledgeSet::new()];
        // Open snapshots with the model content frozen at open time.
        let mut open: Vec<(genedit_knowledge::TenantSnapshot, KnowledgeSet)> = Vec::new();

        for (t, action, payload) in &ops {
            let t = *t as usize;
            match action {
                0 => {
                    // Commit a batch of 1-2 edits.
                    let descs = vec![payload.clone(), format!("{payload}2")];
                    store
                        .commit(tenants[t], staged(&descs), "step")
                        .expect("commit on healthy fs");
                    for d in &descs {
                        model[t].apply(edit(d)).expect("model apply");
                    }
                }
                1 => {
                    if model[t].log().is_empty() {
                        continue; // tenant not created yet
                    }
                    let snap = store.snapshot(tenants[t]).expect("snapshot");
                    prop_assert_eq!(snap.epoch(), model[t].log().len() as u64);
                    open.push((snap, model[t].clone()));
                }
                2 => {
                    // Read every open snapshot against its frozen model.
                    for (snap, frozen) in &open {
                        let ks = snap.knowledge_set().expect("snapshot read");
                        prop_assert!(
                            ks.content_eq(frozen),
                            "snapshot at epoch {} drifted",
                            snap.epoch()
                        );
                    }
                }
                _ => {
                    if !open.is_empty() {
                        let idx = payload.len() % open.len();
                        open.remove(idx);
                    }
                }
            }
        }

        // Drain: all remaining snapshots still read their frozen view.
        for (snap, frozen) in &open {
            let ks = snap.knowledge_set().expect("final read");
            prop_assert!(ks.content_eq(frozen));
        }
        drop(open);

        // After everything closes, a fresh snapshot per tenant sees the
        // latest model state.
        for (t, name) in tenants.iter().enumerate() {
            if model[t].log().is_empty() {
                continue;
            }
            let snap = store.snapshot(name).expect("fresh snapshot");
            prop_assert!(snap.knowledge_set().expect("read").content_eq(&model[t]));
        }
    }

    /// Property 3: crash at an arbitrary seeded fs-operation count while
    /// committing (WAL append + page flush). A fresh store over the
    /// healed filesystem — new process, empty buffer pool — must serve
    /// either the last acked state or, when the WAL append had already
    /// been acked before the page flush died, the full failing batch.
    /// Never a torn batch, and never an error.
    #[test]
    fn crash_during_page_flush_recovers_acked_wal_prefix(
        batches in prop::collection::vec(
            prop::collection::vec("[a-z]{1,8}", 1..3),
            1..8,
        ),
        crash_after in 1u64..220,
        seed in 0u64..1_000,
    ) {
        let mem = Arc::new(MemFs::new());
        let faulty: Arc<dyn StoreFs> = Arc::new(FaultyFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            IoFaultConfig::crash_at(crash_after),
            seed,
        ));
        let store = tenant_store(&mem, Some(faulty));

        let mut acked = KnowledgeSet::new();
        let mut pending: Option<KnowledgeSet> = None;
        for descs in &batches {
            let mut next = acked.clone();
            for d in descs {
                next.apply(edit(d)).expect("model apply");
            }
            match store.commit("t0", staged(descs), "step") {
                Ok(_) => acked = next,
                Err(_) => {
                    // The WAL may or may not have made this batch
                    // durable before the crash point hit.
                    pending = Some(next);
                    break;
                }
            }
        }
        mem.crash();

        if acked.log().is_empty() && pending.is_none() {
            return Ok(()); // nothing ever reached the store
        }

        // "Process restart": a brand-new store (fresh pool, no in-memory
        // tenant state) over the healed filesystem.
        let reopened = tenant_store(&mem, None);
        if !reopened.tenant_exists("t0") {
            // Crash before the first WAL byte: the tenant never existed.
            prop_assert!(acked.log().is_empty());
            return Ok(());
        }
        let snap = reopened.snapshot("t0").expect("recovery never fails");
        let ks = snap.knowledge_set().expect("read recovered pages");
        let matches_acked = ks.content_eq(&acked);
        let matches_pending = pending.as_ref().is_some_and(|p| ks.content_eq(p));
        prop_assert!(
            matches_acked || matches_pending,
            "recovered state is neither the acked prefix ({} edits) nor the \
             acked prefix plus the in-flight batch (crash_after={crash_after})",
            acked.log().len(),
        );
        drop(snap);

        // Idempotent: a second restart serves the same bytes.
        let again = tenant_store(&mem, None);
        let snap2 = again.snapshot("t0").expect("second open");
        prop_assert!(snap2.knowledge_set().expect("read").content_eq(&ks));
    }
}
