//! Criterion micro-benchmarks of the pipeline operators (B1–B6 in
//! DESIGN.md) plus ablation benches for the design choices: compounding
//! (context-expanded) retrieval vs independent retrieval, decomposed vs
//! full-query knowledge-set construction, and EX comparison.
//!
//! Run: `cargo bench -p genedit-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use genedit_bird::{DomainBundle, Workload, SPORTS};
use genedit_core::{Ablation, GenEditPipeline, KnowledgeIndex};
use genedit_knowledge::decompose_sql;
use genedit_llm::{CompletionRequest, LanguageModel, OracleModel, Prompt, TaskKind, TaskRegistry};
use genedit_sql::execute_sql;

fn setup() -> (DomainBundle, KnowledgeIndex, OracleModel) {
    let bundle = DomainBundle::build(&SPORTS, (24, 7, 3), 42);
    let index = KnowledgeIndex::build(bundle.build_knowledge());
    let mut reg = TaskRegistry::new();
    for t in &bundle.tasks {
        reg.register(t.clone());
    }
    (bundle, index, OracleModel::new(reg))
}

fn bench_retrieval_operators(c: &mut Criterion) {
    let (bundle, index, _) = setup();
    let question = &bundle.tasks.last().unwrap().question;
    let mut group = c.benchmark_group("retrieval");

    group.bench_function("embed_query", |b| {
        b.iter(|| index.embedder().embed(question))
    });

    let q_emb = index.embedder().embed(question);
    group.bench_function("example_selection_top10", |b| {
        b.iter(|| index.top_examples(&q_emb, &[], 10))
    });

    // The compounding variant: instruction ranking with the query expanded
    // by the selected examples (§3.1.1) …
    let examples = index.top_examples(&q_emb, &[], 10);
    let expansions: Vec<String> = examples.iter().map(|(e, _)| e.retrieval_text()).collect();
    group.bench_function("instruction_selection_compounding", |b| {
        b.iter(|| {
            let refs: Vec<&str> = expansions.iter().map(|s| s.as_str()).collect();
            let expanded = index.embedder().embed_expanded(question, &refs);
            index.top_instructions(&expanded, &[], 6)
        })
    });
    // … versus independent retrieval (ablation).
    group.bench_function("instruction_selection_independent", |b| {
        b.iter(|| index.top_instructions(&q_emb, &[], 6))
    });

    group.bench_function("schema_rerank_top12", |b| {
        b.iter(|| index.top_schema(&q_emb, 12))
    });
    group.finish();
}

fn bench_model_operators(c: &mut Criterion) {
    let (bundle, index, oracle) = setup();
    let task = bundle.tasks.last().unwrap();
    let mut group = c.benchmark_group("model-operators");

    group.bench_function("reformulate", |b| {
        let prompt = Prompt::new(TaskKind::Reformulate, &task.question);
        b.iter(|| oracle.complete(&CompletionRequest::new(prompt.clone())))
    });

    group.bench_function("plan_generation", |b| {
        let mut prompt = Prompt::new(TaskKind::PlanGeneration, &task.question);
        prompt.examples = index
            .top_examples(&index.embedder().embed(&task.question), &[], 10)
            .into_iter()
            .map(|(e, _)| genedit_llm::PromptExample {
                description: e.description.clone(),
                sql: e.fragment.sql.clone(),
                kind: Some(e.fragment.kind),
                term: e.term.clone(),
            })
            .collect();
        b.iter(|| oracle.complete(&CompletionRequest::new(prompt.clone())))
    });

    group.bench_function("sql_generation", |b| {
        let prompt = Prompt::new(TaskKind::SqlGeneration, &task.question);
        b.iter(|| oracle.complete(&CompletionRequest::new(prompt.clone())))
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let (bundle, index, oracle) = setup();
    let pipeline = GenEditPipeline::new(&oracle);
    let simple = &bundle.tasks[0];
    let challenging = bundle
        .tasks
        .iter()
        .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
        .unwrap();
    let mut group = c.benchmark_group("end-to-end");
    group.bench_function("generate_simple", |b| {
        b.iter(|| pipeline.generate(&simple.question, &index, &bundle.db, &[]))
    });
    group.bench_function("generate_challenging", |b| {
        b.iter(|| pipeline.generate(&challenging.question, &index, &bundle.db, &[]))
    });
    group.finish();
}

fn bench_knowledge(c: &mut Criterion) {
    let (bundle, _, _) = setup();
    let challenging = bundle
        .tasks
        .iter()
        .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
        .unwrap();
    let mut group = c.benchmark_group("knowledge");

    group.bench_function("decompose_challenging_sql", |b| {
        b.iter(|| decompose_sql(&challenging.gold_sql).unwrap())
    });

    // Ablation: pre-processing with vs without decomposition.
    group.bench_function("preprocess_decomposed", |b| {
        let cfg = bundle.preprocess_config();
        b.iter(|| {
            genedit_knowledge::build_knowledge_set(&cfg, &bundle.logs, &bundle.docs, &bundle.db)
                .unwrap()
        })
    });
    group.bench_function("preprocess_full_query", |b| {
        let mut cfg = bundle.preprocess_config();
        cfg.decompose_examples = false;
        b.iter(|| {
            genedit_knowledge::build_knowledge_set(&cfg, &bundle.logs, &bundle.docs, &bundle.db)
                .unwrap()
        })
    });

    group.bench_function("index_build", |b| {
        let ks = bundle.build_knowledge();
        b.iter_batched(|| ks.clone(), KnowledgeIndex::build, BatchSize::SmallInput)
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let (bundle, _, _) = setup();
    let challenging = bundle
        .tasks
        .iter()
        .find(|t| t.difficulty == genedit_llm::Difficulty::Challenging)
        .unwrap();
    let mut group = c.benchmark_group("sql-engine");
    group.bench_function("execute_challenging_gold", |b| {
        b.iter(|| execute_sql(&bundle.db, &challenging.gold_sql).unwrap())
    });
    group.bench_function("parse_challenging_gold", |b| {
        b.iter(|| genedit_sql::parse_statement(&challenging.gold_sql).unwrap())
    });
    let a = execute_sql(&bundle.db, &challenging.gold_sql).unwrap();
    group.bench_function("ex_comparison", |b| b.iter(|| a.ex_equal(&a)));
    group.finish();
}

fn bench_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("suite");
    group.sample_size(10);
    group.bench_function("table1_genedit_small_suite", |b| {
        let workload = Workload::small(42);
        b.iter(|| {
            let harness = genedit_core::Harness::new(&workload);
            harness.run_genedit(Ablation::None).ex(None)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_retrieval_operators,
    bench_model_operators,
    bench_end_to_end,
    bench_knowledge,
    bench_engine,
    bench_suite
);
criterion_main!(benches);
