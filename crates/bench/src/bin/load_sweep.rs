//! **Load sweep**: tail-latency robustness of the serving runtime under
//! a seeded latency-spike schedule — hedged dispatch versus unhedged.
//!
//! Four parts:
//!
//! 1. *Hedged vs unhedged tail* — the same open-loop request stream
//!    (paced at a sustained RPS) pushed through the serving runtime
//!    twice over a spike-injecting model ([`FaultInjector`], spikes
//!    only, seeded): once with [`HedgePolicy::disabled`] and once with
//!    hedging on. **Violation if the hedged run's p99 does not beat the
//!    unhedged p99**, and **violation if hedging costs more than 15%
//!    extra model round trips**.
//! 2. *Byte identity* — every request's semantic fingerprint from the
//!    hedged run must match the unhedged run exactly. **Any divergence
//!    exits nonzero**: a hedge that changes answers is a correctness
//!    bug, not a latency feature.
//! 3. *Self-correcting vote* — the ensemble fan-out run over a model
//!    that sabotages one candidate seed per fan-out (invalid SQL until
//!    correction evidence arrives): **violation if any question returns
//!    something other than the majority candidate's answer**.
//! 4. *Adaptive batching window* — a burst must widen the collection
//!    window above the idle floor; sparse traffic must keep it at the
//!    floor (measured off the `batch.window.ms` histogram).
//!
//! Run: `cargo run --release -p genedit-bench --bin load_sweep`
//! (`--smoke` shrinks the workload for CI, `--json` prints the
//! document; the JSON is always written to `BENCH_load.json`.)

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::{
    CandidateSelection, GenEditPipeline, GenerateOptions, KnowledgeIndex, PipelineConfig,
};
use genedit_llm::{
    AdaptiveWindow, BatchConfig, BatchScheduler, CompletionRequest, CompletionResponse,
    FaultConfig, FaultInjector, HedgePolicy, LanguageModel, ModelError, OracleConfig, OracleModel,
    SystemClock, TaskRegistry,
};
use genedit_llm::{Clock, TaskKind};
use genedit_serve::{ObsConfig, QueryOutcome, QueryRequest, ServeConfig, ServeRuntime};
use genedit_telemetry::{HistogramSummary, MetricsRegistry, SloConfig};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The oracle behind a fixed simulated network round trip — the
/// production profile hedging targets: wall time is model waits, and a
/// duplicate dispatch runs concurrently instead of queueing.
struct RemoteLatencyModel {
    inner: Arc<OracleModel>,
    latency: Duration,
}

impl LanguageModel for RemoteLatencyModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        std::thread::sleep(self.latency);
        self.inner.complete(request)
    }
}

/// Sabotages one candidate seed per ensemble fan-out: SQL-generation
/// calls for seed 2 return unparseable text until the prompt carries
/// correction evidence (a non-empty error section). The majority stays
/// clean, so the self-correction round must recover the dissenter and
/// the vote must return the majority answer.
struct DissentModel {
    inner: Arc<OracleModel>,
}

impl LanguageModel for DissentModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let response = self.inner.complete(request)?;
        if request.prompt.task == TaskKind::SqlGeneration
            && request.seed == 2
            && request.prompt.errors.is_empty()
        {
            if let CompletionResponse::Sql(sql) = &response {
                return Ok(CompletionResponse::Sql(format!("GARBLED<{sql}")));
            }
        }
        Ok(response)
    }
}

struct SweepArgs {
    seed: u64,
    smoke: bool,
    json: bool,
    /// Open-loop arrival rate, requests per second.
    rps: f64,
    /// Requests per load run.
    requests: usize,
}

fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        smoke: false,
        json: false,
        rps: 60.0,
        requests: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--smoke" | "--quick" => parsed.smoke = true,
            "--rps" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.rps = v;
                }
            }
            "--requests" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.requests = v;
                }
            }
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    if parsed.requests == 0 {
        parsed.requests = if parsed.smoke { 60 } else { 240 };
    }
    parsed
}

const BASE_LATENCY: Duration = Duration::from_millis(2);
const SPIKE: Duration = Duration::from_millis(40);
const SPIKE_RATE: f64 = 0.05;
/// Fixed hedge delay: above any batching straggle (window + base
/// latency), far below a spike — only genuinely spiked calls hedge.
const HEDGE_DELAY: Duration = Duration::from_millis(10);
/// SLO latency threshold for the report-only burn-rate tracker: a
/// spiked unhedged request blows it, a hedged one does not.
const SLO_THRESHOLD_MS: f64 = 35.0;

struct Harness {
    bundle: DomainBundle,
    index: Arc<KnowledgeIndex>,
    oracle: Arc<OracleModel>,
}

impl Harness {
    fn build(seed: u64) -> Harness {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), seed);
        let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        Harness {
            bundle,
            index,
            oracle: Arc::new(oracle),
        }
    }

    /// The seeded multi-tenant request stream: tenants round-robin over
    /// the domain's questions, deterministically.
    fn request(&self, i: usize) -> QueryRequest {
        let tasks = &self.bundle.tasks;
        let tenant = format!("tenant-{}", i % 3);
        QueryRequest::new(tenant, &tasks[i % tasks.len()].question)
    }
}

/// Semantic fingerprint of a generation, excluding the trace (span
/// timings legitimately differ). Byte-for-byte comparable.
fn fingerprint(r: &genedit_core::GenerationResult) -> String {
    format!(
        "sql={:?}|reform={:?}|intents={:?}|ex={:?}|ins={:?}|schema={:?}|errors={:?}|validated={}",
        r.sql,
        r.reformulated,
        r.intents,
        r.used_examples,
        r.used_instructions,
        r.used_schema,
        r.errors,
        r.validated
    )
}

struct LoadRow {
    hedged: bool,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    latency_ms: HistogramSummary,
    model_calls: u64,
    spikes: u64,
    hedge_fired: u64,
    hedge_won: u64,
    hedge_wasted: u64,
    slo_fired: u64,
    fingerprints: Vec<String>,
}

/// One open-loop run: `requests` arrivals paced at `rps` into the
/// serving runtime over a spike-injecting model, hedged or not. Latency
/// is each request's queue wait + service time as the runtime measured
/// it.
fn run_load(
    harness: &Harness,
    args: &SweepArgs,
    hedged: bool,
    violations: &mut Vec<String>,
) -> LoadRow {
    let injector = Arc::new(
        FaultInjector::new(
            RemoteLatencyModel {
                inner: Arc::clone(&harness.oracle),
                latency: BASE_LATENCY,
            },
            FaultConfig {
                latency_spike: SPIKE_RATE,
                spike: SPIKE,
                ..FaultConfig::default()
            },
            args.seed,
        )
        .with_clock(Arc::new(SystemClock::new()) as Arc<dyn Clock>),
    );
    let hedge = if hedged {
        HedgePolicy {
            min_delay: HEDGE_DELAY,
            max_delay: HEDGE_DELAY,
            min_observations: 10,
            ..HedgePolicy::default()
        }
    } else {
        HedgePolicy::disabled()
    };
    let runtime = ServeRuntime::start(
        Arc::clone(&injector),
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: 4,
            queue_capacity: args.requests + 8,
            // Caches off so every request exercises the model stack.
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            // Batching passthrough: the simulated backend handles batch
            // items serially, so a collection window here would only
            // blur the spike/hedge separation this part measures. The
            // adaptive window gets its own measurement in part 4.
            batch: BatchConfig::disabled(),
            hedge,
            observability: ObsConfig {
                metrics: true,
                slo: Some(SloConfig::default_rules(
                    "serve.request",
                    0.95,
                    SLO_THRESHOLD_MS,
                )),
                recorder: None,
                dump_path: None,
            },
            ..ServeConfig::default()
        },
    );
    let interarrival = Duration::from_secs_f64(1.0 / args.rps.max(1.0));
    let started = Instant::now();
    let tickets: Vec<_> = (0..args.requests)
        .map(|i| {
            // Open-loop pacing: arrival i is due at started + i/rps,
            // regardless of how the runtime is keeping up.
            let due = started + interarrival * (i as u32);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            runtime
                .submit(harness.request(i))
                .expect("load queue sized to fit the whole request set")
        })
        .collect();
    let mut latencies = Vec::with_capacity(args.requests);
    let mut fingerprints = Vec::with_capacity(args.requests);
    for (i, ticket) in tickets.into_iter().enumerate() {
        match ticket.wait() {
            QueryOutcome::Completed {
                result,
                queue_wait,
                service,
                ..
            } => {
                latencies.push((queue_wait + service).as_secs_f64() * 1e3);
                fingerprints.push(fingerprint(&result));
            }
            other => {
                violations.push(format!(
                    "{} load run lost request {i}: {other:?}",
                    label(hedged)
                ));
                fingerprints.push(format!("lost:{other:?}"));
            }
        }
    }
    let wall = started.elapsed();
    let stats = runtime.hedge_stats();
    let slo_fired = runtime.metrics().counter("serve.slo.fired");
    runtime.shutdown();
    LoadRow {
        hedged,
        requests: args.requests,
        wall_ms: wall.as_secs_f64() * 1e3,
        throughput_rps: args.requests as f64 / wall.as_secs_f64(),
        latency_ms: HistogramSummary::from_samples(&latencies),
        model_calls: injector.log().calls,
        spikes: injector.log().latency_spikes,
        hedge_fired: stats.fired,
        hedge_won: stats.won,
        hedge_wasted: stats.wasted,
        slo_fired,
        fingerprints,
    }
}

fn label(hedged: bool) -> &'static str {
    if hedged {
        "hedged"
    } else {
        "unhedged"
    }
}

struct VoteRow {
    questions: usize,
    corrected_questions: usize,
    minority_returned: usize,
}

/// Part 3: every fan-out carries one sabotaged candidate; the final
/// answer must always be the (clean) majority's, byte for byte.
fn run_vote(harness: &Harness, violations: &mut Vec<String>) -> VoteRow {
    let cfg = PipelineConfig {
        candidates: 3,
        candidate_selection: CandidateSelection::MajorityResult,
        use_plan: false,
        max_retries: 0,
        ..Default::default()
    };
    let opts = GenerateOptions {
        ensemble_width: Some(3),
        ..Default::default()
    };
    let clean = GenEditPipeline::with_config(Arc::clone(&harness.oracle), cfg.clone());
    let dissent = GenEditPipeline::with_config(
        DissentModel {
            inner: Arc::clone(&harness.oracle),
        },
        cfg,
    );
    let questions = harness.bundle.tasks.len().min(8);
    let mut corrected = 0usize;
    let mut minority = 0usize;
    for (i, task) in harness.bundle.tasks.iter().take(questions).enumerate() {
        let majority = clean.generate_with(
            &task.question,
            &harness.index,
            &harness.bundle.db,
            &[],
            &opts,
        );
        let voted = dissent.generate_with(
            &task.question,
            &harness.index,
            &harness.bundle.db,
            &[],
            &opts,
        );
        corrected += 1; // every fan-out had its seed-2 candidate sabotaged
        if voted.sql != majority.sql || voted.validated != majority.validated {
            minority += 1;
            violations.push(format!(
                "vote question {i} returned a non-majority answer: {:?} (majority {:?})",
                voted.sql, majority.sql
            ));
        }
    }
    VoteRow {
        questions,
        corrected_questions: corrected,
        minority_returned: minority,
    }
}

/// A trivial model for the window micro-measurement: the window metric
/// is a property of the scheduler, not the answers.
struct EchoModel;

impl LanguageModel for EchoModel {
    fn name(&self) -> &str {
        "echo"
    }

    fn complete(&self, _request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        std::thread::sleep(Duration::from_micros(200));
        Ok(CompletionResponse::Sql("SELECT 1".into()))
    }
}

struct WindowRow {
    idle_floor_ms: f64,
    burst_window_max_ms: f64,
    idle_window_max_ms: f64,
    burst_largest_batch: u64,
}

/// Part 4: the depth-adaptive collection window must widen above the
/// idle floor under a synchronized burst and stay at the floor for
/// strictly sequential traffic.
fn run_window(violations: &mut Vec<String>) -> WindowRow {
    let adaptive = AdaptiveWindow {
        idle_wait: Duration::from_millis(1),
        loaded_wait: Duration::from_millis(20),
        full_depth: 8,
    };
    let config = BatchConfig {
        max_batch_size: 8,
        max_wait: Duration::from_millis(20),
        adaptive: Some(adaptive.clone()),
        ..BatchConfig::default()
    };
    let idle_floor_ms = adaptive.idle_wait.as_secs_f64() * 1e3;
    let request = CompletionRequest::new(genedit_llm::Prompt::new(
        TaskKind::SqlGeneration,
        "window probe",
    ));

    // Burst: 8 threads hit the scheduler at once, repeatedly.
    let burst_metrics = Arc::new(MetricsRegistry::new());
    let scheduler = Arc::new(
        BatchScheduler::new(EchoModel, config.clone()).with_metrics(Arc::clone(&burst_metrics)),
    );
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let scheduler = Arc::clone(&scheduler);
            let request = request.clone();
            scope.spawn(move || {
                for _ in 0..4 {
                    scheduler.complete(&request).ok();
                }
            });
        }
    });
    let burst_snapshot = burst_metrics.snapshot();
    let burst_window = burst_snapshot.histograms.get("batch.window.ms");
    let burst_window_max_ms = burst_window.map_or(0.0, |h| h.max);
    let burst_largest_batch = burst_snapshot
        .histograms
        .get("batch.size")
        .map_or(0.0, |h| h.max) as u64;

    // Idle: one caller, strictly sequential — depth never exceeds 1.
    let idle_metrics = Arc::new(MetricsRegistry::new());
    let scheduler = BatchScheduler::new(EchoModel, config).with_metrics(Arc::clone(&idle_metrics));
    for _ in 0..8 {
        scheduler.complete(&request).ok();
    }
    let idle_snapshot = idle_metrics.snapshot();
    let idle_window_max_ms = idle_snapshot
        .histograms
        .get("batch.window.ms")
        .map_or(0.0, |h| h.max);

    if burst_window_max_ms <= idle_floor_ms {
        violations.push(format!(
            "adaptive window never widened under a burst: max {burst_window_max_ms:.2}ms \
             vs idle floor {idle_floor_ms:.2}ms"
        ));
    }
    // Log-linear buckets round the floor up slightly; allow 25% slack.
    if idle_window_max_ms > idle_floor_ms * 1.25 {
        violations.push(format!(
            "adaptive window did not shrink back for sparse traffic: max \
             {idle_window_max_ms:.2}ms vs idle floor {idle_floor_ms:.2}ms"
        ));
    }
    WindowRow {
        idle_floor_ms,
        burst_window_max_ms,
        idle_window_max_ms,
        burst_largest_batch,
    }
}

fn histogram_json(h: &HistogramSummary) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::U64(h.count as u64)),
        ("mean".to_string(), Value::F64(h.mean)),
        ("min".to_string(), Value::F64(h.min)),
        ("max".to_string(), Value::F64(h.max)),
        ("p50".to_string(), Value::F64(h.p50)),
        ("p95".to_string(), Value::F64(h.p95)),
        ("p99".to_string(), Value::F64(h.p99)),
    ])
}

fn load_row_json(row: &LoadRow) -> Value {
    Value::Object(vec![
        ("hedged".to_string(), Value::Bool(row.hedged)),
        ("requests".to_string(), Value::U64(row.requests as u64)),
        ("wall_ms".to_string(), Value::F64(row.wall_ms)),
        ("throughput_rps".to_string(), Value::F64(row.throughput_rps)),
        ("latency_ms".to_string(), histogram_json(&row.latency_ms)),
        ("model_calls".to_string(), Value::U64(row.model_calls)),
        ("latency_spikes".to_string(), Value::U64(row.spikes)),
        ("hedge_fired".to_string(), Value::U64(row.hedge_fired)),
        ("hedge_won".to_string(), Value::U64(row.hedge_won)),
        ("hedge_wasted".to_string(), Value::U64(row.hedge_wasted)),
        ("slo_fired".to_string(), Value::U64(row.slo_fired)),
    ])
}

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();
    let harness = Harness::build(args.seed);

    // Parts 1 + 2: the same paced stream, unhedged then hedged.
    let unhedged = run_load(&harness, &args, false, &mut violations);
    let hedged = run_load(&harness, &args, true, &mut violations);

    if hedged.hedge_fired == 0 {
        violations.push("hedged run never fired a hedge over a 5% spike schedule".to_string());
    }
    if hedged.latency_ms.p99 >= unhedged.latency_ms.p99 {
        violations.push(format!(
            "hedged p99 {:.1}ms did not beat unhedged p99 {:.1}ms",
            hedged.latency_ms.p99, unhedged.latency_ms.p99
        ));
    }
    let call_budget = (unhedged.model_calls as f64 * 1.15).ceil() as u64;
    if hedged.model_calls > call_budget {
        violations.push(format!(
            "hedging cost {} model calls, over the 15% budget ({} unhedged, cap {})",
            hedged.model_calls, unhedged.model_calls, call_budget
        ));
    }
    let divergent = unhedged
        .fingerprints
        .iter()
        .zip(&hedged.fingerprints)
        .filter(|(a, b)| a != b)
        .count();
    if divergent > 0 {
        violations.push(format!(
            "{divergent}/{} requests diverged between hedged and unhedged runs",
            args.requests
        ));
    }

    // Part 3: the self-correcting vote never returns a minority answer.
    let vote = run_vote(&harness, &mut violations);

    // Part 4: adaptive batching window.
    let window = run_window(&mut violations);

    let doc = Value::Object(vec![
        ("artifact".to_string(), Value::Str("load_sweep".to_string())),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("rps".to_string(), Value::F64(args.rps)),
        ("requests".to_string(), Value::U64(args.requests as u64)),
        (
            "spike_ms".to_string(),
            Value::F64(SPIKE.as_secs_f64() * 1e3),
        ),
        ("spike_rate".to_string(), Value::F64(SPIKE_RATE)),
        (
            "hedge_delay_ms".to_string(),
            Value::F64(HEDGE_DELAY.as_secs_f64() * 1e3),
        ),
        ("slo_threshold_ms".to_string(), Value::F64(SLO_THRESHOLD_MS)),
        ("unhedged".to_string(), load_row_json(&unhedged)),
        ("hedged".to_string(), load_row_json(&hedged)),
        (
            "p99_improvement_ms".to_string(),
            Value::F64(unhedged.latency_ms.p99 - hedged.latency_ms.p99),
        ),
        (
            "extra_round_trip_fraction".to_string(),
            Value::F64(hedged.model_calls as f64 / unhedged.model_calls.max(1) as f64 - 1.0),
        ),
        ("byte_identical".to_string(), Value::Bool(divergent == 0)),
        (
            "vote".to_string(),
            Value::Object(vec![
                ("questions".to_string(), Value::U64(vote.questions as u64)),
                (
                    "corrected_questions".to_string(),
                    Value::U64(vote.corrected_questions as u64),
                ),
                (
                    "minority_returned".to_string(),
                    Value::U64(vote.minority_returned as u64),
                ),
            ]),
        ),
        (
            "adaptive_window".to_string(),
            Value::Object(vec![
                (
                    "idle_floor_ms".to_string(),
                    Value::F64(window.idle_floor_ms),
                ),
                (
                    "burst_window_max_ms".to_string(),
                    Value::F64(window.burst_window_max_ms),
                ),
                (
                    "idle_window_max_ms".to_string(),
                    Value::F64(window.idle_window_max_ms),
                ),
                (
                    "burst_largest_batch".to_string(),
                    Value::U64(window.burst_largest_batch),
                ),
            ]),
        ),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_load.json", &json) {
        eprintln!("warning: could not write BENCH_load.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Load sweep — {} requests at {:.0} rps, {:.0}ms spikes at {:.0}% (seed {})",
            args.requests,
            args.rps,
            SPIKE.as_secs_f64() * 1e3,
            SPIKE_RATE * 100.0,
            args.seed
        );
        for row in [&unhedged, &hedged] {
            println!(
                "  {:>8}: p50 {:6.1}ms  p95 {:6.1}ms  p99 {:6.1}ms  {} calls  \
                 {} spikes  hedge {}/{} won/fired  slo fired {}",
                label(row.hedged),
                row.latency_ms.p50,
                row.latency_ms.p95,
                row.latency_ms.p99,
                row.model_calls,
                row.spikes,
                row.hedge_won,
                row.hedge_fired,
                row.slo_fired,
            );
        }
        println!(
            "  p99 improvement: {:.1}ms; extra round trips: {:.1}% (budget 15%); \
             byte-identical: {}",
            unhedged.latency_ms.p99 - hedged.latency_ms.p99,
            (hedged.model_calls as f64 / unhedged.model_calls.max(1) as f64 - 1.0) * 100.0,
            divergent == 0
        );
        println!(
            "  vote: {}/{} questions returned the majority answer despite a sabotaged candidate",
            vote.questions - vote.minority_returned,
            vote.questions
        );
        println!(
            "  adaptive window: burst max {:.2}ms vs idle floor {:.2}ms (idle max {:.2}ms, \
             largest burst batch {})",
            window.burst_window_max_ms,
            window.idle_floor_ms,
            window.idle_window_max_ms,
            window.burst_largest_batch
        );
        if violations.is_empty() {
            println!("\nall load invariants held");
        } else {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
