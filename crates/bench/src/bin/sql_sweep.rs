//! **SQL engine sweep**: gates the vectorized columnar executor against
//! the row-at-a-time reference interpreter.
//!
//! Two parts, each with a hard gate (violations exit nonzero):
//!
//! 1. *Throughput floors* — three synthetic workloads (wide scan,
//!    join-heavy, aggregate-heavy) timed on both engines (min of N
//!    repetitions). The vectorized engine must clear a **5x** speedup
//!    floor on each, and the two engines' results must be byte-identical
//!    on every workload query. The floor is enforced in full mode only:
//!    `--smoke` shrinks tables to a size where fixed per-query overheads
//!    dominate the timings, so its speedups are reported informationally
//!    while every correctness gate still applies.
//! 2. *Differential correctness over the gold suite* — every gold query
//!    of the standard benchmark workload (`Workload::standard`, the
//!    paper-scale 93/28/11 task mix across four domains; `--smoke` uses
//!    `Workload::small`) is executed through both engines. Results must
//!    be byte-identical: same column names, same rows in the same order
//!    (values compared by exact debug rendering, so `-0.0`, `NaN`, and
//!    Integer-vs-Float typing cannot drift), and equal EX fingerprints.
//!
//! Run: `cargo run --release -p genedit-bench --bin sql_sweep`
//! (`--smoke` shrinks the workload for CI, `--json` prints the
//! document; the JSON is always written to `BENCH_sql.json`.)

use genedit_bird::Workload;
use genedit_sql::value::{DataType, Value as SqlValue};
use genedit_sql::{execute_sql, execute_sql_reference, Column, Database, ResultSet, Table};
use serde_json::Value;
use std::time::Instant;

const FLOOR: f64 = 5.0;

// ---------------------------------------------------------------------
// args + seeded PRNG
// ---------------------------------------------------------------------

struct SweepArgs {
    seed: u64,
    smoke: bool,
    json: bool,
}

fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        smoke: false,
        json: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--smoke" | "--quick" => parsed.smoke = true,
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    parsed
}

/// xorshift64*: tiny, seeded, deterministic table contents.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------
// Result identity
// ---------------------------------------------------------------------

/// Exact rendering of a result set: column names plus every value's
/// debug form. Distinguishes `Integer(2)` from `Float(2.0)` and keeps
/// `-0.0` / `NaN` visible, so "byte-identical" means what it says.
fn render(rs: &ResultSet) -> String {
    let mut out = format!("{:?}\n", rs.columns);
    for row in &rs.rows {
        out.push_str(&format!("{row:?}\n"));
    }
    out
}

/// Run `sql` on both engines and require identical output (or identical
/// failure). Returns the vectorized wall time in seconds when both
/// succeed.
fn check_identical(db: &Database, sql: &str, label: &str, violations: &mut Vec<String>) {
    let vectorized = execute_sql(db, sql);
    let reference = execute_sql_reference(db, sql);
    match (vectorized, reference) {
        (Ok(v), Ok(r)) => {
            if render(&v) != render(&r) {
                violations.push(format!(
                    "{label}: engines returned different results: {sql}"
                ));
            } else if v.fingerprint() != r.fingerprint() {
                violations.push(format!("{label}: EX fingerprints diverged: {sql}"));
            }
        }
        (Err(_), Err(_)) => {}
        (Ok(_), Err(e)) => {
            violations.push(format!(
                "{label}: vectorized succeeded but reference failed ({e}): {sql}"
            ));
        }
        (Err(e), Ok(_)) => {
            violations.push(format!(
                "{label}: reference succeeded but vectorized failed ({e}): {sql}"
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Part 1: throughput floors on synthetic workloads
// ---------------------------------------------------------------------

struct BenchRow {
    workload: &'static str,
    rows: usize,
    query: &'static str,
    vectorized_ms: f64,
    reference_ms: f64,
    vectorized_rows_per_sec: f64,
    reference_rows_per_sec: f64,
    speedup: f64,
}

/// Wide table: 8 integer measure columns + a float + a selective filter
/// column, exercising the scan/filter/project pure path.
fn build_wide(rows: usize, seed: u64) -> Database {
    let mut rng = Rng::new(seed ^ 0x5ca1_ab1e);
    let mut cols = vec![Column::new("SEL", DataType::Integer)];
    for i in 0..8 {
        cols.push(Column::new(format!("M{i}"), DataType::Integer));
    }
    cols.push(Column::new("F", DataType::Float));
    let mut t = Table::new("WIDE", cols);
    for _ in 0..rows {
        let mut row = vec![SqlValue::Integer(rng.below(100) as i64)];
        for _ in 0..8 {
            row.push(SqlValue::Integer(rng.below(1_000) as i64 - 500));
        }
        row.push(SqlValue::Float(rng.f64() * 100.0));
        t.push_row(row).expect("wide row arity matches schema");
    }
    let mut db = Database::new("bench_wide");
    db.add_table(t).expect("fresh database accepts WIDE");
    db
}

/// Star pair: a fact table with a dimension key (plus NULLs and misses)
/// and a small dimension, exercising the hash equi-join.
fn build_join(fact_rows: usize, dim_rows: usize, seed: u64) -> Database {
    let mut rng = Rng::new(seed ^ 0x0dd_ba11);
    let mut dim = Table::new(
        "DIM",
        vec![
            Column::new("K", DataType::Integer),
            Column::new("NAME", DataType::Text),
        ],
    );
    for k in 0..dim_rows {
        dim.push_row(vec![
            SqlValue::Integer(k as i64),
            SqlValue::Text(format!("dim-{k}")),
        ])
        .expect("dim row arity matches schema");
    }
    let mut fact = Table::new(
        "FACT",
        vec![
            Column::new("K", DataType::Integer),
            Column::new("V", DataType::Integer),
        ],
    );
    for _ in 0..fact_rows {
        // ~2% NULL keys, ~8% dangling keys: both must behave identically
        // across engines (NULLs never match; dangling keys pad on LEFT).
        let k = match rng.below(50) {
            0 => SqlValue::Null,
            1..=4 => SqlValue::Integer((dim_rows + rng.below(100) as usize) as i64),
            _ => SqlValue::Integer(rng.below(dim_rows as u64) as i64),
        };
        fact.push_row(vec![k, SqlValue::Integer(rng.below(1_000) as i64)])
            .expect("fact row arity matches schema");
    }
    let mut db = Database::new("bench_join");
    db.add_table(dim).expect("fresh database accepts DIM");
    db.add_table(fact).expect("fresh database accepts FACT");
    db
}

/// Grouping table: a low-cardinality text group key (with `|`-bearing
/// values) and two measures, exercising hash aggregation.
fn build_agg(rows: usize, seed: u64) -> Database {
    let mut rng = Rng::new(seed ^ 0xa99_a99);
    let mut t = Table::new(
        "EVENTS",
        vec![
            Column::new("G", DataType::Text),
            Column::new("V", DataType::Integer),
            Column::new("W", DataType::Float),
        ],
    );
    for _ in 0..rows {
        let g = match rng.below(64) {
            0 => SqlValue::Null,
            1 => SqlValue::Text("g|1".to_string()),
            n => SqlValue::Text(format!("g{}", n % 24)),
        };
        t.push_row(vec![
            g,
            SqlValue::Integer(rng.below(1_000) as i64),
            SqlValue::Float(rng.f64() * 10.0),
        ])
        .expect("events row arity matches schema");
    }
    let mut db = Database::new("bench_agg");
    db.add_table(t).expect("fresh database accepts EVENTS");
    db
}

/// Min-of-N wall time for one engine, in milliseconds.
fn time_query(db: &Database, sql: &str, reps: usize, reference: bool) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        let out = if reference {
            execute_sql_reference(db, sql)
        } else {
            execute_sql(db, sql)
        };
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        assert!(out.is_ok(), "bench query must succeed: {sql}");
        best = best.min(elapsed);
    }
    best
}

fn throughput(seed: u64, smoke: bool, violations: &mut Vec<String>) -> Vec<BenchRow> {
    let scale = if smoke { 1 } else { 8 };
    let reps = if smoke { 3 } else { 5 };
    let specs: Vec<(&'static str, Database, usize, &'static str)> = vec![
        (
            "wide_scan",
            build_wide(6_000 * scale, seed),
            6_000 * scale,
            "SELECT M0 + M1 AS S01, M2 * 2 AS D2, M3 - M4 AS S34, M5, M6, M7, F \
             FROM WIDE WHERE SEL < 20",
        ),
        (
            "join_heavy",
            build_join(3_000 * scale, 400 * scale, seed),
            3_000 * scale,
            "SELECT DIM.NAME, FACT.V FROM FACT JOIN DIM ON FACT.K = DIM.K WHERE FACT.V < 900",
        ),
        (
            "aggregate_heavy",
            build_agg(6_000 * scale, seed),
            6_000 * scale,
            "SELECT G, COUNT(*) AS N, SUM(V) AS SV, AVG(W) AS AW, MIN(V) AS LO, MAX(V) AS HI \
             FROM EVENTS GROUP BY G ORDER BY 2 DESC, 1",
        ),
    ];

    let mut out = Vec::new();
    for (name, db, rows, sql) in &specs {
        // Identity first — a fast wrong answer must not pass the gate.
        check_identical(db, sql, name, violations);
        let vec_ms = time_query(db, sql, reps, false);
        let ref_ms = time_query(db, sql, reps, true);
        let speedup = ref_ms / vec_ms.max(1e-9);
        // Timing floors need full-size tables; smoke-scale runs are
        // dominated by fixed per-query overheads (see module docs).
        if !smoke && speedup < FLOOR {
            violations.push(format!(
                "{name}: vectorized speedup {speedup:.2}x is under the {FLOOR:.1}x floor \
                 ({vec_ms:.2}ms vs {ref_ms:.2}ms over {rows} rows)"
            ));
        }
        out.push(BenchRow {
            workload: name,
            rows: *rows,
            query: sql,
            vectorized_ms: vec_ms,
            reference_ms: ref_ms,
            vectorized_rows_per_sec: *rows as f64 / (vec_ms / 1e3),
            reference_rows_per_sec: *rows as f64 / (ref_ms / 1e3),
            speedup,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Part 2: differential correctness over the gold suite
// ---------------------------------------------------------------------

struct DifferentialRow {
    tasks: usize,
    domains: usize,
    identical: usize,
    both_failed: usize,
}

fn gold_differential(seed: u64, smoke: bool, violations: &mut Vec<String>) -> DifferentialRow {
    let workload = if smoke {
        Workload::small(seed)
    } else {
        Workload::standard(seed)
    };
    let mut tasks = 0usize;
    let mut identical = 0usize;
    let mut both_failed = 0usize;
    for bundle in &workload.domains {
        for task in &bundle.tasks {
            tasks += 1;
            let vectorized = execute_sql(&bundle.db, &task.gold_sql);
            let reference = execute_sql_reference(&bundle.db, &task.gold_sql);
            match (vectorized, reference) {
                (Ok(v), Ok(r)) => {
                    if render(&v) != render(&r) || v.fingerprint() != r.fingerprint() {
                        violations.push(format!(
                            "gold task {} diverged between engines: {}",
                            task.task_id, task.gold_sql
                        ));
                    } else {
                        identical += 1;
                    }
                }
                (Err(_), Err(_)) => both_failed += 1,
                (Ok(_), Err(e)) => violations.push(format!(
                    "gold task {}: vectorized succeeded but reference failed ({e}): {}",
                    task.task_id, task.gold_sql
                )),
                (Err(e), Ok(_)) => violations.push(format!(
                    "gold task {}: reference succeeded but vectorized failed ({e}): {}",
                    task.task_id, task.gold_sql
                )),
            }
        }
    }
    if identical == 0 {
        violations
            .push("gold differential compared zero successful tasks — gate is vacuous".into());
    }
    DifferentialRow {
        tasks,
        domains: workload.domains.len(),
        identical,
        both_failed,
    }
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();

    let bench = throughput(args.seed, args.smoke, &mut violations);
    let differential = gold_differential(args.seed, args.smoke, &mut violations);

    let doc = Value::Object(vec![
        ("artifact".to_string(), Value::Str("sql_sweep".to_string())),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("speedup_floor".to_string(), Value::F64(FLOOR)),
        (
            "speedup_floor_enforced".to_string(),
            Value::Bool(!args.smoke),
        ),
        (
            "throughput".to_string(),
            Value::Array(
                bench
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("workload".to_string(), Value::Str(r.workload.to_string())),
                            ("rows".to_string(), Value::U64(r.rows as u64)),
                            ("query".to_string(), Value::Str(r.query.to_string())),
                            ("vectorized_ms".to_string(), Value::F64(r.vectorized_ms)),
                            ("reference_ms".to_string(), Value::F64(r.reference_ms)),
                            (
                                "vectorized_rows_per_sec".to_string(),
                                Value::F64(r.vectorized_rows_per_sec),
                            ),
                            (
                                "reference_rows_per_sec".to_string(),
                                Value::F64(r.reference_rows_per_sec),
                            ),
                            ("speedup".to_string(), Value::F64(r.speedup)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "gold_differential".to_string(),
            Value::Object(vec![
                (
                    "domains".to_string(),
                    Value::U64(differential.domains as u64),
                ),
                ("tasks".to_string(), Value::U64(differential.tasks as u64)),
                (
                    "identical".to_string(),
                    Value::U64(differential.identical as u64),
                ),
                (
                    "both_failed".to_string(),
                    Value::U64(differential.both_failed as u64),
                ),
            ]),
        ),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_sql.json", &json) {
        eprintln!("warning: could not write BENCH_sql.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "SQL engine sweep — seed {}, {} mode",
            args.seed,
            if args.smoke { "smoke" } else { "full" }
        );
        if args.smoke {
            println!(
                "\nthroughput (informational at smoke scale; {FLOOR:.1}x floor gates full mode):"
            );
        } else {
            println!("\nthroughput (floor {FLOOR:.1}x):");
        }
        for r in &bench {
            println!(
                "  {:<16} {:>7} rows  vectorized {:>8.2}ms ({:>10.0} rows/s)  \
                 reference {:>8.2}ms ({:>9.0} rows/s)  {:>6.2}x",
                r.workload,
                r.rows,
                r.vectorized_ms,
                r.vectorized_rows_per_sec,
                r.reference_ms,
                r.reference_rows_per_sec,
                r.speedup
            );
        }
        println!(
            "\ngold differential: {}/{} tasks byte-identical across {} domains \
             ({} failed on both engines)",
            differential.identical,
            differential.tasks,
            differential.domains,
            differential.both_failed
        );
        if violations.is_empty() {
            println!("\nall sql gates held");
        } else {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
