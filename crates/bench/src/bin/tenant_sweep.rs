//! **Tenant sweep**: the disk-backed sharded tenant store under a
//! many-tenant working set that is far larger than the buffer pool.
//!
//! The sweep seeds thousands of synthetic tenants (each with its own
//! WAL, page file, and knowledge content) through the paging layer,
//! then restarts with a cold buffer pool and measures cold-tenant
//! page-ins. Three gates, all hard (any violation exits 1):
//!
//! 1. **Residency** — the pool's resident bytes never exceed its
//!    configured budget, no matter how many tenants page through it.
//! 2. **Cold page-in latency** — p99 of snapshot-open + full content
//!    read for a cold tenant stays under a floor (smoke: generous, for
//!    shared CI runners).
//! 3. **Byte-identical retrieval** — for sampled tenants, a retrieval
//!    index built from the paged-in snapshot (including the
//!    stored-vector fast path after write-back) returns bit-identical
//!    results to an index built from the tenant's WAL-recovered
//!    knowledge set held entirely in RAM.
//!
//! Run: `cargo run --release -p genedit-bench --bin tenant_sweep`
//! (`--tenants N` overrides the tenant count, `--smoke` = 300 tenants
//! for CI, `--json` prints the document; the JSON is always written to
//! `BENCH_tenant.json`.)

use genedit_core::KnowledgeIndex;
use genedit_knowledge::tenants::{TenantKnowledgeStore, TenantStoreConfig};
use genedit_knowledge::{
    DurableKnowledgeStore, Edit, FragmentKind, FsyncPolicy, SourceRef, SqlFragment, StagingArea,
    StoreConfig, StoreFs,
};
use serde_json::Value;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Pool budget for the sweep: small enough that even the smoke run's
/// working set exceeds it many times over.
const POOL_BUDGET: usize = 256 * 1024;
const PAGE_SIZE: usize = 4096;

/// Cold page-in p99 floor, milliseconds. Local page files are a handful
/// of KiB; generous headroom for shared CI runners.
const P99_FLOOR_MS: f64 = 50.0;

fn edit(tenant: usize, i: usize) -> Edit {
    Edit::InsertExample {
        intent: None,
        description: format!("tenant {tenant} metric {i} revenue by region"),
        fragment: SqlFragment::new(
            FragmentKind::Where,
            format!("WHERE T{tenant} = {i}"),
            "main",
        ),
        term: Some(format!("KPI{tenant}_{i}")),
        source: SourceRef::Manual,
    }
}

fn tenant_name(i: usize) -> String {
    format!("tenant-{i:05}")
}

fn store_over(root: &Path, fsync: FsyncPolicy) -> Arc<TenantKnowledgeStore> {
    let config = TenantStoreConfig {
        page_size: PAGE_SIZE,
        pool_budget_bytes: POOL_BUDGET,
        shards: 16,
        store: StoreConfig {
            fsync,
            ..StoreConfig::default()
        },
    };
    Arc::new(TenantKnowledgeStore::open(root.to_path_buf(), config, None))
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ms.len() as f64) * p).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Fingerprint of a retrieval run: ids and exact score bits of the top
/// examples for a probe query. Byte-identical retrieval means equal
/// fingerprints.
fn retrieval_fingerprint(index: &KnowledgeIndex, query: &str) -> String {
    let q = index.embedder().embed(query);
    index
        .top_examples(&q, &[], 3)
        .iter()
        .map(|(e, score)| format!("{}:{:08x}", e.id, score.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

struct SweepArgs {
    seed: u64,
    tenants: usize,
    json: bool,
    smoke: bool,
}

/// Parses its own arguments so `--tenants N` is not eaten by the shared
/// bare-integer-is-the-seed convention.
fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        tenants: 10_000,
        json: false,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--smoke" => parsed.smoke = true,
            "--tenants" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.tenants = v;
                }
            }
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    if parsed.smoke {
        parsed.tenants = parsed.tenants.min(300);
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();

    let root = std::env::temp_dir().join(format!(
        "genedit_tenant_sweep_{}_{}",
        std::process::id(),
        args.seed
    ));
    let _ = std::fs::remove_dir_all(&root);

    // Phase 1: seed. Edits-per-tenant varies 2..=5 so page counts differ.
    let seed_store = store_over(&root, FsyncPolicy::Never);
    let seed_started = Instant::now();
    for t in 0..args.tenants {
        let edits = 2 + (t + args.seed as usize) % 4;
        let mut area = StagingArea::new();
        for i in 0..edits {
            area.stage(edit(t, i));
        }
        seed_store
            .commit(&tenant_name(t), area, "seed")
            .expect("seeding a healthy fs");
    }
    let seed_s = seed_started.elapsed().as_secs_f64();
    let max_resident_seed = seed_store.pool().stats().resident_bytes;
    drop(seed_store);

    // Phase 2: cold restart — fresh process image, empty buffer pool.
    let store = store_over(&root, FsyncPolicy::Always);
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(args.tenants);
    let mut max_resident = 0usize;
    let read_started = Instant::now();
    for t in 0..args.tenants {
        let name = tenant_name(t);
        let started = Instant::now();
        let snap = store.snapshot(&name).expect("cold snapshot");
        let content = snap.content().expect("cold read");
        latencies_ms.push(started.elapsed().as_secs_f64() * 1e3);
        let expected = 2 + (t + args.seed as usize) % 4;
        if content.examples.len() != expected {
            violations.push(format!(
                "{name}: paged-in content has {} examples, seeded {expected}",
                content.examples.len()
            ));
        }
        max_resident = max_resident.max(store.pool().stats().resident_bytes);
    }
    let read_s = read_started.elapsed().as_secs_f64();
    let pool_stats = store.pool().stats();

    // Gate 1: residency under the budget, at every observation point.
    if max_resident > POOL_BUDGET || max_resident_seed > POOL_BUDGET {
        violations.push(format!(
            "pool resident bytes exceeded budget: read {} / seed {} > {POOL_BUDGET}",
            max_resident, max_resident_seed
        ));
    }

    // Gate 2: cold page-in p99 under the floor.
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&latencies_ms, 0.50);
    let p99 = percentile(&latencies_ms, 0.99);
    if p99 > P99_FLOOR_MS {
        violations.push(format!(
            "cold page-in p99 {p99:.2} ms exceeds the {P99_FLOOR_MS:.0} ms floor"
        ));
    }

    // Gate 3: byte-identical retrieval vs the all-in-RAM path, on a
    // deterministic sample. Two cold loads per tenant: the first pages
    // in and writes vectors back, the second exercises the
    // stored-vector fast path.
    let sample_every = (args.tenants / 64).max(1);
    let mut sampled = 0usize;
    for t in (0..args.tenants).step_by(sample_every) {
        sampled += 1;
        let name = tenant_name(t);
        let probe = format!("tenant {t} revenue by region");

        let snap = store.snapshot(&name).expect("sample snapshot");
        let paged = KnowledgeIndex::from_snapshot(&snap).expect("paged index");
        drop(snap);
        let _ = store.put_vectors(
            &name,
            store.epoch(&name).expect("epoch"),
            &paged.export_vectors(),
        );
        store.forget(&name);
        let snap = store.snapshot(&name).expect("stored-vector snapshot");
        let from_vectors = KnowledgeIndex::from_snapshot(&snap).expect("stored-vector index");
        drop(snap);

        let fs: Arc<dyn StoreFs> = Arc::new(genedit_knowledge::RealFs::new());
        let truth = DurableKnowledgeStore::open_with(
            fs,
            root.join(&name).join("knowledge.json"),
            root.join(&name).join("knowledge.wal"),
            StoreConfig::default(),
            None,
        )
        .expect("WAL truth");
        let in_ram = KnowledgeIndex::build(truth.set().clone());

        let want = retrieval_fingerprint(&in_ram, &probe);
        let got_paged = retrieval_fingerprint(&paged, &probe);
        let got_vectors = retrieval_fingerprint(&from_vectors, &probe);
        if got_paged != want {
            violations.push(format!(
                "{name}: paged-in retrieval diverged ({got_paged} != {want})"
            ));
        }
        if got_vectors != want {
            violations.push(format!(
                "{name}: stored-vector retrieval diverged ({got_vectors} != {want})"
            ));
        }
    }

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("tenant_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("tenants".to_string(), Value::U64(args.tenants as u64)),
        (
            "pool_budget_bytes".to_string(),
            Value::U64(POOL_BUDGET as u64),
        ),
        ("page_size".to_string(), Value::U64(PAGE_SIZE as u64)),
        ("seed_seconds".to_string(), Value::F64(seed_s)),
        ("cold_read_seconds".to_string(), Value::F64(read_s)),
        (
            "max_resident_bytes".to_string(),
            Value::U64(max_resident.max(max_resident_seed) as u64),
        ),
        ("page_in_p50_ms".to_string(), Value::F64(p50)),
        ("page_in_p99_ms".to_string(), Value::F64(p99)),
        ("p99_floor_ms".to_string(), Value::F64(P99_FLOOR_MS)),
        ("pool_hits".to_string(), Value::U64(pool_stats.hits)),
        ("pool_misses".to_string(), Value::U64(pool_stats.misses)),
        (
            "pool_evictions".to_string(),
            Value::U64(pool_stats.evictions),
        ),
        ("retrieval_samples".to_string(), Value::U64(sampled as u64)),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_tenant.json", &json) {
        eprintln!("warning: could not write BENCH_tenant.json: {err}");
    }

    let _ = std::fs::remove_dir_all(&root);

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Tenant sweep — {} disk-backed tenants through a {} KiB buffer pool \
             (page size {} B, seed {})",
            args.tenants,
            POOL_BUDGET / 1024,
            PAGE_SIZE,
            args.seed
        );
        println!(
            "  seeding: {seed_s:.1} s   cold reads: {read_s:.1} s \
             ({:.0} page-ins/s)",
            args.tenants as f64 / read_s.max(1e-9)
        );
        println!(
            "  residency: max {} / budget {} bytes  {}",
            max_resident.max(max_resident_seed),
            POOL_BUDGET,
            if max_resident.max(max_resident_seed) <= POOL_BUDGET {
                "PASS"
            } else {
                "FAIL"
            }
        );
        println!(
            "  cold page-in: p50 {p50:.2} ms  p99 {p99:.2} ms (floor {P99_FLOOR_MS:.0} ms)  {}",
            if p99 <= P99_FLOOR_MS { "PASS" } else { "FAIL" }
        );
        println!(
            "  pool: {} hits / {} misses / {} evictions",
            pool_stats.hits, pool_stats.misses, pool_stats.evictions
        );
        println!(
            "  retrieval: {sampled} sampled tenants byte-identical vs all-in-RAM  {}",
            if violations.iter().any(|v| v.contains("retrieval")) {
                "FAIL"
            } else {
                "PASS"
            }
        );
        if !violations.is_empty() {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
        println!("wrote BENCH_tenant.json");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
