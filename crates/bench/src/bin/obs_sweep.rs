//! **Observability sweep**: gates the telemetry plane the serving
//! runtime reports through.
//!
//! Four parts, each with a hard gate (violations exit nonzero):
//!
//! 1. *Percentile accuracy* — seeded workload distributions (uniform,
//!    exponential, lognormal, bimodal, heavy-tail) pushed through the
//!    bounded log-linear histogram; every dashboard percentile
//!    (p50/p90/p95/p99/p99.9) must sit within the structural error
//!    bound (1/128 < 1%) of the exact nearest-rank oracle.
//! 2. *Instrumentation overhead* — the same serve workload run with the
//!    full observability plane on (metrics + SLO tracker + flight
//!    recorder) and with a no-op registry. Violation if the instrumented
//!    run costs more than 3% extra wall clock (min of 3 repetitions, so
//!    scheduler noise cancels). A per-call microbenchmark of
//!    `observe()` is reported alongside.
//! 3. *Flight recorder* — a fault-injected serve workload (transient
//!    model errors → degraded/errored generations). Violation if any
//!    error/degraded request is missing from the recorder, if an
//!    interesting trace was evicted, or if memory exceeded the
//!    configured rings. A second run with an always-failing model
//!    deterministically breaches the SLO: the burn-rate alert must fire
//!    and dump the recorder to `BENCH_obs_recorder.jsonl` (the artifact
//!    `trace_report --recorder` renders).
//! 4. *Burn-rate determinism* — a scripted traffic schedule driven
//!    through [`SloTracker`] under a `SimulatedClock`, twice. Violation
//!    unless both runs produce the identical fire→resolve transition
//!    schedule (exactly one Fired during the burn, one Resolved after).
//!
//! Run: `cargo run --release -p genedit-bench --bin obs_sweep`
//! (`--smoke` shrinks the workload for CI, `--json` prints the
//! document; the JSON is always written to `BENCH_obs.json`.)

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::KnowledgeIndex;
use genedit_llm::{
    CompletionRequest, CompletionResponse, FaultConfig, FaultInjector, LanguageModel, ModelError,
    OracleConfig, OracleModel, TaskRegistry,
};
use genedit_serve::{ObsConfig, QueryRequest, ServeConfig, ServeRuntime};
use genedit_telemetry::hist::MAX_RELATIVE_ERROR;
use genedit_telemetry::metrics::nearest_rank;
use genedit_telemetry::recorder::dump_from_jsonl;
use genedit_telemetry::slo::{AlertTransition, BurnRateRule};
use genedit_telemetry::{
    LogLinearHistogram, MetricsRegistry, RecorderConfig, RequestVerdict, SimulatedClock, SloConfig,
    SloTracker,
};
use serde_json::Value;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

const DUMP_PATH: &str = "BENCH_obs_recorder.jsonl";

// ---------------------------------------------------------------------
// args + seeded PRNG
// ---------------------------------------------------------------------

struct SweepArgs {
    seed: u64,
    smoke: bool,
    json: bool,
}

fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        smoke: false,
        json: false,
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--smoke" | "--quick" => parsed.smoke = true,
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    parsed
}

/// xorshift64*: tiny, seeded, and good enough to shape distributions.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in [0, 1).
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Approximate standard normal (Irwin–Hall over 12 uniforms).
    fn normal(&mut self) -> f64 {
        (0..12).map(|_| self.f64()).sum::<f64>() - 6.0
    }
}

// ---------------------------------------------------------------------
// Part 1: percentile accuracy vs exact nearest rank
// ---------------------------------------------------------------------

struct PercentileRow {
    distribution: &'static str,
    samples: usize,
    max_rel_error: f64,
    worst_percentile: f64,
}

/// A named seeded sample generator for one latency-shaped distribution.
type Sampler = (&'static str, Box<dyn Fn(&mut Rng) -> f64>);

fn percentile_accuracy(
    seed: u64,
    samples: usize,
    violations: &mut Vec<String>,
) -> Vec<PercentileRow> {
    let distributions: Vec<Sampler> = vec![
        ("uniform", Box::new(|r: &mut Rng| 0.1 + 999.9 * r.f64())),
        (
            "exponential",
            Box::new(|r: &mut Rng| -50.0 * (1.0 - r.f64()).max(1e-12).ln()),
        ),
        (
            "lognormal",
            Box::new(|r: &mut Rng| (3.0 + r.normal()).exp()),
        ),
        (
            "bimodal",
            Box::new(|r: &mut Rng| {
                if r.f64() < 0.8 {
                    (10.0 + r.normal()).abs() + 0.01
                } else {
                    500.0 + 50.0 * r.normal()
                }
            }),
        ),
        (
            "heavy_tail",
            Box::new(|r: &mut Rng| 0.5 * (1.0 - r.f64()).max(1e-9).powf(-1.0 / 1.5)),
        ),
    ];
    let percentiles = [50.0, 90.0, 95.0, 99.0, 99.9];
    let mut rows = Vec::new();
    for (i, (name, gen)) in distributions.iter().enumerate() {
        let mut rng = Rng::new(seed ^ (0x9e37_79b9 + i as u64));
        let hist = LogLinearHistogram::new();
        let mut values = Vec::with_capacity(samples);
        for _ in 0..samples {
            let v = gen(&mut rng);
            hist.observe(v);
            values.push(v);
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        let snapshot = hist.snapshot();
        let mut max_rel = 0.0f64;
        let mut worst_p = percentiles[0];
        for &p in &percentiles {
            let exact = nearest_rank(&values, p);
            let approx = snapshot.percentile(p);
            let rel = (approx - exact).abs() / exact.abs().max(1e-12);
            if rel > max_rel {
                max_rel = rel;
                worst_p = p;
            }
        }
        if max_rel > MAX_RELATIVE_ERROR {
            violations.push(format!(
                "{name}: p{worst_p} relative error {max_rel:.5} exceeds the \
                 {MAX_RELATIVE_ERROR:.5} bound"
            ));
        }
        rows.push(PercentileRow {
            distribution: name,
            samples,
            max_rel_error: max_rel,
            worst_percentile: worst_p,
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Part 2: instrumentation overhead on the serve workload
// ---------------------------------------------------------------------

/// Fixed per-call latency standing in for the remote LLM round trip —
/// the production profile the 3% overhead budget is defined against.
struct RemoteLatencyModel {
    inner: Arc<OracleModel>,
    latency: Duration,
}

impl LanguageModel for RemoteLatencyModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        std::thread::sleep(self.latency);
        self.inner.complete(request)
    }
}

struct ObsHarness {
    bundle: DomainBundle,
    index: Arc<KnowledgeIndex>,
    oracle: Arc<OracleModel>,
}

impl ObsHarness {
    fn build(seed: u64) -> ObsHarness {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), seed);
        let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        ObsHarness {
            bundle,
            index,
            oracle: Arc::new(oracle),
        }
    }

    fn request(&self, i: usize) -> QueryRequest {
        let tasks = &self.bundle.tasks;
        QueryRequest::new(
            format!("tenant-{}", i % 3),
            &tasks[i % tasks.len()].question,
        )
    }

    /// Full observability plane: metrics, an SLO tracker, and a
    /// recorder that samples every normal request (worst case).
    fn full_obs(&self) -> ObsConfig {
        ObsConfig {
            metrics: true,
            slo: Some(SloConfig::default_rules("serve.request", 0.99, 30_000.0)),
            recorder: Some(RecorderConfig {
                keep_normal_one_in: 1,
                ..RecorderConfig::default()
            }),
            dump_path: None,
        }
    }

    fn run_workload(&self, requests: usize, latency: Duration, observability: ObsConfig) -> f64 {
        let runtime = ServeRuntime::start(
            RemoteLatencyModel {
                inner: Arc::clone(&self.oracle),
                latency,
            },
            Arc::clone(&self.index),
            0,
            Arc::new(self.bundle.db.clone()),
            ServeConfig {
                workers: 2,
                queue_capacity: requests + 8,
                result_cache_capacity: 0,
                reform_cache_capacity: 0,
                observability,
                ..ServeConfig::default()
            },
        );
        let started = Instant::now();
        let tickets: Vec<_> = (0..requests)
            .map(|i| {
                runtime
                    .submit(self.request(i))
                    .expect("overhead queue sized to fit the request set")
            })
            .collect();
        for t in tickets {
            assert!(t.wait().is_completed(), "overhead run lost a request");
        }
        let wall = started.elapsed().as_secs_f64() * 1e3;
        runtime.shutdown();
        wall
    }
}

struct OverheadRow {
    requests: usize,
    reps: usize,
    off_ms: f64,
    on_ms: f64,
    overhead_frac: f64,
    observe_ns_enabled: f64,
    observe_ns_disabled: f64,
}

fn overhead(harness: &ObsHarness, smoke: bool, violations: &mut Vec<String>) -> OverheadRow {
    let requests = if smoke { 24 } else { 48 };
    let latency = Duration::from_micros(3_000);
    let reps = 3;
    // Interleave on/off repetitions so ambient load hits both equally;
    // min-of-N is the steady-state floor either way.
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..reps {
        off = off.min(harness.run_workload(
            requests,
            latency,
            ObsConfig {
                metrics: false,
                slo: None,
                recorder: None,
                dump_path: None,
            },
        ));
        on = on.min(harness.run_workload(requests, latency, harness.full_obs()));
    }
    let overhead_frac = (on - off).max(0.0) / off;
    if overhead_frac > 0.03 {
        violations.push(format!(
            "instrumentation overhead {:.2}% exceeds the 3% budget \
             (on {on:.1}ms vs off {off:.1}ms)",
            overhead_frac * 100.0
        ));
    }

    // Microbenchmark: raw observe() cost, enabled vs no-op.
    let iters: usize = if smoke { 200_000 } else { 1_000_000 };
    let time_observes = |registry: &MetricsRegistry| {
        let t0 = Instant::now();
        for i in 0..iters {
            registry.observe("obs.bench.latency_ms", (i % 977) as f64 + 0.5);
        }
        t0.elapsed().as_secs_f64() * 1e9 / iters as f64
    };
    let enabled = MetricsRegistry::new();
    let disabled = MetricsRegistry::disabled();
    OverheadRow {
        requests,
        reps,
        off_ms: off,
        on_ms: on,
        overhead_frac,
        observe_ns_enabled: time_observes(&enabled),
        observe_ns_disabled: time_observes(&disabled),
    }
}

// ---------------------------------------------------------------------
// Part 3: flight-recorder retention + deterministic SLO breach dump
// ---------------------------------------------------------------------

/// A model that always fails: every generation completes unvalidated
/// (verdict Error), so the SLO burn rate is exactly 1/error-budget.
struct AlwaysFailingModel;

impl LanguageModel for AlwaysFailingModel {
    fn name(&self) -> &str {
        "always-failing"
    }

    fn complete(&self, _request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        Err(ModelError::Transient("injected outage".to_string()))
    }
}

struct RecorderRow {
    requests: usize,
    interesting_expected: usize,
    interesting_retained: usize,
    evicted_interesting: u64,
    retained_total: usize,
    capacity: usize,
    breach_fired: u64,
    breach_dumped: u64,
    dump_records: usize,
    dump_error_records: usize,
}

fn recorder_gate(
    harness: &ObsHarness,
    seed: u64,
    smoke: bool,
    violations: &mut Vec<String>,
) -> RecorderRow {
    // --- (a) retention under fault-injected mixed traffic -------------
    let requests = if smoke { 48 } else { 120 };
    let recorder_config = RecorderConfig {
        interesting_capacity: requests + 8,
        normal_capacity: 16,
        latency_threshold_ms: 60_000.0,
        keep_normal_one_in: 4,
        seed,
    };
    let capacity = recorder_config.interesting_capacity + recorder_config.normal_capacity;
    let runtime = ServeRuntime::start(
        FaultInjector::new(
            RemoteLatencyModel {
                inner: Arc::clone(&harness.oracle),
                latency: Duration::from_micros(200),
            },
            FaultConfig::transient_only(0.35),
            seed,
        ),
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: 2,
            queue_capacity: requests + 8,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            observability: ObsConfig {
                metrics: true,
                slo: None,
                recorder: Some(recorder_config),
                dump_path: None,
            },
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            runtime
                .submit(harness.request(i))
                .expect("recorder queue sized to fit the request set")
        })
        .collect();
    // Every error/degraded completion must land in the recorder.
    let mut interesting_expected = BTreeSet::new();
    for t in &tickets {
        let outcome = t.wait();
        let Some(result) = outcome.result() else {
            violations.push(format!("recorder run lost request {}", t.request_id()));
            continue;
        };
        if !result.validated || result.degraded_operator_count() > 0 {
            interesting_expected.insert(t.request_id().to_string());
        }
    }
    let recorder = runtime
        .flight_recorder()
        .expect("recorder workload configures a flight recorder");
    let stats = recorder.stats();
    let retained: BTreeSet<String> = recorder
        .contents()
        .into_iter()
        .map(|r| r.request_id)
        .collect();
    let missing: Vec<&String> = interesting_expected.difference(&retained).collect();
    if !missing.is_empty() {
        violations.push(format!(
            "{} error/degraded traces missing from the recorder: {missing:?}",
            missing.len()
        ));
    }
    if stats.evicted_interesting != 0 {
        violations.push(format!(
            "{} interesting traces evicted under the sweep's sizing",
            stats.evicted_interesting
        ));
    }
    if interesting_expected.is_empty() {
        violations.push(
            "fault injection produced no error/degraded traffic — retention gate is vacuous"
                .to_string(),
        );
    }
    let retained_total = recorder.len();
    if retained_total > capacity {
        violations.push(format!(
            "recorder holds {retained_total} records, over its {capacity} bound"
        ));
    }
    let interesting_retained = interesting_expected.intersection(&retained).count();
    runtime.shutdown();

    // --- (b) deterministic SLO breach → flight-recorder dump ----------
    let _ = std::fs::remove_file(DUMP_PATH);
    let breach_requests = if smoke { 24 } else { 40 };
    let breach_rt = ServeRuntime::start(
        AlwaysFailingModel,
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: 2,
            queue_capacity: breach_requests + 8,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            observability: ObsConfig {
                metrics: true,
                // Every request errors → burn = 1/0.01 = 100 ≥ 14.4:
                // the fast-burn rule fires as soon as min_samples arrive.
                slo: Some(SloConfig::default_rules("serve.request", 0.99, 30_000.0)),
                recorder: Some(RecorderConfig {
                    interesting_capacity: breach_requests + 8,
                    ..RecorderConfig::default()
                }),
                dump_path: Some(DUMP_PATH.into()),
            },
            ..ServeConfig::default()
        },
    );
    let breach_tickets: Vec<_> = (0..breach_requests)
        .map(|i| {
            breach_rt
                .submit(harness.request(i))
                .expect("breach queue sized to fit the request set")
        })
        .collect();
    let mut breach_ids = BTreeSet::new();
    for t in &breach_tickets {
        t.wait();
        breach_ids.insert(t.request_id().to_string());
    }
    let fired = breach_rt.metrics().counter("serve.slo.fired");
    let dumped = breach_rt.metrics().counter("serve.slo.dumps");
    if fired == 0 {
        violations.push(format!(
            "SLO never fired despite {breach_requests} consecutive errored requests"
        ));
    }
    if !breach_rt.slo_firing() {
        violations.push("SLO alert not in the firing state after a total outage".to_string());
    }
    let dump = std::fs::read_to_string(DUMP_PATH).unwrap_or_default();
    let records = dump_from_jsonl(&dump).unwrap_or_default();
    if dumped == 0 || records.is_empty() {
        violations.push("SLO breach produced no flight-recorder dump".to_string());
    }
    let mut dump_error_records = 0usize;
    for r in &records {
        if r.verdict == RequestVerdict::Error {
            dump_error_records += 1;
        }
        if !breach_ids.contains(&r.request_id) {
            violations.push(format!(
                "dumped request {} was never submitted (ID threading broken)",
                r.request_id
            ));
        }
    }
    // Joinability: the latency histogram's exemplars carry the same IDs
    // the dump does.
    let exemplars = breach_rt.metrics().exemplars();
    let serve_exemplars: BTreeSet<&str> = exemplars
        .get("serve.request")
        .map(|e| e.iter().map(|x| x.request_id.as_str()).collect())
        .unwrap_or_default();
    if serve_exemplars.is_empty() {
        violations.push("serve.request histogram recorded no exemplars".to_string());
    }
    for id in &serve_exemplars {
        if !breach_ids.contains(*id) {
            violations.push(format!(
                "exemplar {id} does not join to a submitted request"
            ));
        }
    }
    breach_rt.shutdown();

    RecorderRow {
        requests,
        interesting_expected: interesting_expected.len(),
        interesting_retained,
        evicted_interesting: stats.evicted_interesting,
        retained_total,
        capacity,
        breach_fired: fired,
        breach_dumped: dumped,
        dump_records: records.len(),
        dump_error_records,
    }
}

// ---------------------------------------------------------------------
// Part 4: burn-rate determinism under the simulated clock
// ---------------------------------------------------------------------

struct BurnRow {
    transitions: Vec<(u64, &'static str)>,
    deterministic: bool,
}

fn burn_rate_determinism(violations: &mut Vec<String>) -> BurnRow {
    let schedule = || {
        let clock = Arc::new(SimulatedClock::new());
        let tracker = SloTracker::new(
            SloConfig {
                name: "serve.request".to_string(),
                objective: 0.99,
                latency_threshold_ms: 250.0,
                min_samples: 10,
                rules: vec![
                    BurnRateRule {
                        long: Duration::from_secs(60),
                        short: Duration::from_secs(5),
                        factor: 14.4,
                    },
                    BurnRateRule {
                        long: Duration::from_secs(300),
                        short: Duration::from_secs(30),
                        factor: 6.0,
                    },
                ],
            },
            Arc::clone(&clock) as Arc<dyn genedit_telemetry::Clock>,
        );
        let mut transitions = Vec::new();
        for second in 0..240u64 {
            // Healthy for 2 minutes, a 40%-bad burn for 40s, recovery.
            let bad_fraction = if (120..160).contains(&second) {
                0.4
            } else {
                0.0
            };
            for i in 0..20u64 {
                let bad = (i as f64) < bad_fraction * 20.0;
                tracker.record(if bad { 900.0 } else { 8.0 }, false);
            }
            clock.advance(Duration::from_secs(1));
            if let Some(t) = tracker.evaluate().transition {
                transitions.push((
                    second,
                    match t {
                        AlertTransition::Fired => "fired",
                        AlertTransition::Resolved => "resolved",
                    },
                ));
            }
        }
        transitions
    };
    let a = schedule();
    let b = schedule();
    let deterministic = a == b;
    if !deterministic {
        violations.push(format!(
            "burn-rate schedule diverged between identical runs: {a:?} vs {b:?}"
        ));
    }
    let shape_ok = a.len() == 2 && a[0].1 == "fired" && a[1].1 == "resolved";
    if !shape_ok {
        violations.push(format!(
            "expected exactly one fire + one resolve over the scripted burn, got {a:?}"
        ));
    } else {
        if !(120..160).contains(&a[0].0) {
            violations.push(format!(
                "alert fired at t={}s, outside the burn window",
                a[0].0
            ));
        }
        if a[1].0 < 160 {
            violations.push(format!(
                "alert resolved at t={}s, before the burn ended",
                a[1].0
            ));
        }
    }
    BurnRow {
        transitions: a,
        deterministic,
    }
}

// ---------------------------------------------------------------------
// report
// ---------------------------------------------------------------------

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();

    let samples = if args.smoke { 4_000 } else { 20_000 };
    let percentiles = percentile_accuracy(args.seed, samples, &mut violations);

    let harness = ObsHarness::build(args.seed);
    let overhead = overhead(&harness, args.smoke, &mut violations);
    let recorder = recorder_gate(&harness, args.seed, args.smoke, &mut violations);
    let burn = burn_rate_determinism(&mut violations);

    let doc = Value::Object(vec![
        ("artifact".to_string(), Value::Str("obs_sweep".to_string())),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.smoke { "smoke" } else { "full" }.to_string()),
        ),
        (
            "percentiles".to_string(),
            Value::Object(vec![
                ("bound".to_string(), Value::F64(MAX_RELATIVE_ERROR)),
                (
                    "distributions".to_string(),
                    Value::Array(
                        percentiles
                            .iter()
                            .map(|r| {
                                Value::Object(vec![
                                    (
                                        "distribution".to_string(),
                                        Value::Str(r.distribution.to_string()),
                                    ),
                                    ("samples".to_string(), Value::U64(r.samples as u64)),
                                    (
                                        "max_relative_error".to_string(),
                                        Value::F64(r.max_rel_error),
                                    ),
                                    (
                                        "worst_percentile".to_string(),
                                        Value::F64(r.worst_percentile),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "overhead".to_string(),
            Value::Object(vec![
                ("requests".to_string(), Value::U64(overhead.requests as u64)),
                ("repetitions".to_string(), Value::U64(overhead.reps as u64)),
                ("off_ms".to_string(), Value::F64(overhead.off_ms)),
                ("on_ms".to_string(), Value::F64(overhead.on_ms)),
                (
                    "overhead_frac".to_string(),
                    Value::F64(overhead.overhead_frac),
                ),
                ("budget_frac".to_string(), Value::F64(0.03)),
                (
                    "observe_ns_enabled".to_string(),
                    Value::F64(overhead.observe_ns_enabled),
                ),
                (
                    "observe_ns_disabled".to_string(),
                    Value::F64(overhead.observe_ns_disabled),
                ),
            ]),
        ),
        (
            "recorder".to_string(),
            Value::Object(vec![
                ("requests".to_string(), Value::U64(recorder.requests as u64)),
                (
                    "interesting_expected".to_string(),
                    Value::U64(recorder.interesting_expected as u64),
                ),
                (
                    "interesting_retained".to_string(),
                    Value::U64(recorder.interesting_retained as u64),
                ),
                (
                    "evicted_interesting".to_string(),
                    Value::U64(recorder.evicted_interesting),
                ),
                (
                    "retained_total".to_string(),
                    Value::U64(recorder.retained_total as u64),
                ),
                ("capacity".to_string(), Value::U64(recorder.capacity as u64)),
                (
                    "breach_fired".to_string(),
                    Value::U64(recorder.breach_fired),
                ),
                (
                    "breach_dumped".to_string(),
                    Value::U64(recorder.breach_dumped),
                ),
                (
                    "dump_records".to_string(),
                    Value::U64(recorder.dump_records as u64),
                ),
                (
                    "dump_error_records".to_string(),
                    Value::U64(recorder.dump_error_records as u64),
                ),
                ("dump_path".to_string(), Value::Str(DUMP_PATH.to_string())),
            ]),
        ),
        (
            "burn_rate".to_string(),
            Value::Object(vec![
                ("deterministic".to_string(), Value::Bool(burn.deterministic)),
                (
                    "transitions".to_string(),
                    Value::Array(
                        burn.transitions
                            .iter()
                            .map(|(t, kind)| {
                                Value::Object(vec![
                                    ("t_seconds".to_string(), Value::U64(*t)),
                                    ("transition".to_string(), Value::Str(kind.to_string())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_obs.json", &json) {
        eprintln!("warning: could not write BENCH_obs.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Observability sweep — seed {}, {} mode",
            args.seed,
            if args.smoke { "smoke" } else { "full" }
        );
        println!(
            "\npercentile accuracy (bound {:.4}%):",
            MAX_RELATIVE_ERROR * 100.0
        );
        for r in &percentiles {
            println!(
                "  {:<12} {:>6} samples  max rel error {:.5}% (worst at p{})",
                r.distribution,
                r.samples,
                r.max_rel_error * 100.0,
                r.worst_percentile
            );
        }
        println!(
            "\noverhead: obs-on {:.1}ms vs obs-off {:.1}ms = {:.2}% (budget 3%); \
             observe() {:.0}ns enabled / {:.0}ns no-op",
            overhead.on_ms,
            overhead.off_ms,
            overhead.overhead_frac * 100.0,
            overhead.observe_ns_enabled,
            overhead.observe_ns_disabled
        );
        println!(
            "\nrecorder: {}/{} error+degraded traces retained, {} evicted, \
             {} held (bound {})",
            recorder.interesting_retained,
            recorder.interesting_expected,
            recorder.evicted_interesting,
            recorder.retained_total,
            recorder.capacity
        );
        println!(
            "  breach: alert fired {}x, dumped {}x -> {} ({} records, {} errors)",
            recorder.breach_fired,
            recorder.breach_dumped,
            DUMP_PATH,
            recorder.dump_records,
            recorder.dump_error_records
        );
        println!(
            "\nburn rate: deterministic={} transitions={:?}",
            burn.deterministic, burn.transitions
        );
        if violations.is_empty() {
            println!("\nall observability gates held");
        } else {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
