//! Regenerates **Figure 2**: the retrieved knowledge and generated CoT
//! plan for the paper's running example Q_fin-perf (our QoQFP flagship
//! task), followed by the final generation prompt and predicted SQL.
//!
//! Run: `cargo run --release -p genedit-bench --bin figure2`

use genedit_bird::Workload;
use genedit_core::{GenEditPipeline, KnowledgeIndex};
use genedit_llm::OracleModel;

fn main() {
    let workload = Workload::standard(42);
    let oracle = OracleModel::new(workload.registry());
    let pipeline = GenEditPipeline::new(&oracle);

    // The sports-domain flagship: "Identify our k sports organisations
    // with the best and worst QoQFP in <region> for <quarter>".
    let task = workload
        .all_tasks()
        .find(|t| t.task_id == "sports-c00")
        .expect("flagship task exists")
        .clone();
    let bundle = workload.domain_for_task(&task).unwrap();
    let index = KnowledgeIndex::build(bundle.build_knowledge());
    let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);

    println!("=== Question ===\n{}\n", task.question);
    println!(
        "=== Reformulated (operator 1) ===\n{}\n",
        result.reformulated
    );
    println!(
        "=== Intents (operator 2) ===\n{}\n",
        result.intents.join(", ")
    );

    println!("=== Retrieved knowledge (operators 3-5) + plan — Fig. 2 ===");
    println!("{}", result.final_prompt.render());

    if let Some(plan) = &result.plan {
        println!("=== CoT plan as JSON (the prompt representation, §3.1.2) ===");
        println!("{}\n", plan.to_json());
        println!("(plan has {} steps)", plan.len());
    }

    println!("\n=== Predicted SQL ===");
    match &result.sql {
        Some(sql) => {
            let stmt = genedit_sql::parse_statement(sql).expect("prediction parses");
            let genedit_sql::Statement::Query(q) = stmt;
            println!("{}", genedit_sql::pretty(&q));
        }
        None => println!("(no prediction)"),
    }

    let (ok, note) =
        genedit_bird::score_prediction(&bundle.db, &task.gold_sql, result.sql.as_deref());
    println!("Execution-accuracy correct: {ok} {note:?}");
}
