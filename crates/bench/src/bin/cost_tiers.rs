//! Regenerates the **§3.3.3 model-selection decision**: "We use GPT-4o
//! across all operators, except for schema linking, where we instead
//! employ GPT-4o-mini to reduce primarily cost and then latency."
//!
//! Runs GenEdit over the full suite under three tier policies and reports
//! Execution Accuracy against accumulated model cost: routing only schema
//! linking to the mini tier should keep EX within noise of the all-frontier
//! configuration at a visibly lower spend, while routing *everything* to
//! the mini tier hurts accuracy — the paper's deployment trade-off.
//!
//! Run: `cargo run --release -p genedit-bench --bin cost_tiers`

use genedit_bird::{score_prediction, EvalReport, TaskOutcome, Workload};
use genedit_core::GenEditPipeline;
use genedit_llm::{OracleModel, TierPolicy, TieredModel};

fn run_policy(
    workload: &Workload,
    policy: TierPolicy,
    label: &str,
) -> (EvalReport, f64, usize, usize) {
    let model = TieredModel::new(OracleModel::new(workload.registry()), policy);
    let pipeline = GenEditPipeline::new(&model);
    let mut report = EvalReport::new(label);
    for bundle in &workload.domains {
        let index = genedit_core::KnowledgeIndex::build(bundle.build_knowledge());
        for task in &bundle.tasks {
            let r = pipeline.generate(&task.question, &index, &bundle.db, &[]);
            let (correct, note) = score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
            report.push(TaskOutcome {
                task_id: task.task_id.clone(),
                difficulty: task.difficulty,
                correct,
                attempts: r.attempts,
                note,
            });
        }
    }
    let ledger = model.ledger();
    (
        report,
        ledger.cost_units,
        ledger.full_calls,
        ledger.mini_calls,
    )
}

fn main() {
    let workload = Workload::standard(42);
    println!(
        "Model-tier cost study (§3.3.3) — GenEdit over {} tasks\n",
        workload.task_count()
    );
    println!(
        "{:<26} {:>7} {:>11} {:>11} {:>11}",
        "policy", "EX%", "cost units", "full calls", "mini calls"
    );
    let policies = [
        (TierPolicy::all_full(), "all GPT-4o"),
        (TierPolicy::paper(), "mini schema linking (paper)"),
        (TierPolicy::all_mini(), "all GPT-4o-mini"),
    ];
    let mut rows = Vec::new();
    for (policy, label) in policies {
        let (report, cost, full, mini) = run_policy(&workload, policy, label);
        println!(
            "{:<26} {:>7.2} {:>11.1} {:>11} {:>11}",
            label,
            report.ex(None),
            cost,
            full,
            mini
        );
        rows.push((label, report.ex(None), cost));
    }
    let (_, base_ex, base_cost) = rows[0];
    let (_, paper_ex, paper_cost) = rows[1];
    println!(
        "\nthe paper's routing keeps EX within {:.2} points of all-frontier \
         while cutting spend by {:.0}% — the trade §3.3.3 reports.",
        (base_ex - paper_ex).abs(),
        100.0 * (1.0 - paper_cost / base_cost)
    );
}
