//! Regenerates **Table 2**: the operator ablation study.
//!
//! Run: `cargo run --release -p genedit-bench --bin table2`

use genedit_bench::paper::TABLE2;
use genedit_bird::{EvalReport, Workload};
use genedit_core::{Ablation, Harness};
use genedit_llm::Difficulty;

fn main() {
    let args = genedit_bench::BinArgs::parse();
    let seed = args.seed;
    let workload = Workload::standard(seed);
    let harness = Harness::new(&workload);

    let reports: Vec<EvalReport> = Ablation::ALL
        .into_iter()
        .map(|a| harness.run_genedit(a))
        .collect();

    if args.json {
        println!(
            "{}",
            genedit_bench::reports_to_json("table2", seed, workload.task_count(), &reports)
        );
        return;
    }

    println!(
        "Table 2 — ablation study (seed {seed}, {} tasks)",
        workload.task_count()
    );
    println!("{}", EvalReport::table_header());

    let mut full_ex = None;
    for r in &reports {
        let all = r.ex(None);
        match full_ex {
            None => {
                full_ex = Some(all);
                println!("{}", r.table_row());
            }
            Some(base) => println!("{} (Δ {:+.2})", r.table_row(), all - base),
        }
    }

    println!("\nPaper comparison (shape check):");
    for r in &reports {
        if let Some(p) = TABLE2.iter().find(|(n, ..)| *n == r.method) {
            println!(
                "{}",
                genedit_bench::compare_line(
                    &r.method,
                    (
                        r.ex(Some(Difficulty::Simple)),
                        r.ex(Some(Difficulty::Moderate)),
                        r.ex(Some(Difficulty::Challenging)),
                        r.ex(None)
                    ),
                    (p.1, p.2, p.3, p.4),
                )
            );
        }
    }
}
