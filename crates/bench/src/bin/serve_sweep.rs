//! **Serving sweep**: the concurrent serving runtime under a seeded
//! multi-tenant open-loop workload.
//!
//! Four parts:
//!
//! 1. *Worker scaling* — the same request set pushed through 1, 2, and
//!    4 workers with caches off. The model is wrapped in a simulated
//!    remote-call latency (the paper's pipeline spends its wall time in
//!    GPT-4o round trips, not local compute), so worker threads overlap
//!    model waits exactly as a real deployment overlaps network I/O.
//!    Violation if 4 workers deliver < 3x the single-worker throughput.
//! 2. *Cache effectiveness* — every distinct question served cold, then
//!    the same set served warm. Violation if the warm (cached) service
//!    time is not at least 10x faster than cold generation.
//! 3. *Overload* — a deadline-laden flood into a tiny queue: reports
//!    admission/shed/rejection/expiry rates, verifying backpressure
//!    engages rather than queues growing without bound.
//! 4. *Cached = uncached* — every question's cached answer must be
//!    byte-for-byte identical (semantic fingerprint) to the uncached
//!    generation. **Any divergence exits nonzero**: a cache that serves
//!    different SQL than the pipeline would generate is a correctness
//!    bug, not a performance feature.
//!
//! Run: `cargo run --release -p genedit-bench --bin serve_sweep`
//! (`--quick` shrinks the workload for CI, `--json` prints the
//! document; the JSON is always written to `BENCH_serve.json`.)

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::KnowledgeIndex;
use genedit_llm::{
    CompletionRequest, CompletionResponse, LanguageModel, ModelError, OracleConfig, OracleModel,
    TaskRegistry,
};
use genedit_serve::{QueryOutcome, QueryRequest, Rejected, ServeConfig, ServeRuntime};
use genedit_telemetry::HistogramSummary;
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wraps the oracle with a fixed per-call latency, standing in for the
/// network round trip of a remote LLM. Worker scaling is only visible
/// when requests spend their time *waiting* — which is exactly the
/// production profile this runtime is built for.
struct RemoteLatencyModel {
    inner: Arc<OracleModel>,
    latency: Duration,
}

impl LanguageModel for RemoteLatencyModel {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        std::thread::sleep(self.latency);
        self.inner.complete(request)
    }
}

struct SweepArgs {
    seed: u64,
    quick: bool,
    json: bool,
    /// Per-model-call simulated latency, microseconds.
    latency_us: u64,
    /// Requests per scaling run.
    requests: usize,
}

fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        quick: false,
        json: false,
        latency_us: 3000,
        requests: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--quick" | "--smoke" => parsed.quick = true,
            "--latency-us" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.latency_us = v;
                }
            }
            "--requests" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.requests = v;
                }
            }
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    if parsed.requests == 0 {
        parsed.requests = if parsed.quick { 24 } else { 60 };
    }
    parsed
}

struct Harness {
    bundle: DomainBundle,
    index: Arc<KnowledgeIndex>,
    oracle: Arc<OracleModel>,
    latency: Duration,
}

impl Harness {
    fn build(seed: u64, latency: Duration) -> Harness {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), seed);
        let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        Harness {
            bundle,
            index,
            oracle: Arc::new(oracle),
            latency,
        }
    }

    fn runtime(&self, config: ServeConfig) -> ServeRuntime<RemoteLatencyModel> {
        ServeRuntime::start(
            RemoteLatencyModel {
                inner: Arc::clone(&self.oracle),
                latency: self.latency,
            },
            Arc::clone(&self.index),
            0,
            Arc::new(self.bundle.db.clone()),
            config,
        )
    }

    /// The seeded multi-tenant request stream: tenants round-robin over
    /// the domain's questions, deterministically.
    fn request(&self, i: usize) -> QueryRequest {
        let tasks = &self.bundle.tasks;
        let tenant = format!("tenant-{}", i % 3);
        QueryRequest::new(tenant, &tasks[i % tasks.len()].question)
    }
}

/// Semantic fingerprint of a generation, excluding the trace (span
/// timings legitimately differ). Byte-for-byte comparable.
fn fingerprint(r: &genedit_core::GenerationResult) -> String {
    format!(
        "sql={:?}|reform={:?}|intents={:?}|ex={:?}|ins={:?}|schema={:?}|errors={:?}|validated={}",
        r.sql,
        r.reformulated,
        r.intents,
        r.used_examples,
        r.used_instructions,
        r.used_schema,
        r.errors,
        r.validated
    )
}

struct ScalingRow {
    workers: usize,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    latency_ms: HistogramSummary,
}

/// Open-loop run: submit the whole request set at once, wait for all.
fn run_scaling(harness: &Harness, workers: usize, requests: usize) -> ScalingRow {
    let runtime = harness.runtime(ServeConfig {
        workers,
        queue_capacity: requests + 8,
        result_cache_capacity: 0,
        reform_cache_capacity: 0,
        ..ServeConfig::default()
    });
    let started = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let t0 = Instant::now();
            let ticket = runtime
                .submit(harness.request(i))
                .expect("scaling queue sized to fit the whole request set");
            (ticket, t0)
        })
        .collect();
    let mut latencies = Vec::with_capacity(requests);
    for (ticket, t0) in tickets {
        let outcome = ticket.wait();
        assert!(outcome.is_completed(), "scaling run lost a request");
        latencies.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    let wall = started.elapsed();
    runtime.shutdown();
    ScalingRow {
        workers,
        requests,
        wall_ms: wall.as_secs_f64() * 1000.0,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        latency_ms: HistogramSummary::from_samples(&latencies),
    }
}

struct CacheRow {
    distinct_questions: usize,
    cold_service_ms: HistogramSummary,
    warm_service_ms: HistogramSummary,
    speedup: f64,
    hit_rate: f64,
}

fn service_ms(outcome: &QueryOutcome) -> (f64, bool) {
    match outcome {
        QueryOutcome::Completed {
            service, cached, ..
        } => (service.as_secs_f64() * 1000.0, *cached),
        other => panic!("cache run lost a request: {other:?}"),
    }
}

fn run_cache(harness: &Harness, violations: &mut Vec<String>) -> CacheRow {
    let runtime = harness.runtime(ServeConfig {
        workers: 2,
        queue_capacity: 128,
        ..ServeConfig::default()
    });
    let distinct = harness.bundle.tasks.len().min(8);
    let mut cold = Vec::new();
    let mut warm = Vec::new();
    // Cold pass then warm pass, sequentially: every warm request must
    // find its cold twin already cached.
    for pass in 0..2 {
        for i in 0..distinct {
            let outcome = runtime
                .submit(harness.request(i))
                .expect("cache queue never saturates")
                .wait();
            let (ms, cached) = service_ms(&outcome);
            if pass == 0 {
                if cached {
                    violations.push(format!("cold request {i} reported a cache hit"));
                }
                cold.push(ms);
            } else {
                if !cached {
                    violations.push(format!("warm request {i} missed the cache"));
                }
                warm.push(ms);
            }
        }
    }
    let metrics = runtime.metrics().snapshot();
    let hits = metrics
        .counters
        .get("serve.cache.hit")
        .copied()
        .unwrap_or(0);
    let misses = metrics
        .counters
        .get("serve.cache.miss")
        .copied()
        .unwrap_or(0);
    runtime.shutdown();
    let cold_sum = HistogramSummary::from_samples(&cold);
    let warm_sum = HistogramSummary::from_samples(&warm);
    let speedup = if warm_sum.mean > 0.0 {
        cold_sum.mean / warm_sum.mean
    } else {
        f64::INFINITY
    };
    if speedup < 10.0 {
        violations.push(format!(
            "warm-cache speedup {speedup:.1}x below the 10x floor \
             (cold {:.2}ms vs warm {:.2}ms mean service)",
            cold_sum.mean, warm_sum.mean
        ));
    }
    CacheRow {
        distinct_questions: distinct,
        cold_service_ms: cold_sum,
        warm_service_ms: warm_sum,
        speedup,
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
    }
}

struct OverloadRow {
    submitted: usize,
    completed: usize,
    shed: u64,
    rejected: u64,
    expired: u64,
    rejection_rate: f64,
}

/// Flood a tiny queue with deadline-laden requests faster than one slow
/// worker can drain it: backpressure (shed + reject) must engage.
fn run_overload(harness: &Harness, requests: usize, violations: &mut Vec<String>) -> OverloadRow {
    let runtime = harness.runtime(ServeConfig {
        workers: 1,
        queue_capacity: 4,
        result_cache_capacity: 0,
        reform_cache_capacity: 0,
        ..ServeConfig::default()
    });
    let mut tickets = Vec::new();
    let mut rejected_count = 0usize;
    for i in 0..requests {
        // Staggered deadlines so shedding has meaningful choices.
        let budget = Duration::from_millis(200 + 100 * (i as u64 % 7));
        match runtime.submit(harness.request(i).with_deadline_in(budget)) {
            Ok(t) => tickets.push(t),
            Err(Rejected::QueueFull) => rejected_count += 1,
            Err(other) => violations.push(format!("overload submit saw {other:?}")),
        }
    }
    let mut completed = 0usize;
    for t in tickets {
        if t.wait().is_completed() {
            completed += 1;
        }
    }
    let metrics = runtime.metrics().snapshot();
    let shed = metrics.counters.get("serve.shed").copied().unwrap_or(0);
    let rejected = metrics.counters.get("serve.rejected").copied().unwrap_or(0);
    let expired = metrics.counters.get("serve.expired").copied().unwrap_or(0);
    runtime.shutdown();
    if shed + rejected == 0 {
        violations.push(
            "overload run triggered no backpressure (queue should have saturated)".to_string(),
        );
    }
    if rejected as usize != rejected_count {
        violations.push(format!(
            "rejection accounting mismatch: metric {rejected} vs observed {rejected_count}"
        ));
    }
    OverloadRow {
        submitted: requests,
        completed,
        shed,
        rejected,
        expired,
        rejection_rate: rejected as f64 / requests as f64,
    }
}

struct EquivalenceRow {
    questions: usize,
    divergent: usize,
}

/// Every question generated uncached, then via the cache: the semantic
/// fingerprints must match byte for byte.
fn run_equivalence(harness: &Harness, violations: &mut Vec<String>) -> EquivalenceRow {
    let distinct = harness.bundle.tasks.len().min(8);
    let uncached_rt = harness.runtime(ServeConfig {
        workers: 1,
        result_cache_capacity: 0,
        reform_cache_capacity: 0,
        ..ServeConfig::default()
    });
    let cached_rt = harness.runtime(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let mut divergent = 0usize;
    for i in 0..distinct {
        let plain = uncached_rt
            .submit(harness.request(i))
            .expect("equivalence queue never saturates")
            .wait();
        // Prime, then read back through the cache.
        let _ = cached_rt
            .submit(harness.request(i))
            .expect("equivalence queue never saturates")
            .wait();
        let replay = cached_rt
            .submit(harness.request(i))
            .expect("equivalence queue never saturates")
            .wait();
        let (Some(a), Some(b)) = (plain.result(), replay.result()) else {
            divergent += 1;
            violations.push(format!("equivalence question {i} did not complete"));
            continue;
        };
        if !matches!(replay, QueryOutcome::Completed { cached: true, .. }) {
            violations.push(format!("equivalence question {i} replay was not cached"));
        }
        if fingerprint(a) != fingerprint(b) {
            divergent += 1;
            violations.push(format!(
                "cached result diverges from uncached for question {i}:\n  uncached: {}\n  cached:   {}",
                fingerprint(a),
                fingerprint(b)
            ));
        }
    }
    uncached_rt.shutdown();
    cached_rt.shutdown();
    EquivalenceRow {
        questions: distinct,
        divergent,
    }
}

fn histogram_json(h: &HistogramSummary) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::U64(h.count as u64)),
        ("mean".to_string(), Value::F64(h.mean)),
        ("min".to_string(), Value::F64(h.min)),
        ("max".to_string(), Value::F64(h.max)),
        ("p50".to_string(), Value::F64(h.p50)),
        ("p95".to_string(), Value::F64(h.p95)),
        ("p99".to_string(), Value::F64(h.p99)),
    ])
}

fn scaling_row_json(row: &ScalingRow) -> Value {
    Value::Object(vec![
        ("workers".to_string(), Value::U64(row.workers as u64)),
        ("requests".to_string(), Value::U64(row.requests as u64)),
        ("wall_ms".to_string(), Value::F64(row.wall_ms)),
        ("throughput_rps".to_string(), Value::F64(row.throughput_rps)),
        ("latency_ms".to_string(), histogram_json(&row.latency_ms)),
    ])
}

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();
    let harness = Harness::build(args.seed, Duration::from_micros(args.latency_us));

    // Part 1: worker scaling, caches off.
    let scaling: Vec<ScalingRow> = [1usize, 2, 4]
        .iter()
        .map(|&w| run_scaling(&harness, w, args.requests))
        .collect();
    let speedup_4x = scaling[2].throughput_rps / scaling[0].throughput_rps.max(f64::MIN_POSITIVE);
    if speedup_4x < 3.0 {
        violations.push(format!(
            "4-worker throughput speedup {speedup_4x:.2}x below the 3x floor \
             ({:.1} rps vs {:.1} rps)",
            scaling[2].throughput_rps, scaling[0].throughput_rps
        ));
    }

    // Part 2: cache effectiveness.
    let cache = run_cache(&harness, &mut violations);

    // Part 3: overload and backpressure.
    let overload = run_overload(&harness, args.requests.max(32), &mut violations);

    // Part 4: cached = uncached, byte for byte.
    let equivalence = run_equivalence(&harness, &mut violations);

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("serve_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.quick { "quick" } else { "full" }.to_string()),
        ),
        ("model_latency_us".to_string(), Value::U64(args.latency_us)),
        ("requests".to_string(), Value::U64(args.requests as u64)),
        (
            "scaling".to_string(),
            Value::Array(scaling.iter().map(scaling_row_json).collect()),
        ),
        ("speedup_4_workers".to_string(), Value::F64(speedup_4x)),
        (
            "cache".to_string(),
            Value::Object(vec![
                (
                    "distinct_questions".to_string(),
                    Value::U64(cache.distinct_questions as u64),
                ),
                (
                    "cold_service_ms".to_string(),
                    histogram_json(&cache.cold_service_ms),
                ),
                (
                    "warm_service_ms".to_string(),
                    histogram_json(&cache.warm_service_ms),
                ),
                ("speedup".to_string(), Value::F64(cache.speedup)),
                ("hit_rate".to_string(), Value::F64(cache.hit_rate)),
            ]),
        ),
        (
            "overload".to_string(),
            Value::Object(vec![
                (
                    "submitted".to_string(),
                    Value::U64(overload.submitted as u64),
                ),
                (
                    "completed".to_string(),
                    Value::U64(overload.completed as u64),
                ),
                ("shed".to_string(), Value::U64(overload.shed)),
                ("rejected".to_string(), Value::U64(overload.rejected)),
                ("expired".to_string(), Value::U64(overload.expired)),
                (
                    "rejection_rate".to_string(),
                    Value::F64(overload.rejection_rate),
                ),
            ]),
        ),
        (
            "equivalence".to_string(),
            Value::Object(vec![
                (
                    "questions".to_string(),
                    Value::U64(equivalence.questions as u64),
                ),
                (
                    "divergent".to_string(),
                    Value::U64(equivalence.divergent as u64),
                ),
                (
                    "byte_identical".to_string(),
                    Value::Bool(equivalence.divergent == 0),
                ),
            ]),
        ),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_serve.json", &json) {
        eprintln!("warning: could not write BENCH_serve.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Serving sweep — {} requests/run, {}us simulated model latency (seed {})",
            args.requests, args.latency_us, args.seed
        );
        println!("\nworker scaling (caches off):");
        for row in &scaling {
            println!(
                "  {} worker(s): {:6.1} rps  p50 {:6.1}ms  p95 {:6.1}ms  p99 {:6.1}ms",
                row.workers,
                row.throughput_rps,
                row.latency_ms.p50,
                row.latency_ms.p95,
                row.latency_ms.p99
            );
        }
        println!("  4-worker speedup: {speedup_4x:.2}x (floor 3x)");
        println!(
            "\ncache: warm {:.3}ms vs cold {:.1}ms mean service = {:.0}x speedup \
             (floor 10x), hit rate {:.0}%",
            cache.warm_service_ms.mean,
            cache.cold_service_ms.mean,
            cache.speedup,
            cache.hit_rate * 100.0
        );
        println!(
            "\noverload: {} submitted -> {} completed, {} shed, {} rejected, {} expired \
             (rejection rate {:.0}%)",
            overload.submitted,
            overload.completed,
            overload.shed,
            overload.rejected,
            overload.expired,
            overload.rejection_rate * 100.0
        );
        println!(
            "\nequivalence: {}/{} questions byte-identical cached vs uncached",
            equivalence.questions - equivalence.divergent,
            equivalence.questions
        );
        if violations.is_empty() {
            println!("\nall serving invariants held");
        } else {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
