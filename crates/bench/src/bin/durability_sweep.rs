//! **Durability sweep**: the durable knowledge store under crash points
//! and storage-fault schedules.
//!
//! Three parts:
//!
//! 1. *Crash-point sweep* — replay a deterministic knowledge workload
//!    (standalone edits, checkpoints, staged merges, compactions) and
//!    crash it at N evenly spaced fs-operation counts. After each crash
//!    the recovered store must be content-equal to the state after the
//!    last **acknowledged** operation — under `FsyncPolicy::Always`,
//!    acked ⇔ durable, exactly — and a second open must find nothing
//!    left to repair.
//! 2. *Corruption sweep* — the same workload under uniform rates of
//!    short writes, torn writes, bit flips, failed fsyncs and renames.
//!    Acknowledged data may legitimately be lost (a torn write acks
//!    bytes that never hit the platter), so divergence is *reported*,
//!    but recovery must never fail, the recovered state must equal the
//!    replay of its own audit log, and re-opening must be idempotent.
//! 3. *Zero-overhead check* — a journaled store with fsync off must
//!    produce a byte-identical `to_json` snapshot to a plain in-memory
//!    `KnowledgeSet` driven through the same operations, and reloading
//!    it must show zero recovery events.
//! 4. *Page-flush crash sweep* — the disk-backed tenant store
//!    (`TenantKnowledgeStore`) crashed at evenly spaced fs-operation
//!    counts, which lands crashes inside the WAL append, the shadow
//!    page writes, and the meta-page publish. A fresh store over the
//!    healed filesystem (new buffer pool — a process restart) must
//!    serve either the acked prefix or the acked prefix plus the
//!    fully-durable in-flight batch: never a torn batch, never an
//!    error, and a second restart must serve identical content.
//!
//! Run: `cargo run --release -p genedit-bench --bin durability_sweep`
//! (`--points N` = crash points, `--smoke` = fewer corruption runs for
//! CI, `--json` prints the document; the JSON is always written to
//! `BENCH_durability.json`.)

use genedit_bird::{DomainBundle, SPORTS};
use genedit_knowledge::tenants::{TenantKnowledgeStore, TenantStoreConfig};
use genedit_knowledge::{
    DurableKnowledgeStore, Edit, FaultyFs, FsyncPolicy, IoFaultConfig, KnowledgeSet, MemFs,
    RecoveryOutcome, StagingArea, StoreConfig, StoreError, StoreFs,
};
use serde_json::Value;
use std::sync::Arc;
use std::time::Instant;

/// One operation of the replayed workload.
#[derive(Debug, Clone)]
enum Op {
    Apply(Edit),
    Checkpoint(String),
    Merge(Vec<Edit>),
    Compact,
}

/// Build the deterministic workload: the pre-processing edit log of the
/// sports domain, interleaved with periodic checkpoints, staged merges,
/// and compactions — every durable-store entry point.
fn build_ops(seed: u64) -> Vec<Op> {
    let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), seed);
    let edits: Vec<Edit> = bundle
        .build_knowledge()
        .log()
        .iter()
        .map(|l| l.edit.clone())
        .collect();
    let mut ops = Vec::new();
    let mut batch: Vec<Edit> = Vec::new();
    for (i, edit) in edits.into_iter().enumerate() {
        if i % 9 >= 6 {
            batch.push(edit);
            if batch.len() == 3 {
                ops.push(Op::Merge(std::mem::take(&mut batch)));
            }
        } else {
            ops.push(Op::Apply(edit));
        }
        if i % 11 == 10 {
            ops.push(Op::Checkpoint(format!("cp{i}")));
        }
        if i % 17 == 16 {
            ops.push(Op::Compact);
        }
    }
    if !batch.is_empty() {
        ops.push(Op::Merge(batch));
    }
    ops
}

fn run_store_op(store: &mut DurableKnowledgeStore, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::Apply(edit) => store.apply(edit.clone()).map(|_| ()),
        Op::Checkpoint(label) => store.checkpoint(label).map(|_| ()),
        Op::Merge(edits) => {
            let mut area = StagingArea::new();
            for e in edits {
                area.stage(e.clone());
            }
            store.commit(area, "merge").map(|_| ())
        }
        Op::Compact => store.compact(),
    }
}

fn run_plain_op(set: &mut KnowledgeSet, op: &Op) {
    match op {
        Op::Apply(edit) => {
            set.apply(edit.clone()).expect("workload edits are valid");
        }
        Op::Checkpoint(label) => {
            set.checkpoint(label.clone());
        }
        Op::Merge(edits) => {
            let mut area = StagingArea::new();
            for e in edits {
                area.stage(e.clone());
            }
            area.commit(set, "merge")
                .expect("workload merges are valid");
        }
        Op::Compact => {} // no durable layer, nothing to fold
    }
}

fn open(fs: Arc<dyn StoreFs>, fsync: FsyncPolicy) -> Result<DurableKnowledgeStore, StoreError> {
    DurableKnowledgeStore::open_with(
        fs,
        "k.json",
        "k.wal",
        StoreConfig {
            fsync,
            ..StoreConfig::default()
        },
        None,
    )
}

/// Count the fs operations a fault-free run of the workload performs —
/// the sweep places its crash points inside `1..=total`.
fn calibrate(ops: &[Op], seed: u64) -> u64 {
    let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
    let faulty = Arc::new(FaultyFs::new(mem, IoFaultConfig::default(), seed));
    let mut store =
        open(Arc::clone(&faulty) as Arc<dyn StoreFs>, FsyncPolicy::Always).expect("no faults");
    for op in ops {
        run_store_op(&mut store, op).expect("no faults");
    }
    faulty.log().ops
}

struct CrashRow {
    crash_op: u64,
    acked_log: usize,
    outcome: RecoveryOutcome,
    bytes_truncated: u64,
    ok: bool,
}

/// One crash point: run until the simulated crash, power-cycle the
/// filesystem, recover on clean hardware, verify the acked prefix.
fn run_crash_point(ops: &[Op], seed: u64, crash_op: u64, violations: &mut Vec<String>) -> CrashRow {
    let mem = Arc::new(MemFs::new());
    let faulty: Arc<dyn StoreFs> = Arc::new(FaultyFs::new(
        Arc::clone(&mem) as Arc<dyn StoreFs>,
        IoFaultConfig::crash_at(crash_op),
        seed,
    ));
    let mut acked = KnowledgeSet::new();
    if let Ok(mut store) = open(faulty, FsyncPolicy::Always) {
        acked = store.set().clone();
        for op in ops {
            match run_store_op(&mut store, op) {
                Ok(()) => acked = store.set().clone(),
                Err(_) => break, // the crash refuses every later op too
            }
        }
    }
    mem.crash();

    let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
    let mut ok = true;
    let (outcome, bytes_truncated) = match open(Arc::clone(&fs), FsyncPolicy::Always) {
        Ok(recovered) => {
            let report = recovered.recovery_report().clone();
            if !recovered.set().content_eq(&acked)
                || recovered.set().log().len() != acked.log().len()
                || recovered.set().checkpoints().len() != acked.checkpoints().len()
            {
                ok = false;
                violations.push(format!(
                    "crash@{crash_op}: recovered {:?} != acked {:?}",
                    recovered.set().stats(),
                    acked.stats()
                ));
            }
            drop(recovered);
            match open(fs, FsyncPolicy::Always) {
                Ok(again) => {
                    if again.recovery_report().repaired() || !again.set().content_eq(&acked) {
                        ok = false;
                        violations.push(format!(
                            "crash@{crash_op}: second open not idempotent ({:?})",
                            again.recovery_report().outcome
                        ));
                    }
                }
                Err(e) => {
                    ok = false;
                    violations.push(format!("crash@{crash_op}: second open failed: {e}"));
                }
            }
            (report.outcome, report.bytes_truncated)
        }
        Err(e) => {
            ok = false;
            violations.push(format!("crash@{crash_op}: recovery failed: {e}"));
            (RecoveryOutcome::FreshStart, 0)
        }
    };
    CrashRow {
        crash_op,
        acked_log: acked.log().len(),
        outcome,
        bytes_truncated,
        ok,
    }
}

struct CorruptionRow {
    rate: f64,
    runs: usize,
    injected: u64,
    op_errors: u64,
    quarantined: u64,
    bytes_truncated: u64,
    acked_divergence: usize,
    ok: bool,
}

/// One corruption rate: several seeded runs, each crash-recovered and
/// checked for self-consistency and idempotent reopen.
fn run_corruption_rate(
    ops: &[Op],
    seed: u64,
    rate: f64,
    runs: usize,
    violations: &mut Vec<String>,
) -> CorruptionRow {
    let mut row = CorruptionRow {
        rate,
        runs,
        injected: 0,
        op_errors: 0,
        quarantined: 0,
        bytes_truncated: 0,
        acked_divergence: 0,
        ok: true,
    };
    for run in 0..runs {
        let run_seed = seed.wrapping_mul(1_000).wrapping_add(run as u64);
        let mem = Arc::new(MemFs::new());
        let faulty = Arc::new(FaultyFs::new(
            Arc::clone(&mem) as Arc<dyn StoreFs>,
            IoFaultConfig::uniform(rate),
            run_seed,
        ));
        let mut acked = KnowledgeSet::new();
        if let Ok(mut store) = open(Arc::clone(&faulty) as Arc<dyn StoreFs>, FsyncPolicy::Always) {
            acked = store.set().clone();
            for op in ops {
                // Faults are transient: keep driving the workload.
                match run_store_op(&mut store, op) {
                    Ok(()) => acked = store.set().clone(),
                    Err(_) => row.op_errors += 1,
                }
            }
        }
        row.injected += faulty.log().total();
        mem.crash();

        let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
        match open(Arc::clone(&fs), FsyncPolicy::Always) {
            Ok(recovered) => {
                let report = recovered.recovery_report();
                row.quarantined += report.quarantined.len() as u64;
                row.bytes_truncated += report.bytes_truncated;
                let replay =
                    KnowledgeSet::from_log(recovered.set().log().iter().map(|l| l.edit.clone()));
                match replay {
                    Ok(replayed) if replayed.content_eq(recovered.set()) => {}
                    _ => {
                        row.ok = false;
                        violations.push(format!(
                            "rate {rate} seed {run_seed}: recovered state is not \
                             the replay of its own audit log"
                        ));
                    }
                }
                if !recovered.set().content_eq(&acked) {
                    row.acked_divergence += 1; // reported, not a violation
                }
                let first = recovered.set().clone();
                drop(recovered);
                match open(fs, FsyncPolicy::Always) {
                    Ok(again) => {
                        if again.recovery_report().repaired() || !again.set().content_eq(&first) {
                            row.ok = false;
                            violations.push(format!(
                                "rate {rate} seed {run_seed}: reopen not idempotent"
                            ));
                        }
                    }
                    Err(e) => {
                        row.ok = false;
                        violations.push(format!("rate {rate} seed {run_seed}: reopen failed: {e}"));
                    }
                }
            }
            Err(e) => {
                row.ok = false;
                violations.push(format!("rate {rate} seed {run_seed}: recovery failed: {e}"));
            }
        }
    }
    row
}

struct ZeroOverhead {
    byte_identical: bool,
    reopen_clean: bool,
    store_ms: f64,
    plain_ms: f64,
}

/// Fsync-off journaled store vs plain in-memory apply over the identical
/// operation sequence: same bytes out, nothing for recovery to do.
fn run_zero_overhead(ops: &[Op], violations: &mut Vec<String>) -> ZeroOverhead {
    let mem = Arc::new(MemFs::new());
    let fs: Arc<dyn StoreFs> = Arc::clone(&mem) as Arc<dyn StoreFs>;
    let started = Instant::now();
    let mut store = open(Arc::clone(&fs), FsyncPolicy::Never).expect("open");
    for op in ops {
        run_store_op(&mut store, op).expect("fault-free run");
    }
    let store_ms = started.elapsed().as_secs_f64() * 1e3;

    let started = Instant::now();
    let mut plain = KnowledgeSet::new();
    for op in ops {
        run_plain_op(&mut plain, op);
    }
    let plain_ms = started.elapsed().as_secs_f64() * 1e3;

    let store_json = genedit_knowledge::to_json(store.set()).expect("serialize");
    let plain_json = genedit_knowledge::to_json(&plain).expect("serialize");
    let byte_identical = store_json == plain_json;
    if !byte_identical {
        violations
            .push("zero-overhead: journaled store diverged from plain in-memory apply".to_string());
    }
    drop(store);

    let reopened = open(fs, FsyncPolicy::Never).expect("reload");
    let report = reopened.recovery_report();
    let reopen_clean = report.outcome == RecoveryOutcome::Clean
        && report.bytes_truncated == 0
        && report.quarantined.is_empty()
        && reopened.set().content_eq(&plain);
    if !reopen_clean {
        violations.push(format!(
            "zero-overhead: fault-free reload saw recovery events: {report:?}"
        ));
    }
    ZeroOverhead {
        byte_identical,
        reopen_clean,
        store_ms,
        plain_ms,
    }
}

/// The deterministic tenant-store workload for part 4: batches of edits
/// committed through the paging layer (WAL append + page flush each).
fn tenant_batches(seed: u64) -> Vec<Vec<Edit>> {
    let bundle = DomainBundle::build(&SPORTS, (4, 2, 1), seed);
    let edits: Vec<Edit> = bundle
        .build_knowledge()
        .log()
        .iter()
        .map(|l| l.edit.clone())
        .collect();
    edits.chunks(3).map(|c| c.to_vec()).collect()
}

fn tenant_store_over(fs: Arc<dyn StoreFs>) -> Arc<TenantKnowledgeStore> {
    Arc::new(TenantKnowledgeStore::new_with(
        fs,
        "/kb",
        TenantStoreConfig {
            page_size: 1024,
            pool_budget_bytes: 16 * 1024,
            shards: 4,
            store: StoreConfig::default(),
        },
        None,
    ))
}

/// Count the fs operations a fault-free tenant-store run performs.
fn calibrate_tenant(batches: &[Vec<Edit>], seed: u64) -> u64 {
    let mem: Arc<dyn StoreFs> = Arc::new(MemFs::new());
    let faulty = Arc::new(FaultyFs::new(mem, IoFaultConfig::default(), seed));
    let store = tenant_store_over(Arc::clone(&faulty) as Arc<dyn StoreFs>);
    for batch in batches {
        let mut area = StagingArea::new();
        for e in batch {
            area.stage(e.clone());
        }
        store.commit("t0", area, "step").expect("no faults");
    }
    faulty.log().ops
}

struct PageFlushRow {
    crash_op: u64,
    acked_batches: usize,
    recovered: &'static str,
    ok: bool,
}

/// One page-flush crash point: commit batches through the tenant store
/// until the seeded crash, power-cycle, restart with a cold buffer pool,
/// and verify the recovered content is an un-torn WAL prefix.
fn run_page_flush_crash(
    batches: &[Vec<Edit>],
    seed: u64,
    crash_op: u64,
    violations: &mut Vec<String>,
) -> PageFlushRow {
    let mem = Arc::new(MemFs::new());
    let faulty: Arc<dyn StoreFs> = Arc::new(FaultyFs::new(
        Arc::clone(&mem) as Arc<dyn StoreFs>,
        IoFaultConfig::crash_at(crash_op),
        seed,
    ));
    let store = tenant_store_over(faulty);

    let mut acked = KnowledgeSet::new();
    let mut acked_batches = 0usize;
    let mut pending: Option<KnowledgeSet> = None;
    for batch in batches {
        let mut next = acked.clone();
        let mut area = StagingArea::new();
        for e in batch {
            next.apply(e.clone()).expect("workload edits are valid");
            area.stage(e.clone());
        }
        match store.commit("t0", area, "step") {
            Ok(_) => {
                acked = next;
                acked_batches += 1;
            }
            Err(_) => {
                pending = Some(next);
                break;
            }
        }
    }
    drop(store);
    mem.crash();

    let mut ok = true;
    let mut recovered_kind = "acked";
    let reopened = tenant_store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
    if !reopened.tenant_exists("t0") {
        if !acked.log().is_empty() {
            ok = false;
            violations.push(format!(
                "page-flush crash@{crash_op}: acked tenant vanished after restart"
            ));
        }
        return PageFlushRow {
            crash_op,
            acked_batches,
            recovered: "none",
            ok,
        };
    }
    match reopened
        .snapshot("t0")
        .and_then(|snap| snap.knowledge_set())
    {
        Ok(ks) => {
            let matches_acked = ks.content_eq(&acked);
            let matches_pending = pending.as_ref().is_some_and(|p| ks.content_eq(p));
            if matches_pending && !matches_acked {
                recovered_kind = "acked+inflight";
            }
            if !matches_acked && !matches_pending {
                ok = false;
                violations.push(format!(
                    "page-flush crash@{crash_op}: recovered state is neither the \
                     acked prefix nor the acked prefix plus the in-flight batch"
                ));
            }
            // Second restart: identical content, nothing left to repair.
            let again = tenant_store_over(Arc::clone(&mem) as Arc<dyn StoreFs>);
            match again.snapshot("t0").and_then(|s| s.knowledge_set()) {
                Ok(ks2) if ks2.content_eq(&ks) => {}
                Ok(_) => {
                    ok = false;
                    violations.push(format!(
                        "page-flush crash@{crash_op}: restart not idempotent"
                    ));
                }
                Err(e) => {
                    ok = false;
                    violations.push(format!(
                        "page-flush crash@{crash_op}: second restart failed: {e}"
                    ));
                }
            }
        }
        Err(e) => {
            ok = false;
            violations.push(format!("page-flush crash@{crash_op}: recovery failed: {e}"));
        }
    }
    PageFlushRow {
        crash_op,
        acked_batches,
        recovered: recovered_kind,
        ok,
    }
}

struct SweepArgs {
    seed: u64,
    points: u64,
    json: bool,
    smoke: bool,
}

/// `BinArgs::parse` treats any bare integer as the seed, which would eat
/// the value of `--points N` — so this binary parses its own arguments.
fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        points: 40,
        json: false,
        smoke: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--smoke" => parsed.smoke = true,
            "--points" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.points = v;
                }
            }
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    parsed
}

fn crash_row_json(row: &CrashRow) -> Value {
    Value::Object(vec![
        ("crash_op".to_string(), Value::U64(row.crash_op)),
        ("acked_log".to_string(), Value::U64(row.acked_log as u64)),
        (
            "outcome".to_string(),
            Value::Str(format!("{:?}", row.outcome)),
        ),
        (
            "bytes_truncated".to_string(),
            Value::U64(row.bytes_truncated),
        ),
        ("ok".to_string(), Value::Bool(row.ok)),
    ])
}

fn corruption_row_json(row: &CorruptionRow) -> Value {
    Value::Object(vec![
        ("rate".to_string(), Value::F64(row.rate)),
        ("runs".to_string(), Value::U64(row.runs as u64)),
        ("injected_faults".to_string(), Value::U64(row.injected)),
        ("op_errors".to_string(), Value::U64(row.op_errors)),
        ("quarantined".to_string(), Value::U64(row.quarantined)),
        (
            "bytes_truncated".to_string(),
            Value::U64(row.bytes_truncated),
        ),
        (
            "acked_divergence".to_string(),
            Value::U64(row.acked_divergence as u64),
        ),
        ("ok".to_string(), Value::Bool(row.ok)),
    ])
}

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();

    let ops = build_ops(args.seed);
    let total_ops = calibrate(&ops, args.seed);

    // Part 1: crash points evenly spaced across the workload's fs ops.
    let points = args.points.max(1);
    let mut crash_rows = Vec::new();
    for k in 1..=points {
        let crash_op = ((k * total_ops) / (points + 1)).max(1);
        crash_rows.push(run_crash_point(&ops, args.seed, crash_op, &mut violations));
    }

    // Part 2: corruption rates; smoke keeps CI fast.
    let runs_per_rate = if args.smoke { 2 } else { 5 };
    let rates = [0.02, 0.05, 0.10, 0.20];
    let corruption_rows: Vec<CorruptionRow> = rates
        .iter()
        .map(|&rate| run_corruption_rate(&ops, args.seed, rate, runs_per_rate, &mut violations))
        .collect();

    // Part 3: zero overhead without faults.
    let zero = run_zero_overhead(&ops, &mut violations);

    // Part 4: crash mid-page-flush in the disk-backed tenant store.
    let batches = tenant_batches(args.seed);
    let tenant_ops = calibrate_tenant(&batches, args.seed);
    let flush_points = if args.smoke { points.min(12) } else { points };
    let mut page_flush_rows = Vec::new();
    for k in 1..=flush_points {
        let crash_op = ((k * tenant_ops) / (flush_points + 1)).max(1);
        page_flush_rows.push(run_page_flush_crash(
            &batches,
            args.seed,
            crash_op,
            &mut violations,
        ));
    }

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("durability_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.smoke { "smoke" } else { "full" }.to_string()),
        ),
        ("workload_ops".to_string(), Value::U64(ops.len() as u64)),
        ("fs_ops".to_string(), Value::U64(total_ops)),
        ("crash_points".to_string(), Value::U64(points)),
        (
            "crash_rows".to_string(),
            Value::Array(crash_rows.iter().map(crash_row_json).collect()),
        ),
        (
            "corruption_rows".to_string(),
            Value::Array(corruption_rows.iter().map(corruption_row_json).collect()),
        ),
        (
            "zero_overhead".to_string(),
            Value::Object(vec![
                (
                    "byte_identical".to_string(),
                    Value::Bool(zero.byte_identical),
                ),
                ("reopen_clean".to_string(), Value::Bool(zero.reopen_clean)),
                ("store_ms".to_string(), Value::F64(zero.store_ms)),
                ("plain_ms".to_string(), Value::F64(zero.plain_ms)),
            ]),
        ),
        (
            "page_flush_rows".to_string(),
            Value::Array(
                page_flush_rows
                    .iter()
                    .map(|row| {
                        Value::Object(vec![
                            ("crash_op".to_string(), Value::U64(row.crash_op)),
                            (
                                "acked_batches".to_string(),
                                Value::U64(row.acked_batches as u64),
                            ),
                            (
                                "recovered".to_string(),
                                Value::Str(row.recovered.to_string()),
                            ),
                            ("ok".to_string(), Value::Bool(row.ok)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_durability.json", &json) {
        eprintln!("warning: could not write BENCH_durability.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Durability sweep — crash/corruption recovery of the knowledge store \
             (seed {}, {} workload ops, {} fs ops)",
            args.seed,
            ops.len(),
            total_ops
        );
        let passed = crash_rows.iter().filter(|r| r.ok).count();
        println!(
            "\ncrash-point sweep: {passed}/{} points recovered exactly the acked prefix",
            crash_rows.len()
        );
        let mut outcome_counts: Vec<(String, usize)> = Vec::new();
        for row in &crash_rows {
            let key = format!("{:?}", row.outcome);
            match outcome_counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => outcome_counts.push((key, 1)),
            }
        }
        for (outcome, n) in &outcome_counts {
            println!("  {outcome:<14} ×{n}");
        }
        println!(
            "\n{:>6} {:>5} {:>9} {:>9} {:>11} {:>11} {:>6}",
            "rate", "runs", "injected", "op errs", "quarantined", "trunc bytes", "diverged"
        );
        for row in &corruption_rows {
            println!(
                "{:>5.0}% {:>5} {:>9} {:>9} {:>11} {:>11} {:>8}",
                row.rate * 100.0,
                row.runs,
                row.injected,
                row.op_errors,
                row.quarantined,
                row.bytes_truncated,
                row.acked_divergence
            );
        }
        println!(
            "\nzero-overhead check: {} (byte-identical {}, clean reload {}, \
             store {:.1} ms vs plain {:.1} ms)",
            if zero.byte_identical && zero.reopen_clean {
                "PASS"
            } else {
                "FAIL"
            },
            zero.byte_identical,
            zero.reopen_clean,
            zero.store_ms,
            zero.plain_ms
        );
        let flush_passed = page_flush_rows.iter().filter(|r| r.ok).count();
        let inflight = page_flush_rows
            .iter()
            .filter(|r| r.recovered == "acked+inflight")
            .count();
        println!(
            "\npage-flush crash sweep: {flush_passed}/{} points recovered an un-torn \
             WAL prefix ({inflight} kept a fully-durable in-flight batch)",
            page_flush_rows.len()
        );
        if !violations.is_empty() {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
        println!("wrote BENCH_durability.json");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
