//! **Chaos sweep**: GenEdit under injected model faults, 0%–50%.
//!
//! Wraps the oracle in a deterministic [`FaultInjector`] and the pipeline
//! in the retry/breaker layer, then sweeps the transient-fault rate and
//! reports Execution Accuracy, operator degradations, retries, sheds, and
//! simulated retry overhead per rate. The rate-0 row doubles as the
//! zero-overhead check: with no faults the resilient pipeline must match
//! the plain pipeline's EX and model-call count exactly.
//!
//! `--spikes` switches to the **latency-spike-only** mode: the injector
//! fires timing faults only (no error-side faults), real-clock, with
//! the pipeline's model wrapped in hedged dispatch. Spikes change when
//! answers arrive, never what they are — so EX must hold exactly at
//! every spike rate while the hedge fired/won counters show the tail
//! being cut. Both modes write the same `BENCH_chaos.json` artifact.
//!
//! Run: `cargo run --release -p genedit-bench --bin chaos_sweep`
//! (`--smoke` = small workload for CI; `--spikes` = latency-spike mode;
//! `--json` prints the document; the JSON is always written to
//! `BENCH_chaos.json`.)

use genedit_bird::Workload;
use genedit_core::{Ablation, Harness};
use genedit_llm::{
    Clock, FaultConfig, FaultInjector, HedgePolicy, HedgedModel, OracleModel, ResiliencePolicy,
    ResilienceState, SimulatedClock, SystemClock,
};
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Row {
    rate: f64,
    ex: f64,
    tasks: usize,
    degraded: usize,
    injected: u64,
    retries: u64,
    sheds: u64,
    exhausted: u64,
    model_calls: usize,
    backoff_ms: f64,
}

/// One sweep point: a fresh injector + resilience runtime at `rate`, the
/// full GenEdit configuration over the whole workload.
fn run_rate(workload: &Workload, seed: u64, rate: f64) -> Row {
    let clock = Arc::new(SimulatedClock::new());
    let injector = FaultInjector::new(
        OracleModel::new(workload.registry()),
        FaultConfig::transient_only(rate),
        seed,
    )
    .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
    let harness = Harness::with_model(workload, injector);
    let state = Arc::new(
        ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .with_metrics(Arc::clone(harness.metrics())),
    );
    let harness = harness.with_resilience(state);
    let report = harness.run_genedit(Ablation::None);

    let snapshot = harness.metrics().snapshot();
    let sum_prefix = |prefix: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, count)| *count)
            .sum()
    };
    Row {
        rate,
        ex: report.ex(None),
        tasks: report.outcomes.len(),
        degraded: report.operators.values().map(|s| s.degraded).sum(),
        injected: harness.model().log().total(),
        retries: sum_prefix("model.retry."),
        sheds: sum_prefix("model.shed."),
        exhausted: sum_prefix("model.exhausted."),
        model_calls: harness.model_usage().total_calls(),
        backoff_ms: clock.total_slept().as_secs_f64() * 1e3,
    }
}

/// Injected spike duration in the `--spikes` mode. Real-clock: hedging
/// decides on wall time, so simulated sleeps would hide the very
/// stragglers it exists to cut.
const SPIKE: Duration = Duration::from_millis(25);
/// Fixed hedge delay for the spike mode — well under a spike, well over
/// the oracle's (near-zero) base latency.
const SPIKE_HEDGE_DELAY: Duration = Duration::from_millis(5);

struct SpikeRow {
    rate: f64,
    ex: f64,
    tasks: usize,
    spikes: u64,
    hedge_fired: u64,
    hedge_won: u64,
    hedge_wasted: u64,
    model_calls: usize,
    wall_ms: f64,
}

/// One spike-mode point: latency spikes only (every call still answers
/// correctly, some answer late), hedged dispatch over the injector.
fn run_spike_rate(workload: &Workload, seed: u64, rate: f64) -> SpikeRow {
    let injector = FaultInjector::new(
        OracleModel::new(workload.registry()),
        FaultConfig {
            latency_spike: rate,
            spike: SPIKE,
            ..FaultConfig::default()
        },
        seed,
    )
    .with_clock(Arc::new(SystemClock::new()) as Arc<dyn Clock>);
    let hedged = HedgedModel::new(
        injector,
        HedgePolicy {
            min_delay: SPIKE_HEDGE_DELAY,
            max_delay: SPIKE_HEDGE_DELAY,
            min_observations: 10,
            ..HedgePolicy::default()
        },
    );
    let started = Instant::now();
    let harness = Harness::with_model(workload, hedged);
    let report = harness.run_genedit(Ablation::None);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = harness.model().stats();
    SpikeRow {
        rate,
        ex: report.ex(None),
        tasks: report.outcomes.len(),
        spikes: harness.model().inner().log().latency_spikes,
        hedge_fired: stats.fired,
        hedge_won: stats.won,
        hedge_wasted: stats.wasted,
        model_calls: harness.model_usage().total_calls(),
        wall_ms,
    }
}

fn spike_row_json(row: &SpikeRow) -> Value {
    Value::Object(vec![
        ("rate".to_string(), Value::F64(row.rate)),
        ("ex".to_string(), Value::F64(row.ex)),
        ("tasks".to_string(), Value::U64(row.tasks as u64)),
        ("latency_spikes".to_string(), Value::U64(row.spikes)),
        ("hedge_fired".to_string(), Value::U64(row.hedge_fired)),
        ("hedge_won".to_string(), Value::U64(row.hedge_won)),
        ("hedge_wasted".to_string(), Value::U64(row.hedge_wasted)),
        (
            "model_calls".to_string(),
            Value::U64(row.model_calls as u64),
        ),
        ("wall_ms".to_string(), Value::F64(row.wall_ms)),
    ])
}

/// The `--spikes` entry point: sweep the spike rate, assert EX is
/// untouched (spikes are timing-only), report hedge counters.
fn spike_main(seed: u64, smoke: bool, json: bool) {
    let workload = if smoke {
        Workload::small(seed)
    } else {
        Workload::standard(seed)
    };
    let rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let rows: Vec<SpikeRow> = rates
        .iter()
        .map(|&rate| run_spike_rate(&workload, seed, rate))
        .collect();

    // Spikes change timing, never answers: EX at every rate must equal
    // the rate-0 EX exactly — and the hedge must actually engage once
    // spikes appear.
    let ex0 = rows[0].ex;
    let ex_stable = rows.iter().all(|r| r.ex == ex0);
    let hedged_when_spiked = rows.iter().all(|r| r.spikes == 0 || r.hedge_fired > 0);

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("chaos_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(seed)),
        (
            "mode".to_string(),
            Value::Str(if smoke { "smoke" } else { "standard" }.to_string()),
        ),
        (
            "tasks".to_string(),
            Value::U64(workload.task_count() as u64),
        ),
        (
            "fault_kind".to_string(),
            Value::Str("latency_spike".to_string()),
        ),
        (
            "spike_ms".to_string(),
            Value::F64(SPIKE.as_secs_f64() * 1e3),
        ),
        (
            "hedge_delay_ms".to_string(),
            Value::F64(SPIKE_HEDGE_DELAY.as_secs_f64() * 1e3),
        ),
        ("ex_stable".to_string(), Value::Bool(ex_stable)),
        (
            "hedged_when_spiked".to_string(),
            Value::Bool(hedged_when_spiked),
        ),
        (
            "rows".to_string(),
            Value::Array(rows.iter().map(spike_row_json).collect()),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_chaos.json", &rendered) {
        eprintln!("warning: could not write BENCH_chaos.json: {err}");
    }

    if json {
        println!("{rendered}");
    } else {
        println!(
            "Chaos sweep (latency spikes) — hedged GenEdit under {}ms spikes \
             (seed {seed}, {} tasks{})",
            SPIKE.as_millis(),
            workload.task_count(),
            if smoke { ", smoke" } else { "" }
        );
        println!(
            "{:>6} {:>7} {:>8} {:>9} {:>7} {:>8} {:>12} {:>10}",
            "rate", "EX%", "spikes", "fired", "won", "wasted", "model calls", "wall ms"
        );
        for row in &rows {
            println!(
                "{:>5.0}% {:>7.2} {:>8} {:>9} {:>7} {:>8} {:>12} {:>10.1}",
                row.rate * 100.0,
                row.ex,
                row.spikes,
                row.hedge_fired,
                row.hedge_won,
                row.hedge_wasted,
                row.model_calls,
                row.wall_ms
            );
        }
        println!(
            "\nEX stable across spike rates: {}; hedge engaged wherever spikes landed: {}",
            if ex_stable { "PASS" } else { "FAIL" },
            if hedged_when_spiked { "PASS" } else { "FAIL" }
        );
        println!("wrote BENCH_chaos.json");
    }
    if !ex_stable || !hedged_when_spiked {
        std::process::exit(1);
    }
}

fn row_json(row: &Row) -> Value {
    Value::Object(vec![
        ("rate".to_string(), Value::F64(row.rate)),
        ("ex".to_string(), Value::F64(row.ex)),
        ("tasks".to_string(), Value::U64(row.tasks as u64)),
        ("degraded".to_string(), Value::U64(row.degraded as u64)),
        ("injected_faults".to_string(), Value::U64(row.injected)),
        ("retries".to_string(), Value::U64(row.retries)),
        ("sheds".to_string(), Value::U64(row.sheds)),
        ("exhausted".to_string(), Value::U64(row.exhausted)),
        (
            "model_calls".to_string(),
            Value::U64(row.model_calls as u64),
        ),
        ("backoff_ms".to_string(), Value::F64(row.backoff_ms)),
    ])
}

fn main() {
    let args = genedit_bench::BinArgs::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = args.seed;
    if std::env::args().any(|a| a == "--spikes") {
        spike_main(seed, smoke, args.json);
        return;
    }
    let workload = if smoke {
        Workload::small(seed)
    } else {
        Workload::standard(seed)
    };

    // The fault-free reference: plain oracle, no resilience layer.
    let plain = Harness::new(&workload);
    let plain_report = plain.run_genedit(Ablation::None);
    let plain_ex = plain_report.ex(None);
    let plain_calls = plain.model_usage().total_calls();

    let rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let rows: Vec<Row> = rates
        .iter()
        .map(|&rate| run_rate(&workload, seed, rate))
        .collect();

    // Zero-overhead invariant: at rate 0 the resilient pipeline is
    // byte-for-byte the plain pipeline.
    let zero = &rows[0];
    let zero_overhead = zero.ex == plain_ex
        && zero.model_calls == plain_calls
        && zero.retries == 0
        && zero.backoff_ms == 0.0;

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("chaos_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(seed)),
        (
            "mode".to_string(),
            Value::Str(if smoke { "smoke" } else { "standard" }.to_string()),
        ),
        (
            "tasks".to_string(),
            Value::U64(workload.task_count() as u64),
        ),
        (
            "fault_kind".to_string(),
            Value::Str("transient".to_string()),
        ),
        (
            "baseline".to_string(),
            Value::Object(vec![
                ("ex".to_string(), Value::F64(plain_ex)),
                ("model_calls".to_string(), Value::U64(plain_calls as u64)),
            ]),
        ),
        ("zero_overhead".to_string(), Value::Bool(zero_overhead)),
        (
            "rows".to_string(),
            Value::Array(rows.iter().map(row_json).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_chaos.json", &json) {
        eprintln!("warning: could not write BENCH_chaos.json: {err}");
    }

    if args.json {
        println!("{json}");
        return;
    }

    println!(
        "Chaos sweep — GenEdit EX under injected transient faults \
         (seed {seed}, {} tasks{})",
        workload.task_count(),
        if smoke { ", smoke" } else { "" }
    );
    println!(
        "{:>6} {:>7} {:>9} {:>9} {:>8} {:>6} {:>10} {:>12} {:>12}",
        "rate",
        "EX%",
        "injected",
        "retries",
        "sheds",
        "exh.",
        "degraded",
        "model calls",
        "backoff ms"
    );
    for row in &rows {
        println!(
            "{:>5.0}% {:>7.2} {:>9} {:>9} {:>8} {:>6} {:>10} {:>12} {:>12.1}",
            row.rate * 100.0,
            row.ex,
            row.injected,
            row.retries,
            row.sheds,
            row.exhausted,
            row.degraded,
            row.model_calls,
            row.backoff_ms
        );
    }
    println!(
        "\nzero-overhead check at rate 0: {} \
         (plain EX {plain_ex:.2} / {plain_calls} calls vs resilient \
         EX {:.2} / {} calls, {} retries)",
        if zero_overhead { "PASS" } else { "FAIL" },
        zero.ex,
        zero.model_calls,
        zero.retries
    );
    println!("wrote BENCH_chaos.json");
    if !zero_overhead {
        std::process::exit(1);
    }
}
