//! **Chaos sweep**: GenEdit under injected model faults, 0%–50%.
//!
//! Wraps the oracle in a deterministic [`FaultInjector`] and the pipeline
//! in the retry/breaker layer, then sweeps the transient-fault rate and
//! reports Execution Accuracy, operator degradations, retries, sheds, and
//! simulated retry overhead per rate. The rate-0 row doubles as the
//! zero-overhead check: with no faults the resilient pipeline must match
//! the plain pipeline's EX and model-call count exactly.
//!
//! Run: `cargo run --release -p genedit-bench --bin chaos_sweep`
//! (`--smoke` = small workload for CI; `--json` prints the document;
//! the JSON is always written to `BENCH_chaos.json`.)

use genedit_bird::Workload;
use genedit_core::{Ablation, Harness};
use genedit_llm::{
    Clock, FaultConfig, FaultInjector, OracleModel, ResiliencePolicy, ResilienceState,
    SimulatedClock,
};
use serde_json::Value;
use std::sync::Arc;

struct Row {
    rate: f64,
    ex: f64,
    tasks: usize,
    degraded: usize,
    injected: u64,
    retries: u64,
    sheds: u64,
    exhausted: u64,
    model_calls: usize,
    backoff_ms: f64,
}

/// One sweep point: a fresh injector + resilience runtime at `rate`, the
/// full GenEdit configuration over the whole workload.
fn run_rate(workload: &Workload, seed: u64, rate: f64) -> Row {
    let clock = Arc::new(SimulatedClock::new());
    let injector = FaultInjector::new(
        OracleModel::new(workload.registry()),
        FaultConfig::transient_only(rate),
        seed,
    )
    .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
    let harness = Harness::with_model(workload, injector);
    let state = Arc::new(
        ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .with_metrics(Arc::clone(harness.metrics())),
    );
    let harness = harness.with_resilience(state);
    let report = harness.run_genedit(Ablation::None);

    let snapshot = harness.metrics().snapshot();
    let sum_prefix = |prefix: &str| -> u64 {
        snapshot
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, count)| *count)
            .sum()
    };
    Row {
        rate,
        ex: report.ex(None),
        tasks: report.outcomes.len(),
        degraded: report.operators.values().map(|s| s.degraded).sum(),
        injected: harness.model().log().total(),
        retries: sum_prefix("model.retry."),
        sheds: sum_prefix("model.shed."),
        exhausted: sum_prefix("model.exhausted."),
        model_calls: harness.model_usage().total_calls(),
        backoff_ms: clock.total_slept().as_secs_f64() * 1e3,
    }
}

fn row_json(row: &Row) -> Value {
    Value::Object(vec![
        ("rate".to_string(), Value::F64(row.rate)),
        ("ex".to_string(), Value::F64(row.ex)),
        ("tasks".to_string(), Value::U64(row.tasks as u64)),
        ("degraded".to_string(), Value::U64(row.degraded as u64)),
        ("injected_faults".to_string(), Value::U64(row.injected)),
        ("retries".to_string(), Value::U64(row.retries)),
        ("sheds".to_string(), Value::U64(row.sheds)),
        ("exhausted".to_string(), Value::U64(row.exhausted)),
        (
            "model_calls".to_string(),
            Value::U64(row.model_calls as u64),
        ),
        ("backoff_ms".to_string(), Value::F64(row.backoff_ms)),
    ])
}

fn main() {
    let args = genedit_bench::BinArgs::parse();
    let smoke = std::env::args().any(|a| a == "--smoke");
    let seed = args.seed;
    let workload = if smoke {
        Workload::small(seed)
    } else {
        Workload::standard(seed)
    };

    // The fault-free reference: plain oracle, no resilience layer.
    let plain = Harness::new(&workload);
    let plain_report = plain.run_genedit(Ablation::None);
    let plain_ex = plain_report.ex(None);
    let plain_calls = plain.model_usage().total_calls();

    let rates = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
    let rows: Vec<Row> = rates
        .iter()
        .map(|&rate| run_rate(&workload, seed, rate))
        .collect();

    // Zero-overhead invariant: at rate 0 the resilient pipeline is
    // byte-for-byte the plain pipeline.
    let zero = &rows[0];
    let zero_overhead = zero.ex == plain_ex
        && zero.model_calls == plain_calls
        && zero.retries == 0
        && zero.backoff_ms == 0.0;

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("chaos_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(seed)),
        (
            "mode".to_string(),
            Value::Str(if smoke { "smoke" } else { "standard" }.to_string()),
        ),
        (
            "tasks".to_string(),
            Value::U64(workload.task_count() as u64),
        ),
        (
            "fault_kind".to_string(),
            Value::Str("transient".to_string()),
        ),
        (
            "baseline".to_string(),
            Value::Object(vec![
                ("ex".to_string(), Value::F64(plain_ex)),
                ("model_calls".to_string(), Value::U64(plain_calls as u64)),
            ]),
        ),
        ("zero_overhead".to_string(), Value::Bool(zero_overhead)),
        (
            "rows".to_string(),
            Value::Array(rows.iter().map(row_json).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_chaos.json", &json) {
        eprintln!("warning: could not write BENCH_chaos.json: {err}");
    }

    if args.json {
        println!("{json}");
        return;
    }

    println!(
        "Chaos sweep — GenEdit EX under injected transient faults \
         (seed {seed}, {} tasks{})",
        workload.task_count(),
        if smoke { ", smoke" } else { "" }
    );
    println!(
        "{:>6} {:>7} {:>9} {:>9} {:>8} {:>6} {:>10} {:>12} {:>12}",
        "rate",
        "EX%",
        "injected",
        "retries",
        "sheds",
        "exh.",
        "degraded",
        "model calls",
        "backoff ms"
    );
    for row in &rows {
        println!(
            "{:>5.0}% {:>7.2} {:>9} {:>9} {:>8} {:>6} {:>10} {:>12} {:>12.1}",
            row.rate * 100.0,
            row.ex,
            row.injected,
            row.retries,
            row.sheds,
            row.exhausted,
            row.degraded,
            row.model_calls,
            row.backoff_ms
        );
    }
    println!(
        "\nzero-overhead check at rate 0: {} \
         (plain EX {plain_ex:.2} / {plain_calls} calls vs resilient \
         EX {:.2} / {} calls, {} retries)",
        if zero_overhead { "PASS" } else { "FAIL" },
        zero.ex,
        zero.model_calls,
        zero.retries
    );
    println!("wrote BENCH_chaos.json");
    if !zero_overhead {
        std::process::exit(1);
    }
}
