//! **Resilience sweep**: the serving runtime under seeded poison-pill
//! panic injection, with quarantine isolation and bounded-drain gates.
//!
//! Four parts, each with a hard gate (any violation exits nonzero):
//!
//! 1. *Panic containment* — the same multi-tenant request set pushed
//!    through the runtime at 0%, 2%, 5%, and 10% injected panic rates
//!    ([`FaultConfig::panic_only`], seeded). A watchdog asserts **every**
//!    admitted ticket resolves; panicked requests must resolve as
//!    `Failed`, never strand. After each run the worker pool must be
//!    back at its configured size (supervisor respawn).
//! 2. *Clean-request equivalence* — every question that completed
//!    validated under panic injection must carry a semantic fingerprint
//!    byte-identical to the no-fault baseline: panics may cost
//!    availability, never correctness. A cache hit replaying an
//!    unvalidated result is likewise a violation.
//! 3. *Quarantine isolation* — a poison-pill tenant trips its breaker;
//!    from then on its submissions are rejected at admission while a
//!    steady tenant keeps being served. The steady tenant's p99 with the
//!    noisy neighbor quarantined must stay within 10% (+ a small
//!    absolute epsilon) of its solo baseline.
//! 4. *Bounded drain* — `shutdown_with_deadline` over a deep queue must
//!    return within `timeout + DRAIN_GRACE` (plus slack) with every
//!    ticket resolved; a clean drain with a generous deadline must force
//!    nothing.
//!
//! Run: `cargo run --release -p genedit-bench --bin resilience_sweep`
//! (`--smoke`/`--quick` shrinks the workload for CI, `--json` prints
//! the document; the JSON is always written to `BENCH_resilience.json`.)

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::KnowledgeIndex;
use genedit_llm::{
    CompletionRequest, CompletionResponse, FaultConfig, FaultInjector, LanguageModel, ModelError,
    OracleConfig, OracleModel, TaskRegistry,
};
use genedit_serve::{
    QuarantineConfig, QuarantineState, QueryOutcome, QueryRequest, Rejected, ServeConfig,
    ServeRuntime, SupervisorConfig, Ticket, DRAIN_GRACE,
};
use genedit_telemetry::HistogramSummary;
use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Question marker that makes [`TenantPoisonModel`] panic.
const POISON: &str = "POISON";

/// Silence the default panic printout for *injected* panics (the fault
/// injector's poison pills and the quarantine part's marker requests);
/// real panics still print through the saved default hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if message.contains("injected poison-pill panic") || message.contains(POISON) {
                return;
            }
            default(info);
        }));
    });
}

/// Panics on requests whose question carries the poison marker; passes
/// everything else through after a fixed simulated remote-call latency
/// (so tenant-isolation latency comparisons measure real queueing).
struct TenantPoisonModel {
    inner: Arc<OracleModel>,
    latency: Duration,
}

impl LanguageModel for TenantPoisonModel {
    fn name(&self) -> &str {
        "tenant-poison"
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let original = request.prompt.original_question.as_deref().unwrap_or("");
        if request.prompt.question.contains(POISON) || original.contains(POISON) {
            panic!("{POISON}-pill request");
        }
        std::thread::sleep(self.latency);
        self.inner.complete(request)
    }
}

struct SweepArgs {
    seed: u64,
    quick: bool,
    json: bool,
    /// Requests per panic-containment run.
    requests: usize,
    /// Steady-tenant requests per quarantine phase.
    steady: usize,
}

fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        quick: false,
        json: false,
        requests: 0,
        steady: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--quick" | "--smoke" => parsed.quick = true,
            "--requests" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.requests = v;
                }
            }
            "--steady" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.steady = v;
                }
            }
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    if parsed.requests == 0 {
        parsed.requests = if parsed.quick { 40 } else { 120 };
    }
    if parsed.steady == 0 {
        parsed.steady = if parsed.quick { 40 } else { 100 };
    }
    parsed
}

struct Harness {
    bundle: DomainBundle,
    index: Arc<KnowledgeIndex>,
    oracle: Arc<OracleModel>,
}

impl Harness {
    fn build(seed: u64) -> Harness {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), seed);
        let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        Harness {
            bundle,
            index,
            oracle: Arc::new(oracle),
        }
    }

    /// The seeded multi-tenant request stream.
    fn request(&self, i: usize) -> QueryRequest {
        let tasks = &self.bundle.tasks;
        QueryRequest::new(
            format!("tenant-{}", i % 3),
            &tasks[i % tasks.len()].question,
        )
    }

    fn question(&self, i: usize) -> &str {
        &self.bundle.tasks[i % self.bundle.tasks.len()].question
    }
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig {
        poll_interval: Duration::from_millis(1),
        backoff_base: Duration::from_millis(1),
        backoff_max: Duration::from_millis(10),
        respawn_budget: 100_000,
    }
}

/// Semantic fingerprint of a generation, excluding the trace.
fn fingerprint(r: &genedit_core::GenerationResult) -> String {
    format!(
        "sql={:?}|reform={:?}|intents={:?}|ex={:?}|ins={:?}|schema={:?}|errors={:?}|validated={}",
        r.sql,
        r.reformulated,
        r.intents,
        r.used_examples,
        r.used_instructions,
        r.used_schema,
        r.errors,
        r.validated
    )
}

/// Watchdog wait: the whole point of the sweep is that tickets resolve
/// even when requests panic, so an unresolved ticket is reported as a
/// violation instead of hanging the bench.
fn wait_watchdog(ticket: &Ticket, bound: Duration) -> Option<QueryOutcome> {
    let deadline = Instant::now() + bound;
    loop {
        if let Some(outcome) = ticket.try_wait() {
            return Some(outcome);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

struct PanicRow {
    rate: f64,
    submitted: usize,
    completed: usize,
    failed: usize,
    stranded: usize,
    injected_panics: u64,
    respawned: u64,
    pool_recovered: bool,
    /// Question index → fingerprint of a validated completion.
    fingerprints: BTreeMap<usize, String>,
}

const WORKERS: usize = 2;

fn run_panic_rate(
    harness: &Harness,
    rate: f64,
    requests: usize,
    seed: u64,
    violations: &mut Vec<String>,
) -> PanicRow {
    let model = FaultInjector::new(
        TenantPoisonModel {
            inner: Arc::clone(&harness.oracle),
            latency: Duration::ZERO,
        },
        FaultConfig::panic_only(rate),
        seed,
    );
    let runtime = ServeRuntime::start(
        model,
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: WORKERS,
            queue_capacity: requests + 8,
            supervisor: fast_supervisor(),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<(usize, Ticket)> = (0..requests)
        .map(|i| {
            let ticket = runtime
                .submit(harness.request(i))
                .expect("panic run queue sized to fit the whole request set");
            (i, ticket)
        })
        .collect();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut stranded = 0usize;
    let mut fingerprints = BTreeMap::new();
    for (i, ticket) in &tickets {
        match wait_watchdog(ticket, Duration::from_secs(60)) {
            Some(QueryOutcome::Completed { result, cached, .. }) => {
                completed += 1;
                if cached && !result.validated {
                    violations.push(format!(
                        "rate {rate}: cache replayed an unvalidated result for request {i}"
                    ));
                }
                if result.validated {
                    fingerprints
                        .entry(i % harness.bundle.tasks.len())
                        .or_insert_with(|| fingerprint(&result));
                }
            }
            Some(QueryOutcome::Failed { .. }) => {
                failed += 1;
                if rate == 0.0 {
                    violations.push(format!("rate 0: request {i} failed with no fault injected"));
                }
            }
            Some(other) => {
                violations.push(format!(
                    "rate {rate}: request {i} resolved unexpectedly as {other:?}"
                ));
            }
            None => {
                stranded += 1;
                violations.push(format!(
                    "rate {rate}: ticket {} stranded past the watchdog",
                    ticket.request_id()
                ));
            }
        }
    }
    // The pool must heal back to its configured size.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut pool_recovered = false;
    while Instant::now() < deadline {
        if runtime.workers_alive() == WORKERS {
            pool_recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    if !pool_recovered {
        violations.push(format!(
            "rate {rate}: pool stuck at {}/{WORKERS} workers after the run",
            runtime.workers_alive()
        ));
    }
    let injected_panics = runtime.metrics().counter("serve.panic");
    let respawned = runtime.metrics().counter("serve.worker.respawned");
    if injected_panics as usize != failed {
        violations.push(format!(
            "rate {rate}: {injected_panics} panics recorded but {failed} Failed outcomes"
        ));
    }
    runtime.shutdown();
    PanicRow {
        rate,
        submitted: requests,
        completed,
        failed,
        stranded,
        injected_panics,
        respawned,
        pool_recovered,
        fingerprints,
    }
}

struct QuarantineRow {
    trip_requests: usize,
    quarantined_rejections: usize,
    steady_solo_p99_ms: f64,
    steady_mixed_p99_ms: f64,
    p99_ratio: f64,
}

/// p99 degradation allowed for the steady tenant when its neighbor is
/// quarantined: 10% relative plus a small absolute epsilon so the gate
/// is robust to scheduler jitter at millisecond scales.
const P99_RELATIVE_MARGIN: f64 = 1.10;
const P99_EPSILON_MS: f64 = 5.0;

fn quarantine_runtime(harness: &Harness) -> ServeRuntime<TenantPoisonModel> {
    ServeRuntime::start(
        TenantPoisonModel {
            inner: Arc::clone(&harness.oracle),
            latency: Duration::from_micros(500),
        },
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: WORKERS,
            queue_capacity: 256,
            // Caches off: every steady request pays full generation, so
            // the p99 comparison measures service, not hit ratios.
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            supervisor: fast_supervisor(),
            quarantine: QuarantineConfig {
                enabled: true,
                window: Duration::from_secs(60),
                min_samples: 3,
                failure_ratio: 0.5,
                cooldown: Duration::from_secs(300),
                probe_quota: 1,
            },
            ..ServeConfig::default()
        },
    )
}

/// Closed-loop latencies for the steady tenant. When `noisy` is true,
/// every steady request is preceded by a quarantined tenant's submission
/// (which must be rejected at the gate).
fn steady_pass(
    harness: &Harness,
    runtime: &ServeRuntime<TenantPoisonModel>,
    count: usize,
    noisy: bool,
    rejections: &mut usize,
    violations: &mut Vec<String>,
) -> Vec<f64> {
    let mut latencies = Vec::with_capacity(count);
    for i in 0..count {
        if noisy {
            match runtime.submit(QueryRequest::new("noisy", format!("{POISON} flood {i}"))) {
                Err(Rejected::Quarantined) => *rejections += 1,
                Ok(ticket) => {
                    // A probe would be admitted; with a 300 s cooldown none
                    // should appear inside this pass.
                    violations.push("quarantined tenant was admitted mid-pass".to_string());
                    let _ = wait_watchdog(&ticket, Duration::from_secs(30));
                }
                Err(other) => {
                    violations.push(format!("noisy submit saw unexpected {other:?}"));
                }
            }
        }
        let started = Instant::now();
        let ticket = match runtime.submit(QueryRequest::new("steady", harness.question(i))) {
            Ok(t) => t,
            Err(err) => {
                violations.push(format!("steady submit rejected with {err:?}"));
                continue;
            }
        };
        match wait_watchdog(&ticket, Duration::from_secs(30)) {
            Some(outcome) if outcome.is_completed() => {
                latencies.push(started.elapsed().as_secs_f64() * 1000.0);
            }
            Some(other) => violations.push(format!("steady request {i} resolved as {other:?}")),
            None => violations.push(format!("steady request {i} stranded")),
        }
    }
    latencies
}

fn run_quarantine(harness: &Harness, steady: usize, violations: &mut Vec<String>) -> QuarantineRow {
    // Solo baseline: the steady tenant alone on a fresh runtime.
    let solo_rt = quarantine_runtime(harness);
    let mut unused = 0usize;
    let solo = steady_pass(harness, &solo_rt, steady, false, &mut unused, violations);
    solo_rt.shutdown();

    // Mixed run: trip the noisy tenant's breaker, then interleave.
    let runtime = quarantine_runtime(harness);
    let mut trip_requests = 0usize;
    let trip_deadline = Instant::now() + Duration::from_secs(30);
    while runtime.quarantine_state("noisy") != QuarantineState::Open {
        if Instant::now() >= trip_deadline {
            violations.push("noisy tenant never tripped its quarantine".to_string());
            break;
        }
        match runtime.submit(QueryRequest::new(
            "noisy",
            format!("{POISON} trip {trip_requests}"),
        )) {
            Ok(ticket) => {
                trip_requests += 1;
                let _ = wait_watchdog(&ticket, Duration::from_secs(30));
            }
            Err(Rejected::Quarantined) => break,
            Err(other) => {
                violations.push(format!("trip submit saw unexpected {other:?}"));
            }
        }
    }
    // Let the supervisor heal the pool before measuring latencies.
    let heal_deadline = Instant::now() + Duration::from_secs(10);
    while runtime.workers_alive() != WORKERS && Instant::now() < heal_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut rejections = 0usize;
    let mixed = steady_pass(harness, &runtime, steady, true, &mut rejections, violations);
    if rejections == 0 {
        violations.push("quarantine produced no admission rejections".to_string());
    }
    runtime.shutdown();

    let solo_sum = HistogramSummary::from_samples(&solo);
    let mixed_sum = HistogramSummary::from_samples(&mixed);
    let bound = solo_sum.p99 * P99_RELATIVE_MARGIN + P99_EPSILON_MS;
    if mixed_sum.p99 > bound {
        violations.push(format!(
            "steady tenant p99 degraded beyond the isolation gate: solo {:.2}ms vs \
             quarantined-neighbor {:.2}ms (bound {:.2}ms)",
            solo_sum.p99, mixed_sum.p99, bound
        ));
    }
    QuarantineRow {
        trip_requests,
        quarantined_rejections: rejections,
        steady_solo_p99_ms: solo_sum.p99,
        steady_mixed_p99_ms: mixed_sum.p99,
        p99_ratio: if solo_sum.p99 > 0.0 {
            mixed_sum.p99 / solo_sum.p99
        } else {
            1.0
        },
    }
}

struct DrainRow {
    queued: usize,
    timeout_ms: u64,
    elapsed_ms: f64,
    within_bound: bool,
    clean: bool,
    forced_queued: u64,
    cancelled_inflight: u64,
    forced_inflight: u64,
    all_resolved: bool,
}

fn run_drain(
    harness: &Harness,
    requests: usize,
    timeout: Duration,
    violations: &mut Vec<String>,
) -> DrainRow {
    let runtime = ServeRuntime::start(
        TenantPoisonModel {
            inner: Arc::clone(&harness.oracle),
            latency: Duration::from_millis(2),
        },
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: WORKERS,
            queue_capacity: requests + 8,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            supervisor: fast_supervisor(),
            ..ServeConfig::default()
        },
    );
    let tickets: Vec<Ticket> = (0..requests)
        .map(|i| {
            runtime
                .submit(harness.request(i))
                .expect("drain queue sized to fit the whole request set")
        })
        .collect();
    let report = runtime.shutdown_with_deadline(timeout);
    // Generous slack on top of the structural bound: the bench may run
    // on loaded CI machines.
    let bound = timeout + DRAIN_GRACE + Duration::from_secs(2);
    let within_bound = report.elapsed <= bound;
    if !within_bound {
        violations.push(format!(
            "drain took {:?}, bound was {timeout:?} + {DRAIN_GRACE:?} (+2s slack)",
            report.elapsed
        ));
    }
    let mut all_resolved = true;
    for ticket in &tickets {
        if ticket.try_wait().is_none() {
            all_resolved = false;
            violations.push(format!(
                "ticket {} unresolved after shutdown_with_deadline returned",
                ticket.request_id()
            ));
        }
    }
    DrainRow {
        queued: requests,
        timeout_ms: timeout.as_millis() as u64,
        elapsed_ms: report.elapsed.as_secs_f64() * 1000.0,
        within_bound,
        clean: report.clean,
        forced_queued: report.forced_queued,
        cancelled_inflight: report.cancelled_inflight,
        forced_inflight: report.forced_inflight,
        all_resolved,
    }
}

fn panic_row_json(row: &PanicRow) -> Value {
    Value::Object(vec![
        ("panic_rate".to_string(), Value::F64(row.rate)),
        ("submitted".to_string(), Value::U64(row.submitted as u64)),
        ("completed".to_string(), Value::U64(row.completed as u64)),
        ("failed".to_string(), Value::U64(row.failed as u64)),
        ("stranded".to_string(), Value::U64(row.stranded as u64)),
        (
            "injected_panics".to_string(),
            Value::U64(row.injected_panics),
        ),
        ("workers_respawned".to_string(), Value::U64(row.respawned)),
        (
            "pool_recovered".to_string(),
            Value::Bool(row.pool_recovered),
        ),
    ])
}

fn drain_row_json(row: &DrainRow) -> Value {
    Value::Object(vec![
        ("queued".to_string(), Value::U64(row.queued as u64)),
        ("timeout_ms".to_string(), Value::U64(row.timeout_ms)),
        ("elapsed_ms".to_string(), Value::F64(row.elapsed_ms)),
        ("within_bound".to_string(), Value::Bool(row.within_bound)),
        ("clean".to_string(), Value::Bool(row.clean)),
        ("forced_queued".to_string(), Value::U64(row.forced_queued)),
        (
            "cancelled_inflight".to_string(),
            Value::U64(row.cancelled_inflight),
        ),
        (
            "forced_inflight".to_string(),
            Value::U64(row.forced_inflight),
        ),
        ("all_resolved".to_string(), Value::Bool(row.all_resolved)),
    ])
}

fn main() {
    quiet_injected_panics();
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();
    let harness = Harness::build(args.seed);

    // Parts 1 + 2: panic containment at increasing rates, with the 0%
    // run doubling as the fingerprint baseline.
    let rates = [0.0, 0.02, 0.05, 0.10];
    let panic_rows: Vec<PanicRow> = rates
        .iter()
        .map(|&rate| run_panic_rate(&harness, rate, args.requests, args.seed, &mut violations))
        .collect();
    let baseline = &panic_rows[0].fingerprints;
    let mut fingerprints_checked = 0usize;
    for row in &panic_rows[1..] {
        for (question, fp) in &row.fingerprints {
            let Some(base) = baseline.get(question) else {
                continue;
            };
            fingerprints_checked += 1;
            if fp != base {
                violations.push(format!(
                    "rate {}: clean completion for question {question} diverges from the \
                     no-fault baseline:\n  baseline: {base}\n  faulted:  {fp}",
                    row.rate
                ));
            }
        }
    }
    if fingerprints_checked == 0 {
        violations.push("no clean completions overlapped the baseline".to_string());
    }

    // Part 3: quarantine isolation.
    let quarantine = run_quarantine(&harness, args.steady, &mut violations);

    // Part 4: bounded drain — forced under a tight deadline, clean under
    // a generous one.
    let forced_drain = run_drain(
        &harness,
        args.requests.max(32),
        Duration::from_millis(100),
        &mut violations,
    );
    if forced_drain.clean && forced_drain.forced_queued == 0 {
        // Not a violation — a fast machine may genuinely drain in time —
        // but the row records it either way.
        eprintln!("note: tight-deadline drain finished cleanly on this machine");
    }
    let clean_drain = run_drain(&harness, 8, Duration::from_secs(30), &mut violations);
    if !clean_drain.clean {
        violations.push(format!(
            "generous-deadline drain still forced work: {clean_drain:?}",
            clean_drain = (
                clean_drain.forced_queued,
                clean_drain.cancelled_inflight,
                clean_drain.forced_inflight
            )
        ));
    }

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("resilience_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.quick { "quick" } else { "full" }.to_string()),
        ),
        ("requests".to_string(), Value::U64(args.requests as u64)),
        ("workers".to_string(), Value::U64(WORKERS as u64)),
        (
            "panic_containment".to_string(),
            Value::Array(panic_rows.iter().map(panic_row_json).collect()),
        ),
        (
            "fingerprints_checked".to_string(),
            Value::U64(fingerprints_checked as u64),
        ),
        (
            "quarantine".to_string(),
            Value::Object(vec![
                (
                    "trip_requests".to_string(),
                    Value::U64(quarantine.trip_requests as u64),
                ),
                (
                    "quarantined_rejections".to_string(),
                    Value::U64(quarantine.quarantined_rejections as u64),
                ),
                (
                    "steady_solo_p99_ms".to_string(),
                    Value::F64(quarantine.steady_solo_p99_ms),
                ),
                (
                    "steady_mixed_p99_ms".to_string(),
                    Value::F64(quarantine.steady_mixed_p99_ms),
                ),
                ("p99_ratio".to_string(), Value::F64(quarantine.p99_ratio)),
            ]),
        ),
        ("forced_drain".to_string(), drain_row_json(&forced_drain)),
        ("clean_drain".to_string(), drain_row_json(&clean_drain)),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_resilience.json", &json) {
        eprintln!("warning: could not write BENCH_resilience.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Resilience sweep — {} requests/run, {} workers (seed {})",
            args.requests, WORKERS, args.seed
        );
        println!("\npanic containment (every ticket must resolve):");
        for row in &panic_rows {
            println!(
                "  {:>4.0}% panics: {:>3} completed, {:>3} failed, {} stranded, \
                 {} respawns, pool recovered: {}",
                row.rate * 100.0,
                row.completed,
                row.failed,
                row.stranded,
                row.respawned,
                row.pool_recovered
            );
        }
        println!(
            "\nclean-request equivalence: {fingerprints_checked} fingerprints vs no-fault baseline"
        );
        println!(
            "\nquarantine: tripped after {} poison requests, {} rejections at the gate",
            quarantine.trip_requests, quarantine.quarantined_rejections
        );
        println!(
            "  steady tenant p99: solo {:.2}ms vs quarantined-neighbor {:.2}ms ({:.2}x, gate {:.0}% + {}ms)",
            quarantine.steady_solo_p99_ms,
            quarantine.steady_mixed_p99_ms,
            quarantine.p99_ratio,
            (P99_RELATIVE_MARGIN - 1.0) * 100.0,
            P99_EPSILON_MS
        );
        println!(
            "\ndrain: tight {}ms deadline -> {:.0}ms elapsed ({} forced queued, {} cancelled, \
             {} forced in-flight); generous deadline clean: {}",
            forced_drain.timeout_ms,
            forced_drain.elapsed_ms,
            forced_drain.forced_queued,
            forced_drain.cancelled_inflight,
            forced_drain.forced_inflight,
            clean_drain.clean
        );
        if violations.is_empty() {
            println!("\nall resilience invariants held");
        } else {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
