//! **Batching sweep**: the cross-request micro-batching scheduler under
//! simulated remote-LLM latency.
//!
//! Three parts:
//!
//! 1. *Throughput* — the same request set pushed through 8 serve workers
//!    twice, caches off: once unbatched (every model call is its own
//!    backend round trip) and once through the [`BatchScheduler`]
//!    (concurrent same-kind calls coalesce into one `complete_batch`).
//!    The simulated backend serializes round trips — the profile of a
//!    per-connection or rate-limited remote endpoint, where a batch of
//!    `n` costs one latency budget instead of `n`. **Violation if the
//!    batched run is below 2x the unbatched throughput.**
//! 2. *Byte identity* — every request's semantic fingerprint from the
//!    batched run must match the unbatched run exactly. **Any divergence
//!    exits nonzero**: batching that changes answers is a correctness
//!    bug, not a throughput feature.
//! 3. *Ensemble fan-out* — the pipeline's `ensemble_width` candidate
//!    fan-out run over the scheduler versus the serial candidate loop,
//!    same seeds: fingerprints must match and the parallel run's backend
//!    round trips must come in below the serial run's.
//!
//! Run: `cargo run --release -p genedit-bench --bin batch_sweep`
//! (`--quick` shrinks the workload for CI, `--json` prints the
//! document; the JSON is always written to `BENCH_batch.json`.)

use genedit_bird::{DomainBundle, SPORTS};
use genedit_core::{
    CandidateSelection, GenEditPipeline, GenerateOptions, KnowledgeIndex, PipelineConfig,
};
use genedit_llm::{
    BatchConfig, BatchScheduler, CompletionRequest, CompletionResponse, LanguageModel, ModelError,
    OracleConfig, OracleModel, TaskRegistry,
};
use genedit_serve::{QueryRequest, ServeConfig, ServeRuntime};
use genedit_telemetry::HistogramSummary;
use serde_json::Value;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The oracle behind a simulated remote endpoint that serializes round
/// trips: each dispatch (single call or batch) holds the backend for one
/// latency budget plus a small per-item cost. This is the regime
/// batching exists for — `n` coalesced requests cost one round trip, so
/// the scheduler's win shows up as wall-clock, not bookkeeping.
struct RemoteBatchModel {
    inner: Arc<OracleModel>,
    backend: Mutex<()>,
    latency: Duration,
    per_item: Duration,
    round_trips: AtomicUsize,
    calls: AtomicUsize,
}

impl RemoteBatchModel {
    fn new(inner: Arc<OracleModel>, latency: Duration) -> RemoteBatchModel {
        RemoteBatchModel {
            inner,
            backend: Mutex::new(()),
            latency,
            per_item: latency / 20,
            round_trips: AtomicUsize::new(0),
            calls: AtomicUsize::new(0),
        }
    }

    fn dispatch(&self, items: usize) {
        let _backend = self
            .backend
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        std::thread::sleep(self.latency + self.per_item * items as u32);
        self.round_trips.fetch_add(1, Ordering::Relaxed);
        self.calls.fetch_add(items, Ordering::Relaxed);
    }
}

impl LanguageModel for RemoteBatchModel {
    fn name(&self) -> &str {
        "remote-batch-oracle"
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        self.dispatch(1);
        self.inner.complete(request)
    }

    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        self.dispatch(requests.len());
        requests.iter().map(|r| self.inner.complete(r)).collect()
    }
}

struct SweepArgs {
    seed: u64,
    quick: bool,
    json: bool,
    /// Simulated backend round-trip latency, microseconds.
    latency_us: u64,
    /// Requests per throughput run.
    requests: usize,
}

fn parse_args() -> SweepArgs {
    let mut parsed = SweepArgs {
        seed: 42,
        quick: false,
        json: false,
        latency_us: 3000,
        requests: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => parsed.json = true,
            "--quick" | "--smoke" => parsed.quick = true,
            "--latency-us" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.latency_us = v;
                }
            }
            "--requests" => {
                if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                    parsed.requests = v;
                }
            }
            other => {
                if let Ok(s) = other.parse() {
                    parsed.seed = s;
                }
            }
        }
    }
    if parsed.requests == 0 {
        parsed.requests = if parsed.quick { 24 } else { 48 };
    }
    parsed
}

struct Harness {
    bundle: DomainBundle,
    index: Arc<KnowledgeIndex>,
    oracle: Arc<OracleModel>,
    latency: Duration,
}

impl Harness {
    fn build(seed: u64, latency: Duration) -> Harness {
        let bundle = DomainBundle::build(&SPORTS, (8, 7, 3), seed);
        let index = Arc::new(KnowledgeIndex::build(bundle.build_knowledge()));
        let mut reg = TaskRegistry::new();
        for t in &bundle.tasks {
            reg.register(t.clone());
        }
        let oracle = OracleModel::with_config(
            reg,
            OracleConfig {
                noise_rate: 0.0,
                pseudo_drift_probability: 0.0,
                drift_probability: 0.0,
                canonical_form_penalty: 0.0,
                ..Default::default()
            },
        );
        Harness {
            bundle,
            index,
            oracle: Arc::new(oracle),
            latency,
        }
    }

    fn request(&self, i: usize) -> QueryRequest {
        let tasks = &self.bundle.tasks;
        let tenant = format!("tenant-{}", i % 3);
        QueryRequest::new(tenant, &tasks[i % tasks.len()].question)
    }
}

/// Semantic fingerprint of a generation, excluding the trace (span
/// timings legitimately differ). Byte-for-byte comparable.
fn fingerprint(r: &genedit_core::GenerationResult) -> String {
    format!(
        "sql={:?}|reform={:?}|intents={:?}|ex={:?}|ins={:?}|schema={:?}|errors={:?}|validated={}",
        r.sql,
        r.reformulated,
        r.intents,
        r.used_examples,
        r.used_instructions,
        r.used_schema,
        r.errors,
        r.validated
    )
}

struct ThroughputRow {
    batched: bool,
    requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    round_trips: usize,
    model_calls: usize,
    mean_batch_size: f64,
    latency_ms: HistogramSummary,
    /// `batch.size` histogram from the runtime's registry (batched run
    /// only — the disabled scheduler records nothing).
    batch_size: Option<HistogramSummary>,
    coalesce_wait_ms: Option<HistogramSummary>,
    fingerprints: Vec<String>,
}

/// Open-loop run at 8 workers, caches off: submit the whole request set
/// at once, wait for all, fingerprint every answer in submit order.
fn run_throughput(harness: &Harness, batch: BatchConfig, requests: usize) -> ThroughputRow {
    let batched = batch.enabled();
    let model = Arc::new(RemoteBatchModel::new(
        Arc::clone(&harness.oracle),
        harness.latency,
    ));
    let runtime = ServeRuntime::start(
        Arc::clone(&model),
        Arc::clone(&harness.index),
        0,
        Arc::new(harness.bundle.db.clone()),
        ServeConfig {
            workers: 8,
            queue_capacity: requests + 8,
            result_cache_capacity: 0,
            reform_cache_capacity: 0,
            batch,
            ..ServeConfig::default()
        },
    );
    let started = Instant::now();
    let tickets: Vec<_> = (0..requests)
        .map(|i| {
            let t0 = Instant::now();
            let ticket = runtime
                .submit(harness.request(i))
                .expect("throughput queue sized to fit the whole request set");
            (ticket, t0)
        })
        .collect();
    let mut latencies = Vec::with_capacity(requests);
    let mut fingerprints = Vec::with_capacity(requests);
    for (ticket, t0) in tickets {
        let outcome = ticket.wait();
        let result = outcome.result().expect("throughput run lost a request");
        fingerprints.push(fingerprint(result));
        latencies.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    let wall = started.elapsed();
    let snapshot = runtime.metrics().snapshot();
    runtime.shutdown();

    let batch_size = snapshot.histograms.get("batch.size").cloned();
    let coalesce_wait_ms = snapshot.histograms.get("batch.coalesce_wait.ms").cloned();
    let round_trips = model.round_trips.load(Ordering::Relaxed);
    let model_calls = model.calls.load(Ordering::Relaxed);
    ThroughputRow {
        batched,
        requests,
        wall_ms: wall.as_secs_f64() * 1000.0,
        throughput_rps: requests as f64 / wall.as_secs_f64(),
        round_trips,
        model_calls,
        mean_batch_size: model_calls as f64 / round_trips.max(1) as f64,
        latency_ms: HistogramSummary::from_samples(&latencies),
        batch_size,
        coalesce_wait_ms,
        fingerprints,
    }
}

/// Throughput is measured as the best of `passes` identical runs: timing
/// noise (a loaded machine, an unlucky scheduling window) only ever
/// *lowers* measured throughput, so the max is the least-noisy estimate
/// of what the configuration can do. Answers must stay byte-identical
/// across passes — any divergence is a determinism violation.
fn best_throughput(
    harness: &Harness,
    batch: BatchConfig,
    requests: usize,
    passes: usize,
    violations: &mut Vec<String>,
) -> ThroughputRow {
    let mut best: Option<ThroughputRow> = None;
    for _ in 0..passes.max(1) {
        let row = run_throughput(harness, batch.clone(), requests);
        if let Some(b) = &best {
            if row.fingerprints != b.fingerprints {
                violations.push(format!(
                    "answers diverged across identical measurement passes \
                     (batched = {})",
                    row.batched
                ));
            }
        }
        if best
            .as_ref()
            .is_none_or(|b| row.throughput_rps > b.throughput_rps)
        {
            best = Some(row);
        }
    }
    best.expect("at least one measurement pass runs")
}

struct EnsembleRow {
    questions: usize,
    width: usize,
    serial_wall_ms: f64,
    fanout_wall_ms: f64,
    speedup: f64,
    serial_round_trips: usize,
    fanout_round_trips: usize,
    divergent: usize,
}

/// The candidate fan-out measured directly on the pipeline: `width`
/// candidates sampled serially versus in parallel over the scheduler.
/// Plan generation is off so both paths sample the same seed set and the
/// outputs admit byte comparison.
fn run_ensemble(harness: &Harness, width: usize, violations: &mut Vec<String>) -> EnsembleRow {
    let cfg = PipelineConfig {
        candidates: width,
        candidate_selection: CandidateSelection::MajorityResult,
        use_plan: false,
        ..Default::default()
    };
    let questions = harness.bundle.tasks.len().min(8);

    let serial_model = Arc::new(RemoteBatchModel::new(
        Arc::clone(&harness.oracle),
        harness.latency,
    ));
    let serial = GenEditPipeline::with_config(Arc::clone(&serial_model), cfg.clone());
    let t0 = Instant::now();
    let serial_results: Vec<_> = (0..questions)
        .map(|i| {
            serial.generate(
                &harness.bundle.tasks[i].question,
                &harness.index,
                &harness.bundle.db,
                &[],
            )
        })
        .collect();
    let serial_wall = t0.elapsed();

    let fanout_model = Arc::new(RemoteBatchModel::new(
        Arc::clone(&harness.oracle),
        harness.latency,
    ));
    // A window the width of the fan-out: the ensemble's simultaneous
    // candidates fill a batch instantly, while solo operator calls give
    // up on coalescing after a fraction of the round-trip latency.
    let scheduler = Arc::new(BatchScheduler::new(
        Arc::clone(&fanout_model),
        BatchConfig {
            max_batch_size: width,
            max_wait: harness.latency / 4,
            ..BatchConfig::default()
        },
    ));
    let fanout = GenEditPipeline::with_config(scheduler, cfg);
    let opts = GenerateOptions {
        ensemble_width: Some(width),
        ..Default::default()
    };
    let t0 = Instant::now();
    let fanout_results: Vec<_> = (0..questions)
        .map(|i| {
            fanout.generate_with(
                &harness.bundle.tasks[i].question,
                &harness.index,
                &harness.bundle.db,
                &[],
                &opts,
            )
        })
        .collect();
    let fanout_wall = t0.elapsed();

    let mut divergent = 0usize;
    for (i, (s, f)) in serial_results.iter().zip(&fanout_results).enumerate() {
        if fingerprint(s) != fingerprint(f) {
            divergent += 1;
            violations.push(format!(
                "ensemble fan-out diverges from serial candidates for question {i}:\n  \
                 serial: {}\n  fanout: {}",
                fingerprint(s),
                fingerprint(f)
            ));
        }
    }
    let serial_round_trips = serial_model.round_trips.load(Ordering::Relaxed);
    let fanout_round_trips = fanout_model.round_trips.load(Ordering::Relaxed);
    if fanout_round_trips >= serial_round_trips {
        violations.push(format!(
            "ensemble fan-out did not coalesce: {fanout_round_trips} round trips \
             vs {serial_round_trips} serial"
        ));
    }
    EnsembleRow {
        questions,
        width,
        serial_wall_ms: serial_wall.as_secs_f64() * 1000.0,
        fanout_wall_ms: fanout_wall.as_secs_f64() * 1000.0,
        speedup: serial_wall.as_secs_f64() / fanout_wall.as_secs_f64().max(f64::MIN_POSITIVE),
        serial_round_trips,
        fanout_round_trips,
        divergent,
    }
}

fn histogram_json(h: &HistogramSummary) -> Value {
    Value::Object(vec![
        ("count".to_string(), Value::U64(h.count as u64)),
        ("mean".to_string(), Value::F64(h.mean)),
        ("min".to_string(), Value::F64(h.min)),
        ("max".to_string(), Value::F64(h.max)),
        ("p50".to_string(), Value::F64(h.p50)),
        ("p95".to_string(), Value::F64(h.p95)),
        ("p99".to_string(), Value::F64(h.p99)),
    ])
}

fn throughput_json(row: &ThroughputRow) -> Value {
    let mut fields = vec![
        ("batched".to_string(), Value::Bool(row.batched)),
        ("requests".to_string(), Value::U64(row.requests as u64)),
        ("wall_ms".to_string(), Value::F64(row.wall_ms)),
        ("throughput_rps".to_string(), Value::F64(row.throughput_rps)),
        (
            "backend_round_trips".to_string(),
            Value::U64(row.round_trips as u64),
        ),
        (
            "model_calls".to_string(),
            Value::U64(row.model_calls as u64),
        ),
        (
            "mean_batch_size".to_string(),
            Value::F64(row.mean_batch_size),
        ),
        ("latency_ms".to_string(), histogram_json(&row.latency_ms)),
    ];
    if let Some(h) = &row.batch_size {
        fields.push(("batch_size".to_string(), histogram_json(h)));
    }
    if let Some(h) = &row.coalesce_wait_ms {
        fields.push(("coalesce_wait_ms".to_string(), histogram_json(h)));
    }
    Value::Object(fields)
}

fn main() {
    let args = parse_args();
    let mut violations: Vec<String> = Vec::new();
    let harness = Harness::build(args.seed, Duration::from_micros(args.latency_us));

    // Part 1+2: unbatched baseline, then the scheduler, same requests.
    // Full mode measures twice and keeps the better pass per config;
    // quick mode stays single-pass for CI turnaround.
    let passes = if args.quick { 1 } else { 2 };
    let unbatched = best_throughput(
        &harness,
        BatchConfig::disabled(),
        args.requests,
        passes,
        &mut violations,
    );
    // Short collection window: co-arriving calls coalesce within half a
    // round trip, and whenever the backend is busy the scheduler's
    // continuous batching extends collection for free (the next window
    // absorbs arrivals until the in-flight dispatch returns), so a long
    // window would only burn worker time while the backend sits idle.
    let batched = best_throughput(
        &harness,
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_micros(args.latency_us / 2),
            ..BatchConfig::default()
        },
        args.requests,
        passes,
        &mut violations,
    );
    let speedup = batched.throughput_rps / unbatched.throughput_rps.max(f64::MIN_POSITIVE);
    if speedup < 2.0 {
        violations.push(format!(
            "batched throughput speedup {speedup:.2}x below the 2x floor \
             ({:.1} rps vs {:.1} rps unbatched)",
            batched.throughput_rps, unbatched.throughput_rps
        ));
    }
    let divergent = unbatched
        .fingerprints
        .iter()
        .zip(&batched.fingerprints)
        .filter(|(a, b)| a != b)
        .count();
    if divergent > 0 {
        violations.push(format!(
            "{divergent}/{} batched answers diverge from the unbatched baseline",
            args.requests
        ));
    }

    // Part 3: candidate fan-out on the pipeline itself.
    let ensemble = run_ensemble(&harness, 4, &mut violations);

    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("batch_sweep".to_string()),
        ),
        ("seed".to_string(), Value::U64(args.seed)),
        (
            "mode".to_string(),
            Value::Str(if args.quick { "quick" } else { "full" }.to_string()),
        ),
        ("model_latency_us".to_string(), Value::U64(args.latency_us)),
        ("workers".to_string(), Value::U64(8)),
        ("requests".to_string(), Value::U64(args.requests as u64)),
        ("unbatched".to_string(), throughput_json(&unbatched)),
        ("batched".to_string(), throughput_json(&batched)),
        ("batched_speedup".to_string(), Value::F64(speedup)),
        ("byte_identical".to_string(), Value::Bool(divergent == 0)),
        (
            "ensemble".to_string(),
            Value::Object(vec![
                (
                    "questions".to_string(),
                    Value::U64(ensemble.questions as u64),
                ),
                ("width".to_string(), Value::U64(ensemble.width as u64)),
                (
                    "serial_wall_ms".to_string(),
                    Value::F64(ensemble.serial_wall_ms),
                ),
                (
                    "fanout_wall_ms".to_string(),
                    Value::F64(ensemble.fanout_wall_ms),
                ),
                ("speedup".to_string(), Value::F64(ensemble.speedup)),
                (
                    "serial_round_trips".to_string(),
                    Value::U64(ensemble.serial_round_trips as u64),
                ),
                (
                    "fanout_round_trips".to_string(),
                    Value::U64(ensemble.fanout_round_trips as u64),
                ),
                (
                    "byte_identical".to_string(),
                    Value::Bool(ensemble.divergent == 0),
                ),
            ]),
        ),
        (
            "violations".to_string(),
            Value::Array(violations.iter().map(|v| Value::Str(v.clone())).collect()),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    if let Err(err) = std::fs::write("BENCH_batch.json", &json) {
        eprintln!("warning: could not write BENCH_batch.json: {err}");
    }

    if args.json {
        println!("{json}");
    } else {
        println!(
            "Batching sweep — {} requests, 8 workers, {}us simulated round trip (seed {})",
            args.requests, args.latency_us, args.seed
        );
        println!("\nthroughput (caches off, serialized backend):");
        for row in [&unbatched, &batched] {
            println!(
                "  {}: {:6.1} rps  {:4} round trips  mean batch {:.1}  p95 latency {:6.1}ms",
                if row.batched {
                    "batched  "
                } else {
                    "unbatched"
                },
                row.throughput_rps,
                row.round_trips,
                row.mean_batch_size,
                row.latency_ms.p95
            );
        }
        println!("  batched speedup: {speedup:.2}x (floor 2x)");
        println!(
            "  byte identity: {}/{} answers identical",
            args.requests - divergent,
            args.requests
        );
        println!(
            "\nensemble fan-out (width {} over {} questions, plan off):",
            ensemble.width, ensemble.questions
        );
        println!(
            "  serial {:6.1}ms / {} round trips  vs  fanout {:6.1}ms / {} round trips \
             = {:.2}x",
            ensemble.serial_wall_ms,
            ensemble.serial_round_trips,
            ensemble.fanout_wall_ms,
            ensemble.fanout_round_trips,
            ensemble.speedup
        );
        if violations.is_empty() {
            println!("\nall batching invariants held");
        } else {
            println!("\nVIOLATIONS:");
            for v in &violations {
                println!("  - {v}");
            }
        }
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
