//! **Telemetry report**: renders the span tree of one full-pipeline
//! generation, prints the per-operator time/call/LLM-attribution
//! breakdown over the whole suite, and writes the structured report to
//! `BENCH_telemetry.json`.
//!
//! Run: `cargo run --release -p genedit-bench --bin trace_report [seed] [--json]`
//!
//! With `--json` the report is printed to stdout instead of (in addition
//! to the file) the human-readable tree.
//!
//! **Flight-recorder mode**: `trace_report --recorder <dump.jsonl>`
//! reads a flight-recorder dump (written by the serving runtime on an
//! SLO breach, or by `obs_sweep` as `BENCH_obs_recorder.jsonl`) and
//! renders the slowest / degraded / errored requests with a
//! per-operator breakdown, keyed by request ID — the postmortem view
//! that joins against metric exemplars carrying the same IDs.

use genedit_bird::Workload;
use genedit_core::{Ablation, GenEditPipeline, Harness, KnowledgeIndex};
use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};
use genedit_telemetry::recorder::{dump_from_jsonl, RecordedRequest, RequestVerdict};
use genedit_telemetry::span::AttrValue;
use genedit_telemetry::{export, names, operator_breakdown, render_trace, MetricsRegistry, Tracer};
use serde::Serialize;
use serde_json::Value;
use std::sync::Arc;

/// How many requests the recorder view details, worst first.
const RECORDER_TOP: usize = 10;

fn verdict_label(v: RequestVerdict) -> &'static str {
    match v {
        RequestVerdict::Ok => "ok",
        RequestVerdict::Degraded => "degraded",
        RequestVerdict::Error => "error",
        RequestVerdict::Cancelled => "cancelled",
        RequestVerdict::Panicked => "panicked",
    }
}

/// Sort key: panics first, then errors, degraded, cancelled, plain Ok;
/// within a class, slowest first.
fn severity(v: RequestVerdict) -> u8 {
    match v {
        RequestVerdict::Panicked => 0,
        RequestVerdict::Error => 1,
        RequestVerdict::Degraded => 2,
        RequestVerdict::Cancelled => 3,
        RequestVerdict::Ok => 4,
    }
}

fn render_recorder_dump(path: &str) {
    let raw = match std::fs::read_to_string(path) {
        Ok(raw) => raw,
        Err(err) => {
            eprintln!("error: could not read {path}: {err}");
            std::process::exit(1);
        }
    };
    let mut records = match dump_from_jsonl(&raw) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("error: {path} is not a flight-recorder JSONL dump: {err}");
            std::process::exit(1);
        }
    };
    println!("Flight-recorder dump: {path} ({} records)", records.len());
    let mut by_verdict: std::collections::BTreeMap<&str, usize> = Default::default();
    for r in &records {
        *by_verdict.entry(verdict_label(r.verdict)).or_default() += 1;
    }
    let counts: Vec<String> = by_verdict.iter().map(|(v, n)| format!("{n} {v}")).collect();
    println!("  {}", counts.join(", "));

    records.sort_by(|a, b| {
        severity(a.verdict).cmp(&severity(b.verdict)).then(
            b.latency_ms
                .partial_cmp(&a.latency_ms)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    for record in records.iter().take(RECORDER_TOP) {
        render_recorded_request(record);
    }
    if records.len() > RECORDER_TOP {
        println!(
            "\n… {} more records (full set in {path})",
            records.len() - RECORDER_TOP
        );
    }
}

fn render_recorded_request(record: &RecordedRequest) {
    println!(
        "\n{}  [{}]  {:.3}ms end-to-end",
        record.request_id,
        verdict_label(record.verdict),
        record.latency_ms
    );
    // Joinability check: the root span should carry the same request ID
    // the recorder (and the metric exemplars) key on.
    let span_id = record
        .trace
        .all_spans()
        .iter()
        .find_map(|s| match s.attr("request_id") {
            Some(AttrValue::Str(id)) => Some(id.clone()),
            _ => None,
        });
    match span_id {
        Some(id) if id == record.request_id => {}
        Some(id) => println!(
            "  WARNING: trace carries request_id={id}, record says {}",
            record.request_id
        ),
        None if record.trace.all_spans().is_empty() => {
            println!("  (no trace captured — request never executed)")
        }
        None => println!("  WARNING: trace carries no request_id attribute"),
    }
    let breakdown = operator_breakdown([&record.trace]);
    if breakdown.is_empty() {
        return;
    }
    println!(
        "  {:<28} {:>6} {:>12} {:>10} {:>9} {:>9}",
        "span", "calls", "total ms", "mean ms", "llm", "degraded"
    );
    for (name, stats) in &breakdown {
        println!(
            "  {:<28} {:>6} {:>12.3} {:>10.3} {:>9} {:>9}",
            name, stats.count, stats.total_ms, stats.mean_ms, stats.llm_calls, stats.degraded
        );
    }
    for w in &record.trace.warnings {
        println!("  warning: {w}");
    }
}

fn main() {
    // `--recorder <path>` switches the bin into postmortem-viewer mode;
    // everything else is the classic suite report.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = argv.iter().position(|a| a == "--recorder") {
        match argv.get(pos + 1) {
            Some(path) => {
                render_recorder_dump(path);
                return;
            }
            None => {
                eprintln!("usage: trace_report --recorder <dump.jsonl>");
                std::process::exit(2);
            }
        }
    }
    let args = genedit_bench::BinArgs::parse();
    let seed = args.seed;
    let workload = Workload::small(seed);

    // ---- one deeply-traced generation: the span tree ------------------
    let bundle = &workload.domains[0];
    let task = bundle
        .tasks
        .iter()
        .max_by_key(|t| t.question.len())
        .expect("workload has tasks");
    let mut registry = TaskRegistry::new();
    for t in &bundle.tasks {
        registry.register(t.clone());
    }
    let oracle = OracleModel::with_config(registry, OracleConfig::default());
    let metrics = Arc::new(MetricsRegistry::default());
    let pipeline = GenEditPipeline::new(&oracle).with_metrics(Arc::clone(&metrics));

    // Trace the knowledge preprocessing stage too.
    let preprocess_tracer = Tracer::new(names::PREPROCESS);
    let ks = genedit_knowledge::build_knowledge_set_traced(
        &bundle.preprocess_config(),
        &bundle.logs,
        &bundle.docs,
        &bundle.db,
        &preprocess_tracer,
    )
    .expect("logs are valid");
    let preprocess_trace = preprocess_tracer.finish();
    let index = KnowledgeIndex::build(ks);
    let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);

    // ---- suite-wide breakdown -----------------------------------------
    let harness = Harness::new(&workload);
    let report = harness.run_genedit(Ablation::None);
    let usage = harness.model_usage();

    // ---- structured report --------------------------------------------
    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("trace_report".to_string()),
        ),
        ("seed".to_string(), Value::U64(seed)),
        (
            "tasks".to_string(),
            Value::U64(workload.task_count() as u64),
        ),
        ("question".to_string(), Value::Str(task.question.clone())),
        ("preprocess_trace".to_string(), preprocess_trace.serialize()),
        ("generation_trace".to_string(), result.trace.serialize()),
        (
            "generation_metrics".to_string(),
            metrics.snapshot().serialize(),
        ),
        ("operators".to_string(), report.operators.serialize()),
        (
            "suite_metrics".to_string(),
            harness.metrics().snapshot().serialize(),
        ),
        ("model_usage".to_string(), usage.calls.serialize()),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");

    if args.json {
        println!("{json}");
        return;
    }

    println!("Trace of one generation ({}):\n", task.task_id);
    println!("{}", render_trace(&result.trace));
    if !result.warnings.is_empty() {
        println!("warnings:");
        for w in &result.warnings {
            println!("  - {w}");
        }
    }

    println!(
        "\nPer-operator breakdown over the small suite ({} tasks, method {}):",
        workload.task_count(),
        report.method
    );
    println!(
        "{:<28} {:>6} {:>12} {:>10} {:>10}",
        "span", "calls", "total ms", "mean ms", "llm calls"
    );
    for (name, stats) in &report.operators {
        println!(
            "{:<28} {:>6} {:>12.3} {:>10.3} {:>10}",
            name, stats.count, stats.total_ms, stats.mean_ms, stats.llm_calls
        );
    }

    println!("\nModel usage by task kind:");
    for (kind, calls) in &usage.calls {
        println!("  {kind:<12} {calls}");
    }
    println!("\nwrote BENCH_telemetry.json");

    // Exercise the JSONL exporter end to end so the artifact doubles as a
    // smoke test: the rendered trace must survive a round-trip.
    let jsonl = export::traces_to_jsonl(std::slice::from_ref(&result.trace));
    let back = export::traces_from_jsonl(&jsonl).expect("traces round-trip");
    assert_eq!(back.len(), 1);
    assert_eq!(
        back[0].count(names::LLM_COMPLETE),
        result.trace.count(names::LLM_COMPLETE)
    );
}
