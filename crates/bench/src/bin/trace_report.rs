//! **Telemetry report**: renders the span tree of one full-pipeline
//! generation, prints the per-operator time/call/LLM-attribution
//! breakdown over the whole suite, and writes the structured report to
//! `BENCH_telemetry.json`.
//!
//! Run: `cargo run --release -p genedit-bench --bin trace_report [seed] [--json]`
//!
//! With `--json` the report is printed to stdout instead of (in addition
//! to the file) the human-readable tree.

use genedit_bird::Workload;
use genedit_core::{Ablation, GenEditPipeline, Harness, KnowledgeIndex};
use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};
use genedit_telemetry::{export, names, render_trace, MetricsRegistry, Tracer};
use serde::Serialize;
use serde_json::Value;
use std::sync::Arc;

fn main() {
    let args = genedit_bench::BinArgs::parse();
    let seed = args.seed;
    let workload = Workload::small(seed);

    // ---- one deeply-traced generation: the span tree ------------------
    let bundle = &workload.domains[0];
    let task = bundle
        .tasks
        .iter()
        .max_by_key(|t| t.question.len())
        .expect("workload has tasks");
    let mut registry = TaskRegistry::new();
    for t in &bundle.tasks {
        registry.register(t.clone());
    }
    let oracle = OracleModel::with_config(registry, OracleConfig::default());
    let metrics = Arc::new(MetricsRegistry::default());
    let pipeline = GenEditPipeline::new(&oracle).with_metrics(Arc::clone(&metrics));

    // Trace the knowledge preprocessing stage too.
    let preprocess_tracer = Tracer::new(names::PREPROCESS);
    let ks = genedit_knowledge::build_knowledge_set_traced(
        &bundle.preprocess_config(),
        &bundle.logs,
        &bundle.docs,
        &bundle.db,
        &preprocess_tracer,
    )
    .expect("logs are valid");
    let preprocess_trace = preprocess_tracer.finish();
    let index = KnowledgeIndex::build(ks);
    let result = pipeline.generate(&task.question, &index, &bundle.db, &[]);

    // ---- suite-wide breakdown -----------------------------------------
    let harness = Harness::new(&workload);
    let report = harness.run_genedit(Ablation::None);
    let usage = harness.model_usage();

    // ---- structured report --------------------------------------------
    let doc = Value::Object(vec![
        (
            "artifact".to_string(),
            Value::Str("trace_report".to_string()),
        ),
        ("seed".to_string(), Value::U64(seed)),
        (
            "tasks".to_string(),
            Value::U64(workload.task_count() as u64),
        ),
        ("question".to_string(), Value::Str(task.question.clone())),
        ("preprocess_trace".to_string(), preprocess_trace.serialize()),
        ("generation_trace".to_string(), result.trace.serialize()),
        (
            "generation_metrics".to_string(),
            metrics.snapshot().serialize(),
        ),
        ("operators".to_string(), report.operators.serialize()),
        (
            "suite_metrics".to_string(),
            harness.metrics().snapshot().serialize(),
        ),
        ("model_usage".to_string(), usage.calls.serialize()),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("report serialization is infallible");
    std::fs::write("BENCH_telemetry.json", &json).expect("write BENCH_telemetry.json");

    if args.json {
        println!("{json}");
        return;
    }

    println!("Trace of one generation ({}):\n", task.task_id);
    println!("{}", render_trace(&result.trace));
    if !result.warnings.is_empty() {
        println!("warnings:");
        for w in &result.warnings {
            println!("  - {w}");
        }
    }

    println!(
        "\nPer-operator breakdown over the small suite ({} tasks, method {}):",
        workload.task_count(),
        report.method
    );
    println!(
        "{:<28} {:>6} {:>12} {:>10} {:>10}",
        "span", "calls", "total ms", "mean ms", "llm calls"
    );
    for (name, stats) in &report.operators {
        println!(
            "{:<28} {:>6} {:>12.3} {:>10.3} {:>10}",
            name, stats.count, stats.total_ms, stats.mean_ms, stats.llm_calls
        );
    }

    println!("\nModel usage by task kind:");
    for (kind, calls) in &usage.calls {
        println!("  {kind:<12} {calls}");
    }
    println!("\nwrote BENCH_telemetry.json");

    // Exercise the JSONL exporter end to end so the artifact doubles as a
    // smoke test: the rendered trace must survive a round-trip.
    let jsonl = export::traces_to_jsonl(std::slice::from_ref(&result.trace));
    let back = export::traces_from_jsonl(&jsonl).expect("traces round-trip");
    assert_eq!(back.len(), 1);
    assert_eq!(
        back[0].count(names::LLM_COMPLETE),
        result.trace.count(names::LLM_COMPLETE)
    );
}
