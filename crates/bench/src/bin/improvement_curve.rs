//! Regenerates the **continuous-improvement claim** (§1, §6): starting
//! from a knowledge set missing all three domain terms, SME feedback is
//! folded in round by round — staged, regression-tested, approved, merged
//! — and Execution Accuracy rises while previously-failing queries pass.
//!
//! Run: `cargo run --release -p genedit-bench --bin improvement_curve`

use genedit_bird::Workload;
use genedit_core::{
    sme, submit_edits, FeedbackSession, GenEditPipeline, GoldenQuery, KnowledgeIndex,
    SubmissionResult,
};
use genedit_knowledge::{Edit, KnowledgeSet};
use genedit_llm::OracleModel;
use serde::Serialize;
use std::collections::HashMap;

/// One row of the improvement curve, serialized under `--json`.
#[derive(Debug, Clone, Serialize)]
struct RoundRecord {
    round: usize,
    ex: f64,
    merged: usize,
    regressed: usize,
    fixed: usize,
    edits_logged: usize,
}

const ROUNDS: usize = 8;
/// Feedback sessions an SME works through per domain per round.
const SESSIONS_PER_ROUND: usize = 3;

fn degrade_all_terms(ks: &KnowledgeSet, terms: &[&str]) -> KnowledgeSet {
    let mut ks = ks.clone();
    for term in terms {
        let upper = term.to_uppercase();
        let doomed: Vec<_> = ks
            .instructions()
            .iter()
            .filter(|i| i.retrieval_text().to_uppercase().contains(&upper))
            .map(|i| i.id)
            .collect();
        for id in doomed {
            ks.apply(Edit::DeleteInstruction { id }).unwrap();
        }
        let doomed: Vec<_> = ks
            .examples()
            .iter()
            .filter(|e| e.retrieval_text().to_uppercase().contains(&upper))
            .map(|e| e.id)
            .collect();
        for id in doomed {
            ks.apply(Edit::DeleteExample { id }).unwrap();
        }
    }
    ks
}

fn main() {
    let args = genedit_bench::BinArgs::parse();
    let workload = Workload::standard(args.seed);
    let oracle = OracleModel::new(workload.registry());
    let pipeline = GenEditPipeline::new(&oracle);
    let mut records: Vec<RoundRecord> = Vec::new();

    // Day-0 deployment: the knowledge set lacks every domain term.
    let mut deployed: HashMap<String, KnowledgeSet> = workload
        .domains
        .iter()
        .map(|b| {
            let terms = [b.spec.our_term, b.spec.ratio_term, b.spec.qoq_term];
            (
                b.db.name.clone(),
                degrade_all_terms(&b.build_knowledge(), &terms),
            )
        })
        .collect();

    if !args.json {
        println!("Continuous improvement: EX per feedback round ({ROUNDS} rounds)");
        println!(
            "{:<7} {:>7} {:>9} {:>10} {:>8} {:>8}",
            "round", "EX%", "merged", "regressed", "fixed", "stats"
        );
    }

    let mut previously_failing: Vec<String> = Vec::new();
    for round in 0..=ROUNDS {
        // Evaluate the full suite against the current deployment.
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut failing: Vec<(String, String)> = Vec::new(); // (db, task_id)
        for bundle in &workload.domains {
            let index = KnowledgeIndex::build(deployed[&bundle.db.name].clone());
            for task in &bundle.tasks {
                let r = pipeline.generate(&task.question, &index, &bundle.db, &[]);
                let (ok, _) =
                    genedit_bird::score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref());
                total += 1;
                if ok {
                    correct += 1;
                } else {
                    failing.push((bundle.db.name.clone(), task.task_id.clone()));
                }
            }
        }
        let ex = 100.0 * correct as f64 / total as f64;
        let now_fixed = previously_failing
            .iter()
            .filter(|id| !failing.iter().any(|(_, f)| f == *id))
            .count();
        previously_failing = failing.iter().map(|(_, id)| id.clone()).collect();

        if round == ROUNDS {
            records.push(RoundRecord {
                round,
                ex,
                merged: 0,
                regressed: 0,
                fixed: now_fixed,
                edits_logged: deployed.values().map(|k| k.stats().edits_logged).sum(),
            });
            if !args.json {
                println!("{:<7} {:>7.2}   (final)", round, ex);
            }
            break;
        }

        // Feedback phase: SMEs work through a few failing queries per
        // domain, then submit the staged edits through regression testing.
        let mut merged = 0usize;
        let mut regressed = 0usize;
        for bundle in &workload.domains {
            let mut handled = 0usize;
            let ks_now = deployed[&bundle.db.name].clone();
            let golden: Vec<GoldenQuery> = {
                // Golden set: currently-passing queries guard the merge.
                let index = KnowledgeIndex::build(ks_now.clone());
                bundle
                    .tasks
                    .iter()
                    .filter(|t| {
                        let r = pipeline.generate(&t.question, &index, &bundle.db, &[]);
                        genedit_bird::score_prediction(&bundle.db, &t.gold_sql, r.sql.as_deref()).0
                    })
                    .take(5)
                    .map(|t| GoldenQuery {
                        question: t.question.clone(),
                        gold_sql: t.gold_sql.clone(),
                    })
                    .collect()
            };
            for task in &bundle.tasks {
                if handled >= SESSIONS_PER_ROUND {
                    break;
                }
                if !failing
                    .iter()
                    .any(|(db, id)| db == &bundle.db.name && id == &task.task_id)
                {
                    continue;
                }
                let ks_ref = deployed.get(&bundle.db.name).unwrap().clone();
                let mut session =
                    FeedbackSession::open(&pipeline, &bundle.db, &ks_ref, task.question.clone());
                let Some(feedback) = sme::feedback_for(task, session.latest.sql.as_deref()) else {
                    continue;
                };
                session.submit_feedback(&feedback);
                session.stage_all();
                session.regenerate();
                // Iterate once more if needed.
                if let Some(fb2) = sme::feedback_for(task, session.latest.sql.as_deref()) {
                    session.submit_feedback(&fb2);
                    session.stage_all();
                    session.regenerate();
                }
                handled += 1;
                let staging = session.into_staged();
                let deployed_ks = deployed.get_mut(&bundle.db.name).unwrap();
                match submit_edits(
                    &pipeline,
                    &bundle.db,
                    deployed_ks,
                    staging,
                    &golden,
                    |outcome| outcome.passed(),
                    &format!("round {round} feedback on {}", task.task_id),
                )
                .expect("staged edits apply")
                {
                    SubmissionResult::Merged { .. } => merged += 1,
                    SubmissionResult::RegressionFailed(_) => regressed += 1,
                    SubmissionResult::ApprovalDeclined(_) => {}
                }
            }
        }
        let stats: usize = deployed.values().map(|k| k.stats().edits_logged).sum();
        records.push(RoundRecord {
            round,
            ex,
            merged,
            regressed,
            fixed: now_fixed,
            edits_logged: stats,
        });
        if !args.json {
            println!(
                "{:<7} {:>7.2} {:>9} {:>10} {:>8} {:>8}",
                round, ex, merged, regressed, now_fixed, stats
            );
        }
    }

    if args.json {
        use serde::Serialize;
        use serde_json::Value;
        let doc = Value::Object(vec![
            (
                "artifact".to_string(),
                Value::Str("improvement_curve".to_string()),
            ),
            ("seed".to_string(), Value::U64(args.seed)),
            ("rounds".to_string(), records.serialize()),
        ]);
        println!(
            "{}",
            serde_json::to_string_pretty(&doc).expect("curve serialization is infallible")
        );
        return;
    }

    println!("\nKnowledge-set history (sports domain):");
    let sports = &deployed["sports_holding"];
    for cp in sports.checkpoints() {
        println!("  checkpoint {}: {}", cp.id, cp.label);
    }
    println!("  {} edits logged in total", sports.log().len());
}
