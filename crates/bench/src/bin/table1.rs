//! Regenerates **Table 1**: GenEdit vs the five baselines on the
//! BIRD-like suite (93/28/11 Simple/Moderate/Challenging), Execution
//! Accuracy per stratum.
//!
//! Run: `cargo run --release -p genedit-bench --bin table1`

use genedit_bench::paper::TABLE1;
use genedit_bird::{EvalReport, Workload};
use genedit_core::{paper_baselines, Ablation, Harness};
use genedit_llm::Difficulty;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    let workload = Workload::standard(seed);
    let harness = Harness::new(&workload);

    println!("Table 1 — EX on the BIRD-like suite (seed {seed}, {} tasks)", workload.task_count());
    println!("{}", EvalReport::table_header());

    let mut reports: Vec<EvalReport> = Vec::new();
    for profile in paper_baselines() {
        let r = harness.run_baseline(&profile);
        println!("{}", r.table_row());
        reports.push(r);
    }
    let genedit = harness.run_genedit(Ablation::None);
    println!("{}", genedit.table_row());
    reports.push(genedit);

    println!("\nPaper comparison (shape check):");
    for r in &reports {
        if let Some(p) = TABLE1.iter().find(|(n, ..)| *n == r.method) {
            println!(
                "{}",
                genedit_bench::compare_line(
                    &r.method,
                    (
                        r.ex(Some(Difficulty::Simple)),
                        r.ex(Some(Difficulty::Moderate)),
                        r.ex(Some(Difficulty::Challenging)),
                        r.ex(None)
                    ),
                    (p.1, p.2, p.3, p.4),
                )
            );
        }
    }
}
