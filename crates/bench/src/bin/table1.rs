//! Regenerates **Table 1**: GenEdit vs the five baselines on the
//! BIRD-like suite (93/28/11 Simple/Moderate/Challenging), Execution
//! Accuracy per stratum.
//!
//! Run: `cargo run --release -p genedit-bench --bin table1`

use genedit_bench::paper::TABLE1;
use genedit_bird::{EvalReport, Workload};
use genedit_core::{paper_baselines, Ablation, Harness};
use genedit_llm::Difficulty;

fn main() {
    let args = genedit_bench::BinArgs::parse();
    let seed = args.seed;
    let workload = Workload::standard(seed);
    let harness = Harness::new(&workload);

    let mut reports: Vec<EvalReport> = Vec::new();
    for profile in paper_baselines() {
        reports.push(harness.run_baseline(&profile));
    }
    reports.push(harness.run_genedit(Ablation::None));

    if args.json {
        println!(
            "{}",
            genedit_bench::reports_to_json("table1", seed, workload.task_count(), &reports)
        );
        return;
    }

    println!(
        "Table 1 — EX on the BIRD-like suite (seed {seed}, {} tasks)",
        workload.task_count()
    );
    println!("{}", EvalReport::table_header());
    for r in &reports {
        println!("{}", r.table_row());
    }

    println!("\nPaper comparison (shape check):");
    for r in &reports {
        if let Some(p) = TABLE1.iter().find(|(n, ..)| *n == r.method) {
            println!(
                "{}",
                genedit_bench::compare_line(
                    &r.method,
                    (
                        r.ex(Some(Difficulty::Simple)),
                        r.ex(Some(Difficulty::Moderate)),
                        r.ex(Some(Difficulty::Challenging)),
                        r.ex(None)
                    ),
                    (p.1, p.2, p.3, p.4),
                )
            );
        }
    }
}
