//! Regenerates the **§3.3.4 complexity claim**: the simpler fine-tuned
//! approach ("SimpleFT", the paper's reference 15) beats GenEdit on the benchmark,
//! yet "can't handle the same query complexity" — which is why GenEdit is
//! the one deployed. We sweep gold queries of CTE depth 1..8 and report
//! EX for both methods, plus their benchmark-suite totals.
//!
//! Run: `cargo run --release -p genedit-bench --bin complexity_sweep`

use genedit_bird::{complexity::sweep_variants, Workload, SPORTS};
use genedit_core::{
    run_baseline, Ablation, ExampleStyle, GenEditPipeline, Harness, KnowledgeIndex, MethodProfile,
    PlanStyle, SchemaStyle,
};
use genedit_llm::{OracleConfig, OracleModel, TaskRegistry};
use genedit_sql::analysis::complexity;

/// The paper's other system (its reference 15): fine-tuned model, maximal schema
/// context, simple single-shot operators.
fn simple_ft() -> MethodProfile {
    MethodProfile {
        name: "SimpleFT",
        examples: ExampleStyle::None,
        include_evidence: true,
        schema: SchemaStyle::Linked { recall: 0.99 },
        plan: PlanStyle::None,
        reasoning_effort: 1.5, // fine-tuning buys single-shot fluency
        candidates: 2,
        max_retries: 1,
    }
}

fn main() {
    // Part 1: benchmark-suite totals (SimpleFT should win, §3.3.4).
    let workload = Workload::standard(42);
    let harness = Harness::new(&workload);
    let genedit_report = harness.run_genedit(Ablation::None);
    let ft_report = harness.run_baseline(&simple_ft());
    println!("Benchmark suite (132 tasks):");
    println!("  GenEdit  EX = {:.2}", genedit_report.ex(None));
    println!(
        "  SimpleFT EX = {:.2}  (paper: 67.21 vs 60.61)",
        ft_report.ex(None)
    );

    // Part 2: the complexity sweep over chained-CTE tasks, eight
    // (year, k) variants per depth. The benchmark-noise floor and the
    // phrasing penalty are off: this is a controlled capacity experiment,
    // not a benchmark run.
    let mut registry = TaskRegistry::new();
    let mut tasks_by_depth: Vec<Vec<genedit_llm::TaskKnowledge>> = vec![Vec::new(); 9];
    #[allow(clippy::needless_range_loop)] // depth is semantic, not positional
    for depth in 1..=8 {
        for task in sweep_variants(&SPORTS, depth) {
            registry.register(task.clone());
            tasks_by_depth[depth].push(task);
        }
    }
    let oracle = OracleModel::with_config(
        registry,
        OracleConfig {
            noise_rate: 0.0,
            canonical_form_penalty: 0.0,
            ..Default::default()
        },
    );
    let pipeline = GenEditPipeline::new(&oracle);
    let bundle = workload
        .domains
        .iter()
        .find(|b| b.db.name == "sports_holding")
        .expect("sports domain");
    let index = KnowledgeIndex::build(bundle.build_knowledge());
    let ft = simple_ft();

    println!("\nComplexity sweep (chained-CTE depth, sports domain):");
    println!(
        "{:<6} {:>11} {:>10} {:>10}",
        "depth", "complexity", "GenEdit", "SimpleFT"
    );
    #[allow(clippy::needless_range_loop)]
    for depth in 1..=8 {
        let tasks = &tasks_by_depth[depth];
        let cscore = complexity(&tasks[0].gold_query()).total();
        let mut ge_ok = 0;
        let mut ft_ok = 0;
        for task in tasks {
            let r = pipeline.generate(&task.question, &index, &bundle.db, &task.evidence);
            if genedit_bird::score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref()).0 {
                ge_ok += 1;
            }
            let r = run_baseline(
                &ft,
                &oracle,
                &index,
                &bundle.db,
                &task.question,
                &[],
                &task.evidence,
            );
            if genedit_bird::score_prediction(&bundle.db, &task.gold_sql, r.sql.as_deref()).0 {
                ft_ok += 1;
            }
        }
        let n = tasks.len() as f64;
        println!(
            "{:<6} {:>11} {:>9.0}% {:>9.0}%",
            depth,
            cscore,
            100.0 * ge_ok as f64 / n,
            100.0 * ft_ok as f64 / n
        );
    }
    println!(
        "\nExpected shape: SimpleFT matches or beats GenEdit at low depth, \
         collapses once complexity exceeds its single-shot capacity; \
         GenEdit's plan-guided generation keeps working (the paper's \
         deployment argument, §3.3.4)."
    );
}
