//! Regenerates the **§4.2.3 edit-recommendation metrics**: how many
//! suggested edits are accepted as-is (the first regeneration fixes the
//! query), how many after further solver iteration, and how many need
//! manual knowledge-set edits.
//!
//! Scenario: each domain's deployment starts with the ownership-term
//! knowledge missing (the paper's Fig. 3 failure), scripted SMEs give
//! feedback on every failing query, and we track how each case resolves.
//!
//! Run: `cargo run --release -p genedit-bench --bin edit_metrics`

use genedit_bird::Workload;
use genedit_core::{sme, FeedbackSession, GenEditPipeline, KnowledgeIndex};
use genedit_knowledge::{Edit, KnowledgeSet, SourceRef};
use genedit_llm::OracleModel;

fn degrade(ks: &KnowledgeSet, term: &str) -> KnowledgeSet {
    let mut ks = ks.clone();
    let doomed: Vec<_> = ks
        .instructions()
        .iter()
        .filter(|i| {
            i.retrieval_text()
                .to_uppercase()
                .contains(&term.to_uppercase())
        })
        .map(|i| i.id)
        .collect();
    for id in doomed {
        ks.apply(Edit::DeleteInstruction { id }).unwrap();
    }
    let doomed: Vec<_> = ks
        .examples()
        .iter()
        .filter(|e| {
            e.retrieval_text()
                .to_uppercase()
                .contains(&term.to_uppercase())
        })
        .map(|e| e.id)
        .collect();
    for id in doomed {
        ks.apply(Edit::DeleteExample { id }).unwrap();
    }
    ks
}

fn main() {
    let workload = Workload::standard(42);
    let oracle = OracleModel::new(workload.registry());
    let pipeline = GenEditPipeline::new(&oracle);

    let mut accepted_as_is = 0usize;
    let mut accepted_after_iteration = 0usize;
    let mut manual_edits = 0usize;
    let mut unresolved = 0usize;
    let mut sessions = 0usize;
    let mut edits_recommended = 0usize;
    let mut edits_staged = 0usize;

    for bundle in &workload.domains {
        let deployed = degrade(&bundle.build_knowledge(), bundle.spec.our_term);
        let index = KnowledgeIndex::build(deployed.clone());

        for task in &bundle.tasks {
            let initial = pipeline.generate(&task.question, &index, &bundle.db, &[]);
            let (ok, _) =
                genedit_bird::score_prediction(&bundle.db, &task.gold_sql, initial.sql.as_deref());
            if ok {
                continue;
            }
            let Some(feedback) = sme::feedback_for(task, initial.sql.as_deref()) else {
                unresolved += 1; // the SME cannot articulate the problem
                continue;
            };
            sessions += 1;
            let mut session =
                FeedbackSession::open(&pipeline, &bundle.db, &deployed, task.question.clone());
            let n = session.submit_feedback(&feedback);
            edits_recommended += n;
            edits_staged += session.stage_all();
            session.regenerate();
            let (fixed, _) = genedit_bird::score_prediction(
                &bundle.db,
                &task.gold_sql,
                session.latest.sql.as_deref(),
            );
            if fixed {
                accepted_as_is += 1;
                continue;
            }
            // Second round: the SME refines the feedback against the
            // regenerated query.
            if let Some(feedback2) = sme::feedback_for(task, session.latest.sql.as_deref()) {
                edits_recommended += session.submit_feedback(&feedback2);
                edits_staged += session.stage_all();
                session.regenerate();
                let (fixed, _) = genedit_bird::score_prediction(
                    &bundle.db,
                    &task.gold_sql,
                    session.latest.sql.as_deref(),
                );
                if fixed {
                    accepted_after_iteration += 1;
                    continue;
                }
            }
            // Fall back to a manual knowledge-set edit: the SME writes the
            // missing instruction directly in the library (§4.2.2).
            let mut manual = deployed.clone();
            manual
                .apply(Edit::InsertInstruction {
                    intent: Some(task.intent.clone()),
                    text: format!("{} : {}", bundle.spec.our_term, bundle.spec.our_meaning),
                    sql_hint: Some(format!(
                        "{} = '{}'",
                        bundle.spec.flag_col, bundle.spec.flag_val
                    )),
                    term: Some(bundle.spec.our_term.to_string()),
                    source: SourceRef::Manual,
                })
                .unwrap();
            let manual_index = KnowledgeIndex::build(manual);
            let retry = pipeline.generate(&task.question, &manual_index, &bundle.db, &[]);
            let (fixed, _) =
                genedit_bird::score_prediction(&bundle.db, &task.gold_sql, retry.sql.as_deref());
            if fixed {
                manual_edits += 1;
            } else {
                unresolved += 1;
            }
        }
    }

    println!("Edit-recommendation metrics (§4.2.3) — scripted SMEs, ownership term removed");
    println!("----------------------------------------------------------------------");
    println!("feedback sessions opened:              {sessions}");
    println!("edits recommended:                     {edits_recommended}");
    println!("edits staged:                          {edits_staged}");
    println!("resolved by edits accepted as-is:      {accepted_as_is}");
    println!("resolved after solver iteration:       {accepted_after_iteration}");
    println!("resolved by manual knowledge edits:    {manual_edits}");
    println!("unresolved (SME could not articulate / knowledge gap elsewhere): {unresolved}");
    let resolved = accepted_as_is + accepted_after_iteration + manual_edits;
    if sessions > 0 {
        println!(
            "as-is acceptance rate: {:.1}%  (paper metric i)",
            100.0 * accepted_as_is as f64 / sessions as f64
        );
        println!(
            "after-iteration/manual rate: {:.1}%  (paper metric ii)",
            100.0 * (accepted_after_iteration + manual_edits) as f64 / sessions as f64
        );
        println!(
            "total resolution rate: {:.1}%",
            100.0 * resolved as f64 / sessions as f64
        );
    }
}
