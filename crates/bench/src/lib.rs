//! # genedit-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//! `table1`, `table2`, `figure2`, `edit_metrics`, `improvement_curve`,
//! `complexity_sweep`, plus criterion micro-benchmarks of the pipeline
//! operators in `benches/`.

/// Paper-reported numbers for side-by-side display.
pub mod paper {
    /// Table 1 rows: (method, simple, moderate, challenging, all).
    pub const TABLE1: [(&str, f64, f64, f64, f64); 6] = [
        ("CHESS", 65.43, 64.81, 58.33, 64.62),
        ("MAC-SQL", 65.73, 52.69, 40.28, 59.39),
        ("TA-SQL", 63.14, 48.60, 36.11, 56.19),
        ("DAIL-SQL", 62.5, 43.2, 37.5, 54.3),
        ("C3-SQL", 58.9, 38.5, 31.9, 50.2),
        ("GenEdit", 69.89, 39.29, 36.36, 60.61),
    ];

    /// Table 2 rows: (ablation, simple, moderate, challenging, all).
    pub const TABLE2: [(&str, f64, f64, f64, f64); 6] = [
        ("GenEdit", 69.89, 39.29, 36.36, 60.61),
        ("w/o Schema Linking", 67.74, 42.86, 18.18, 58.33),
        ("w/o Instructions", 58.06, 28.57, 36.36, 50.00),
        ("w/o Examples", 69.89, 35.71, 9.09, 59.09),
        ("w/o Pseudo-SQL", 62.37, 25.00, 18.18, 50.76),
        ("w/o Decomposition", 66.67, 46.43, 18.18, 58.33),
    ];
}

/// Render a measured-vs-paper comparison line.
pub fn compare_line(
    name: &str,
    measured: (f64, f64, f64, f64),
    paper: (f64, f64, f64, f64),
) -> String {
    format!(
        "{:<22} measured {:>6.2} {:>6.2} {:>6.2} {:>6.2} | paper {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
        name, measured.0, measured.1, measured.2, measured.3, paper.0, paper.1, paper.2, paper.3
    )
}

/// Command-line arguments shared by the table/curve binaries:
/// an optional numeric seed plus an optional `--json` flag.
pub struct BinArgs {
    pub seed: u64,
    pub json: bool,
}

impl BinArgs {
    pub fn parse() -> BinArgs {
        let mut seed = 42u64;
        let mut json = false;
        for arg in std::env::args().skip(1) {
            if arg == "--json" {
                json = true;
            } else if let Ok(s) = arg.parse() {
                seed = s;
            }
        }
        BinArgs { seed, json }
    }
}

/// Serialize a set of evaluation reports — outcomes, operator breakdowns,
/// and per-stratum EX summaries — as a pretty-printed JSON document.
pub fn reports_to_json(
    artifact: &str,
    seed: u64,
    tasks: usize,
    reports: &[genedit_bird::EvalReport],
) -> String {
    use genedit_llm::Difficulty;
    use serde::Serialize;
    use serde_json::Value;
    let reports = reports
        .iter()
        .map(|r| {
            let mut v = r.serialize();
            if let Value::Object(fields) = &mut v {
                fields.push((
                    "ex".to_string(),
                    Value::Object(vec![
                        (
                            "simple".to_string(),
                            Value::F64(r.ex(Some(Difficulty::Simple))),
                        ),
                        (
                            "moderate".to_string(),
                            Value::F64(r.ex(Some(Difficulty::Moderate))),
                        ),
                        (
                            "challenging".to_string(),
                            Value::F64(r.ex(Some(Difficulty::Challenging))),
                        ),
                        ("all".to_string(), Value::F64(r.ex(None))),
                    ]),
                ));
                fields.push(("mean_attempts".to_string(), Value::F64(r.mean_attempts())));
            }
            v
        })
        .collect();
    let doc = Value::Object(vec![
        ("artifact".to_string(), Value::Str(artifact.to_string())),
        ("seed".to_string(), Value::U64(seed)),
        ("tasks".to_string(), Value::U64(tasks as u64)),
        ("reports".to_string(), Value::Array(reports)),
    ]);
    serde_json::to_string_pretty(&doc).expect("report serialization is infallible")
}
