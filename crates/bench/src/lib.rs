//! # genedit-bench — experiment harness
//!
//! One binary per paper artifact (see DESIGN.md's experiment index):
//! `table1`, `table2`, `figure2`, `edit_metrics`, `improvement_curve`,
//! `complexity_sweep`, plus criterion micro-benchmarks of the pipeline
//! operators in `benches/`.

/// Paper-reported numbers for side-by-side display.
pub mod paper {
    /// Table 1 rows: (method, simple, moderate, challenging, all).
    pub const TABLE1: [(&str, f64, f64, f64, f64); 6] = [
        ("CHESS", 65.43, 64.81, 58.33, 64.62),
        ("MAC-SQL", 65.73, 52.69, 40.28, 59.39),
        ("TA-SQL", 63.14, 48.60, 36.11, 56.19),
        ("DAIL-SQL", 62.5, 43.2, 37.5, 54.3),
        ("C3-SQL", 58.9, 38.5, 31.9, 50.2),
        ("GenEdit", 69.89, 39.29, 36.36, 60.61),
    ];

    /// Table 2 rows: (ablation, simple, moderate, challenging, all).
    pub const TABLE2: [(&str, f64, f64, f64, f64); 6] = [
        ("GenEdit", 69.89, 39.29, 36.36, 60.61),
        ("w/o Schema Linking", 67.74, 42.86, 18.18, 58.33),
        ("w/o Instructions", 58.06, 28.57, 36.36, 50.00),
        ("w/o Examples", 69.89, 35.71, 9.09, 59.09),
        ("w/o Pseudo-SQL", 62.37, 25.00, 18.18, 50.76),
        ("w/o Decomposition", 66.67, 46.43, 18.18, 58.33),
    ];
}

/// Render a measured-vs-paper comparison line.
pub fn compare_line(name: &str, measured: (f64, f64, f64, f64), paper: (f64, f64, f64, f64)) -> String {
    format!(
        "{:<22} measured {:>6.2} {:>6.2} {:>6.2} {:>6.2} | paper {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
        name, measured.0, measured.1, measured.2, measured.3, paper.0, paper.1, paper.2, paper.3
    )
}
