//! Property tests for the batch scheduler's core guarantee: fronting a
//! deterministic model with a [`BatchScheduler`] never changes any
//! caller's response, no matter how requests interleave, which task
//! kinds they mix, how large the coalescing window is, or how many
//! duplicates land in one batch. Batching may only change *when* a
//! response arrives, never *what* it is.

use genedit_bird::Workload;
use genedit_llm::{
    BatchConfig, BatchScheduler, Clock, CompletionRequest, LanguageModel, OracleModel, Prompt,
    SimulatedClock, TaskKind,
};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

fn workload() -> &'static Workload {
    static WORKLOAD: OnceLock<Workload> = OnceLock::new();
    WORKLOAD.get_or_init(|| Workload::small(42))
}

const KINDS: [TaskKind; 5] = [
    TaskKind::Reformulate,
    TaskKind::IntentClassification,
    TaskKind::SchemaLinking,
    TaskKind::PlanGeneration,
    TaskKind::SqlGeneration,
];

/// One logical call in a schedule: which registered question, which
/// operator kind, and which sampling seed. Duplicates are allowed (and
/// likely), so batches regularly carry identical requests that must
/// still resolve per-caller.
fn arb_schedule() -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0usize..64, 0usize..KINDS.len(), 0u64..4), 1..24)
}

fn requests(schedule: &[(usize, usize, u64)]) -> Vec<CompletionRequest> {
    let w = workload();
    let tasks = w.registry().tasks().to_vec();
    schedule
        .iter()
        .map(|&(task, kind, seed)| {
            let question = &tasks[task % tasks.len()].question;
            CompletionRequest::with_seed(Prompt::new(KINDS[kind], question), seed)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any schedule of concurrent callers and any batch window, the
    /// scheduler's answers are byte-identical to calling the oracle
    /// unbatched — per caller, in caller order.
    #[test]
    fn batched_oracle_is_byte_identical_to_unbatched(
        schedule in arb_schedule(),
        max_batch in 1usize..10,
        wait_us in 0u64..5_000,
    ) {
        let w = workload();
        let oracle = OracleModel::new(w.registry());
        let reqs = requests(&schedule);

        // Ground truth: the bare oracle, one call per request.
        let expected: Vec<_> = reqs.iter().map(|r| oracle.complete(r)).collect();

        // Batched: every caller races through one shared scheduler. The
        // simulated clock makes coalescing windows elapse instantly, so
        // batch composition depends purely on thread interleaving —
        // exactly the nondeterminism the property quantifies over.
        let clock = Arc::new(SimulatedClock::new());
        let scheduler = BatchScheduler::with_clock(
            OracleModel::new(w.registry()),
            BatchConfig {
                max_batch_size: max_batch,
                max_wait: Duration::from_micros(wait_us),
                ..BatchConfig::default()
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let actual: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = reqs
                .iter()
                .map(|r| scope.spawn(|| scheduler.complete(r)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("caller thread panicked"))
                .collect()
        });

        prop_assert_eq!(actual, expected);
    }
}
