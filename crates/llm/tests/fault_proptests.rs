//! Chaos property tests: the full GenEdit pipeline, driven through a
//! deterministic [`FaultInjector`] and the retry/breaker layer, at
//! arbitrary fault seeds and rates.
//!
//! The properties:
//! 1. the pipeline never panics and always returns a `GenerationResult`
//!    (degradation, not failure);
//! 2. every injected fault leaves visible evidence — an error-attributed
//!    `llm.complete` span, an `llm.retry` span, a warning, or a recorded
//!    generation error — never a silent swallow;
//! 3. at fault rate zero the resilient stack is byte-for-byte the plain
//!    pipeline: identical outcomes, identical model-call count, zero
//!    retries and zero simulated backoff.

use genedit_bird::Workload;
use genedit_core::{Ablation, GenEditPipeline, Harness, KnowledgeIndex};
use genedit_llm::{
    Clock, FaultConfig, FaultInjector, OracleModel, ResiliencePolicy, ResilienceState,
    SimulatedClock,
};
use genedit_telemetry::names;
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn workload() -> &'static Workload {
    static WORKLOAD: OnceLock<Workload> = OnceLock::new();
    WORKLOAD.get_or_init(|| Workload::small(42))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_survives_any_fault_schedule(
        fault_seed in 0u64..10_000,
        rate in 0.0f64..0.6,
    ) {
        let w = workload();
        let clock = Arc::new(SimulatedClock::new());
        let injector = FaultInjector::new(
            OracleModel::new(w.registry()),
            FaultConfig::uniform(rate),
            fault_seed,
        )
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let state = Arc::new(ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let pipeline = GenEditPipeline::new(&injector).with_resilience_state(state);

        let bundle = &w.domains[0];
        let index = KnowledgeIndex::build(bundle.build_knowledge());
        let mut error_spans = 0usize;
        let mut retry_spans = 0usize;
        let mut warnings = 0usize;
        let mut errors = 0usize;
        for task in &bundle.tasks {
            // Property 1: this returns — no panic, no hang — for every
            // schedule, and the result is structurally complete.
            let result = pipeline.generate(&task.question, &index, &bundle.db, &task.evidence);
            prop_assert!(result.attempts >= 1);
            prop_assert!(!result.reformulated.is_empty());
            error_spans += result
                .trace
                .all_spans()
                .iter()
                .filter(|s| s.name == names::LLM_COMPLETE && s.attr("error").is_some())
                .count();
            retry_spans += result.trace.count(names::LLM_RETRY);
            warnings += result.warnings.len();
            errors += result.errors.len();
        }

        // Property 2: visibility. Every injected transport error surfaced
        // as an error-attributed llm.complete span (the injector sits
        // inside the traced layer, so nothing can hide)…
        let log = injector.log();
        prop_assert_eq!(error_spans as u64, log.errors());
        // …and injected faults of any kind leave at least one trail:
        // a retry span, a degradation warning, or a recorded error.
        if log.total() > 0 {
            prop_assert!(
                error_spans + retry_spans + warnings + errors > 0,
                "{} faults injected but no evidence in traces/warnings/errors",
                log.total()
            );
        }
    }
}

/// Property 3 as a deterministic test: a zero-rate injector plus the full
/// resilience layer changes nothing — same outcomes, same call count, no
/// retries, no backoff.
#[test]
fn zero_fault_rate_is_zero_overhead() {
    let w = workload();

    let plain = Harness::new(w);
    let plain_report = plain.run_genedit(Ablation::None);
    let plain_calls = plain.model_usage().total_calls();

    let clock = Arc::new(SimulatedClock::new());
    let injector = FaultInjector::new(OracleModel::new(w.registry()), FaultConfig::default(), 7)
        .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
    let resilient =
        Harness::with_model(w, injector).with_resilience(Arc::new(ResilienceState::new(
            ResiliencePolicy::default(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )));
    let resilient_report = resilient.run_genedit(Ablation::None);
    let resilient_calls = resilient.model_usage().total_calls();

    assert_eq!(plain_report.ex(None), resilient_report.ex(None));
    assert_eq!(plain_calls, resilient_calls);
    assert_eq!(plain_report.outcomes.len(), resilient_report.outcomes.len());
    for (a, b) in plain_report
        .outcomes
        .iter()
        .zip(resilient_report.outcomes.iter())
    {
        assert_eq!(a.task_id, b.task_id);
        assert_eq!(a.correct, b.correct, "task {}", a.task_id);
        assert_eq!(a.attempts, b.attempts, "task {}", a.task_id);
    }
    assert_eq!(resilient.model().log().total(), 0);
    assert_eq!(clock.total_slept(), std::time::Duration::ZERO);
}
