//! Property tests for the oracle's corruption machinery: every corruption
//! of a parseable query yields a parseable query, mutators hit every
//! matching site, and drift is always well-formed.

use genedit_llm::{apply_drift, mutate, Corruption};
use genedit_sql::ast::{Query, Statement};
use genedit_sql::parser::parse_statement;
use proptest::prelude::*;

/// A family of realistic analytics queries assembled from generated parts
/// (the corruption surface the oracle actually works on).
fn arb_gold_sql() -> impl Strategy<Value = String> {
    let region = prop_oneof![Just("Canada"), Just("USA"), Just("Mexico")];
    let flag = prop_oneof![Just("COC"), Just("EXT")];
    (region, flag, 1u32..6, any::<bool>(), any::<bool>()).prop_map(
        |(region, flag, k, with_cte, with_window)| {
            if with_cte {
                format!(
                    "WITH T AS (SELECT ORG, SUM(REV) AS R FROM FIN \
                     WHERE COUNTRY = '{region}' AND FLAG = '{flag}' GROUP BY ORG) \
                     SELECT ORG, R{win} FROM T ORDER BY R DESC LIMIT {k}",
                    win = if with_window {
                        ", ROW_NUMBER() OVER (ORDER BY (-1 * (R - 10)) DESC) AS RNK"
                    } else {
                        ""
                    }
                )
            } else {
                format!(
                    "SELECT ORG, SUM(REV) AS R FROM FIN WHERE COUNTRY = '{region}' \
                     AND FLAG = '{flag}' GROUP BY ORG ORDER BY R DESC LIMIT {k}"
                )
            }
        },
    )
}

fn parse(sql: &str) -> Query {
    let Statement::Query(q) = parse_statement(sql).unwrap();
    q
}

fn arb_corruption() -> impl Strategy<Value = Corruption> {
    prop_oneof![
        Just(Corruption::DropWhereConjunct {
            marker: "FLAG".into()
        }),
        Just(Corruption::DropWhereConjunct {
            marker: "COUNTRY".into()
        }),
        Just(Corruption::ReplaceStringLiteral {
            from: "COC".into(),
            to: "OWN".into()
        }),
        Just(Corruption::RenameColumn {
            from: "REV".into(),
            to: "REVENUE_X".into()
        }),
        Just(Corruption::RenameTable {
            from: "FIN".into(),
            to: "FIN_DETAILS".into()
        }),
        Just(Corruption::SwapAggregate {
            from: "SUM".into(),
            to: "AVG".into()
        }),
        Just(Corruption::StripNegOneMultiplier),
        Just(Corruption::FlipOrderDirections),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any single corruption of a well-formed query stays well-formed —
    /// the oracle never emits silently unparseable SQL through this path.
    #[test]
    fn corrupted_queries_reparse(sql in arb_gold_sql(), corruption in arb_corruption()) {
        let mut q = parse(&sql);
        corruption.apply(&mut q);
        let rendered = q.to_string();
        prop_assert!(
            parse_statement(&rendered).is_ok(),
            "corruption {corruption:?} broke: {rendered}"
        );
    }

    /// Drift is closed under iteration: applying several drifts keeps the
    /// query parseable.
    #[test]
    fn drift_chains_stay_parseable(sql in arb_gold_sql(), salts in prop::collection::vec(any::<u64>(), 1..5)) {
        let mut q = parse(&sql);
        for salt in salts {
            apply_drift(&mut q, salt);
        }
        let rendered = q.to_string();
        prop_assert!(parse_statement(&rendered).is_ok(), "{rendered}");
    }

    /// rename_column renames every matching reference and nothing else.
    #[test]
    fn rename_column_is_complete(sql in arb_gold_sql()) {
        let mut q = parse(&sql);
        let n = mutate::rename_column(&mut q, "REV", "NEWCOL");
        let rendered = q.to_string();
        // No bare REV column survives (REVENUE_X etc. were never there).
        prop_assert!(!rendered.contains("REV,") && !rendered.contains("(REV)"),
            "{rendered}");
        prop_assert!(n >= 1, "gold always references REV");
        // Renaming something absent is a no-op.
        let before = q.to_string();
        prop_assert_eq!(mutate::rename_column(&mut q, "ABSENT", "X"), 0);
        prop_assert_eq!(q.to_string(), before);
    }

    /// drop_where_conjunct removes every conjunct carrying the marker and
    /// leaves the others.
    #[test]
    fn conjunct_dropping_is_exact(sql in arb_gold_sql()) {
        let mut q = parse(&sql);
        let n = mutate::drop_where_conjunct(&mut q, "FLAG");
        prop_assert_eq!(n, 1, "exactly one FLAG conjunct in the family");
        let rendered = q.to_string();
        prop_assert!(!rendered.contains("FLAG ="), "{rendered}");
        prop_assert!(rendered.contains("COUNTRY ="), "other conjunct must survive: {rendered}");
    }

    /// Flipping order directions twice is the identity.
    #[test]
    fn double_flip_is_identity(sql in arb_gold_sql()) {
        let mut q = parse(&sql);
        let original = q.to_string();
        mutate::flip_order_directions(&mut q);
        mutate::flip_order_directions(&mut q);
        prop_assert_eq!(q.to_string(), original);
    }

    /// truncate_sql always shortens and clamps to char boundaries.
    #[test]
    fn truncation_is_safe(sql in arb_gold_sql(), frac in 0.0f64..1.5) {
        let cut = mutate::truncate_sql(&sql, frac);
        prop_assert!(cut.len() < sql.len());
        prop_assert!(sql.starts_with(&cut));
    }
}
