//! Task knowledge registry.
//!
//! In a real deployment the LLM "knows how to write SQL" and the question
//! is whether the prompt gives it the *enterprise knowledge* it lacks. The
//! oracle model reproduces that split: each benchmark task privately
//! registers its gold SQL together with the knowledge requirements needed
//! to produce it, and the oracle corrupts the gold query once per
//! requirement the prompt leaves unmet. The pipeline under test never sees
//! this registry.

use crate::mutate;
use genedit_sql::ast::{Query, Statement};
use genedit_sql::parser::parse_statement;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// BIRD difficulty strata (§3.3, Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Difficulty {
    /// BIRD "simple" stratum.
    Simple,
    /// BIRD "moderate" stratum.
    Moderate,
    /// BIRD "challenging" stratum.
    Challenging,
}

impl Difficulty {
    /// Table 1 row label for this stratum.
    pub fn label(&self) -> &'static str {
        match self {
            Difficulty::Simple => "Simple",
            Difficulty::Moderate => "Moderate",
            Difficulty::Challenging => "Challenging",
        }
    }
}

/// One corruption the oracle applies when a knowledge requirement is
/// unmet. Classified as *binding* (fails loudly at execution, so
/// self-correction can see it) or *silent* (runs fine, returns the wrong
/// answer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Corruption {
    /// Drop the WHERE conjunct(s) mentioning `marker` — e.g. the ownership
    /// filter when the model does not understand "our" (§4.2.1's example).
    DropWhereConjunct {
        /// Substring identifying the conjunct(s) to drop.
        marker: String,
    },
    /// Use the wrong constant — e.g. the wrong ownership flag value.
    ReplaceStringLiteral {
        /// The correct literal in the gold query.
        from: String,
        /// The wrong literal the corrupted query uses.
        to: String,
    },
    /// Use a wrong or hallucinated column.
    RenameColumn {
        /// The correct column name.
        from: String,
        /// The wrong/hallucinated replacement.
        to: String,
    },
    /// Use a wrong or hallucinated table.
    RenameTable {
        /// The correct table name.
        from: String,
        /// The wrong/hallucinated replacement.
        to: String,
    },
    /// Miscompute with the wrong aggregate.
    SwapAggregate {
        /// The correct aggregate function.
        from: String,
        /// The wrong aggregate the corrupted query uses.
        to: String,
    },
    /// Forget the `-1 *` factor in change metrics.
    StripNegOneMultiplier,
    /// Sort the wrong way (best vs worst confusion).
    FlipOrderDirections,
}

impl Corruption {
    /// Apply to a query AST; returns the number of sites changed.
    pub fn apply(&self, q: &mut Query) -> usize {
        match self {
            Corruption::DropWhereConjunct { marker } => mutate::drop_where_conjunct(q, marker),
            Corruption::ReplaceStringLiteral { from, to } => {
                mutate::replace_string_literal(q, from, to)
            }
            Corruption::RenameColumn { from, to } => mutate::rename_column(q, from, to),
            Corruption::RenameTable { from, to } => mutate::rename_table(q, from, to),
            Corruption::SwapAggregate { from, to } => mutate::rename_function(q, from, to),
            Corruption::StripNegOneMultiplier => mutate::strip_neg_one_multiplier(q),
            Corruption::FlipOrderDirections => mutate::flip_order_directions(q),
        }
    }

    /// Does this corruption surface as an execution error the
    /// self-correction loop can observe? Only hallucinated names do; the
    /// caller decides whether the renamed target exists in the schema.
    pub fn error_marker(&self) -> Option<&str> {
        match self {
            Corruption::RenameColumn { to, .. } => Some(to),
            Corruption::RenameTable { to, .. } => Some(to),
            _ => None,
        }
    }
}

/// A domain-term requirement: if `term` is not covered by the prompt's
/// knowledge sections, `corruption` is applied to the gold query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TermRequirement {
    /// The domain term the prompt must cover.
    pub term: String,
    /// The corruption applied when it does not.
    pub corruption: Corruption,
}

/// Everything the oracle knows about one benchmark task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskKnowledge {
    /// Stable benchmark identifier.
    pub task_id: String,
    /// The natural-language question, as asked.
    pub question: String,
    /// Database the question runs against.
    pub db_name: String,
    /// The reference SQL.
    pub gold_sql: String,
    /// The intent key this task classifies under.
    pub intent: String,
    /// BIRD difficulty stratum.
    pub difficulty: Difficulty,
    /// Domain terms the question depends on.
    pub required_terms: Vec<TermRequirement>,
    /// Tables (uppercased) the gold query reads.
    pub required_tables: Vec<String>,
    /// Column names (uppercased, unqualified) the gold query needs and
    /// that exist in the database schema. When the prompt's schema section
    /// is non-empty but misses one, the model may hallucinate a column.
    pub required_columns: Vec<String>,
    /// BIRD-style evidence strings shipped with the task. Baselines that
    /// read benchmark evidence put these in the prompt; enterprise
    /// questions often have none (the knowledge-set gap the paper targets).
    pub evidence: Vec<String>,
    /// A plausible wrong table the model confuses the right one with.
    pub distractor_table: Option<String>,
    /// A plausible wrong column used under schema confusion.
    pub distractor_column: Option<(String, String)>,
}

impl TaskKnowledge {
    /// Parse the gold SQL (panics on malformed gold — a benchmark bug).
    pub fn gold_query(&self) -> Query {
        match parse_statement(&self.gold_sql) {
            Ok(Statement::Query(q)) => q,
            Err(e) => panic!("gold SQL for task {} does not parse: {e}", self.task_id),
        }
    }
}

/// Registry mapping questions to task knowledge. Lookup is by normalized
/// token multiset, robust to the pipeline's canonical reformulation
/// ("Show me …" prefixes and similar).
#[derive(Debug, Clone, Default)]
pub struct TaskRegistry {
    tasks: Vec<TaskKnowledge>,
    by_norm: HashMap<String, usize>,
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> TaskRegistry {
        TaskRegistry::default()
    }

    /// Register one task, indexed by its normalized question.
    pub fn register(&mut self, task: TaskKnowledge) {
        let key = normalize(&task.question);
        self.by_norm.insert(key, self.tasks.len());
        self.tasks.push(task);
    }

    /// Number of registered tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks are registered.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Every registered task, in registration order.
    pub fn tasks(&self) -> &[TaskKnowledge] {
        &self.tasks
    }

    /// Look a task up by its benchmark id.
    pub fn by_id(&self, task_id: &str) -> Option<&TaskKnowledge> {
        self.tasks.iter().find(|t| t.task_id == task_id)
    }

    /// Find the task a question refers to. Exact normalized match first,
    /// then best *content-token* overlap (≥ 0.6 Jaccard) — canonical
    /// reformulation rewrites function words ("How many …" → "Show me the
    /// number of …") but keeps the content words.
    pub fn lookup(&self, question: &str) -> Option<&TaskKnowledge> {
        let key = normalize(question);
        if let Some(&i) = self.by_norm.get(&key) {
            return Some(&self.tasks[i]);
        }
        let q_tokens: std::collections::BTreeSet<String> =
            content_tokens(question).into_iter().collect();
        let mut best: Option<(f64, usize)> = None;
        for (i, t) in self.tasks.iter().enumerate() {
            let t_tokens: std::collections::BTreeSet<String> =
                content_tokens(&t.question).into_iter().collect();
            let inter = q_tokens.intersection(&t_tokens).count() as f64;
            let union = q_tokens.union(&t_tokens).count() as f64;
            if union == 0.0 {
                continue;
            }
            let j = inter / union;
            if best.map(|(b, _)| j > b).unwrap_or(true) {
                best = Some((j, i));
            }
        }
        match best {
            Some((score, i)) if score >= 0.6 => Some(&self.tasks[i]),
            _ => None,
        }
    }
}

fn tokens(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Function words that reformulation adds or removes, plus prepositions
/// and conjunctions that would otherwise pad the overlap between two
/// different questions ("… in Canada" must not match "… in USA" through
/// the shared "in").
const STOPWORDS: &[&str] = &[
    "show", "me", "the", "a", "an", "of", "is", "are", "was", "were", "what", "which", "how",
    "many", "identify", "list", "find", "give", "tell", "number", "do", "does", "please", "in",
    "for", "at", "on", "by", "per", "to", "and", "or", "with", "from",
];

fn content_tokens(text: &str) -> Vec<String> {
    tokens(text)
        .into_iter()
        .filter(|t| !STOPWORDS.contains(&t.as_str()))
        .collect()
}

fn normalize(text: &str) -> String {
    let mut t = tokens(text);
    t.sort();
    t.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: &str, question: &str) -> TaskKnowledge {
        TaskKnowledge {
            task_id: id.into(),
            question: question.into(),
            db_name: "db".into(),
            gold_sql: "SELECT 1".into(),
            intent: "fin".into(),
            difficulty: Difficulty::Simple,
            required_terms: vec![],
            required_tables: vec![],
            required_columns: vec![],
            evidence: vec![],
            distractor_table: None,
            distractor_column: None,
        }
    }

    #[test]
    fn exact_lookup() {
        let mut r = TaskRegistry::new();
        r.register(task("t1", "Identify our 5 best organisations"));
        assert_eq!(
            r.lookup("Identify our 5 best organisations")
                .unwrap()
                .task_id,
            "t1"
        );
        // Token order / punctuation insensitive.
        assert_eq!(
            r.lookup("our 5 best organisations, identify!")
                .unwrap()
                .task_id,
            "t1"
        );
    }

    #[test]
    fn reformulated_lookup_via_overlap() {
        let mut r = TaskRegistry::new();
        r.register(task(
            "t1",
            "Identify our 5 sports organisations with the best QoQFP in Canada for Q2 2023",
        ));
        r.register(task("t2", "Total viewership per region last year"));
        let hit = r
            .lookup("Show me our 5 sports organisations with the best QoQFP in Canada for Q2 2023")
            .unwrap();
        assert_eq!(hit.task_id, "t1");
    }

    #[test]
    fn unrelated_question_misses() {
        let mut r = TaskRegistry::new();
        r.register(task("t1", "Revenue by organization"));
        assert!(r
            .lookup("completely different topic about penguins")
            .is_none());
        assert!(TaskRegistry::new().lookup("anything").is_none());
    }

    #[test]
    fn corruption_error_markers() {
        assert!(Corruption::DropWhereConjunct { marker: "x".into() }
            .error_marker()
            .is_none());
        assert_eq!(
            Corruption::RenameColumn {
                from: "A".into(),
                to: "B".into()
            }
            .error_marker(),
            Some("B")
        );
    }

    #[test]
    fn corruption_apply_dispatches() {
        let Statement::Query(mut q) =
            parse_statement("SELECT SUM(x) FROM t WHERE owned = 'COC'").unwrap();
        assert_eq!(
            Corruption::SwapAggregate {
                from: "SUM".into(),
                to: "AVG".into()
            }
            .apply(&mut q),
            1
        );
        assert_eq!(
            Corruption::DropWhereConjunct {
                marker: "owned".into()
            }
            .apply(&mut q),
            1
        );
    }

    #[test]
    #[should_panic(expected = "does not parse")]
    fn malformed_gold_panics() {
        let mut t = task("t1", "q");
        t.gold_sql = "SELEC nope".into();
        t.gold_query();
    }
}
