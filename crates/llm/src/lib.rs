//! # genedit-llm — deterministic oracle language model
//!
//! The GenEdit paper's pipeline is built from GPT-4o calls. This crate
//! substitutes a **deterministic oracle**: each benchmark task privately
//! registers its gold SQL plus the knowledge requirements behind it, and
//! the oracle corrupts the gold query once per requirement the pipeline's
//! prompt fails to meet — misinterpreted enterprise terms, missing schema
//! grounding, context overload, and bounded single-shot reasoning that CoT
//! planning relieves. See [`oracle`] for the full causal contract.
//!
//! The substitution preserves exactly the *relative* claims the paper
//! evaluates (Table 1, Table 2) while staying reproducible on a laptop.
//!
//! Model calls are **fallible** ([`ModelError`]) and the crate ships the
//! resilience layer the pipeline wraps around them: [`ResilientModel`]
//! (retry/backoff/circuit-breaking, see [`resilient`]) and
//! [`FaultInjector`] (deterministic chaos, see [`fault`]).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod batch;
pub mod cancel;
pub mod fault;
pub mod hedge;
pub mod knowledge;
pub mod model;
pub mod mutate;
pub mod oracle;
pub mod prompt;
pub mod resilient;
pub mod tier;

pub use batch::{AdaptiveWindow, BatchConfig, BatchScheduler};
pub use cancel::CancelToken;
pub use fault::{FaultConfig, FaultInjector, FaultKind, FaultLog};
pub use hedge::{HedgePolicy, HedgeStats, HedgedModel};
pub use knowledge::{Corruption, Difficulty, TaskKnowledge, TaskRegistry, TermRequirement};
pub use model::{
    kind_label, CompletionRequest, CompletionResponse, LanguageModel, ModelError, ModelUsage,
    RecordingModel, TracedModel,
};
pub use oracle::{apply_drift, hash01, hash_u64, OracleConfig, OracleModel};
pub use prompt::{
    Plan, PlanStep, Prompt, PromptExample, PromptInstruction, PromptSchemaElement, TaskKind,
};
pub use resilient::{
    BreakerPolicy, BreakerPosition, Clock, ResiliencePolicy, ResilienceState, ResilientModel,
    RetryPolicy, SimulatedClock, SystemClock,
};
pub use tier::{CostLedger, ModelTier, TierPolicy, TieredModel};
