//! Hedged (speculative duplicate) dispatch for tail-latency control.
//!
//! Batching (PR 5) bought throughput, but p99 is still hostage to the
//! slowest single dispatch: one straggling model call holds its worker —
//! and everything queued behind it — for the full straggle. The classic
//! remedy ("The Tail at Scale") is to **hedge**: once the primary call
//! has been outstanding longer than a high percentile of observed
//! latency, fire an identical duplicate and take whichever copy finishes
//! first, cancelling the loser.
//!
//! [`HedgedModel`] wraps any [`LanguageModel`] with that policy:
//!
//! - The hedge delay is **percentile-derived**: every completed call's
//!   latency feeds a per-[`TaskKind`] [`LogLinearHistogram`], and the
//!   delay is `clamp(pN, min_delay, max_delay)`. Until a kind has
//!   [`HedgePolicy::min_observations`] samples no hedge fires (cold
//!   start is served unhedged rather than guessed at).
//! - The loser is cancelled through [`CancelToken`]: each copy runs
//!   under its own [`cancel::with_current`] scope, so the retry layer's
//!   sliced backoff ([`crate::resilient::ResilientModel`]) and any other
//!   scope-aware layer below stop promptly.
//! - Results are **byte-identical regardless of which copy wins**: both
//!   copies carry the exact same [`CompletionRequest`], and every model
//!   in this workspace is deterministic in `(prompt, seed)`, so the race
//!   only ever decides *when* the answer arrives, never *what* it is.
//!   When both copies fail, the primary's error is returned so the error
//!   surface is deterministic too.
//! - One logical request records **one** latency observation and (when a
//!   tracker is attached via [`HedgedModel::with_slo`]) **one** SLO
//!   verdict. A wasted hedge completion is counted in `hedge.wasted`,
//!   never as a second good event in the SLO window — duplicates must
//!   not flatter (or smear) the burn rate.
//!
//! Composition order in the serving stack is
//! `Resilient(Traced(Hedged(Batch(model))))`: hedges are retried like
//! any other call above, and coalesced like any other call below.
//!
//! Cost model: the hedged path spawns one short-lived thread per call
//! (the primary), so hedging is engaged per-kind only after warm-up and
//! is intended for millisecond-scale model calls where a ~10µs spawn is
//! noise. The duplicate itself runs inline on the calling thread.

use crate::cancel::{self, CancelToken};
use crate::model::{kind_label, CompletionRequest, CompletionResponse, LanguageModel, ModelError};
use crate::prompt::TaskKind;
use genedit_telemetry::clock::{Clock, SystemClock};
use genedit_telemetry::{LogLinearHistogram, MetricsRegistry, SloTracker};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// All task kinds, in a fixed order that indexes the per-kind latency
/// histograms.
const KINDS: [TaskKind; 5] = [
    TaskKind::Reformulate,
    TaskKind::IntentClassification,
    TaskKind::SchemaLinking,
    TaskKind::PlanGeneration,
    TaskKind::SqlGeneration,
];

fn kind_index(kind: TaskKind) -> usize {
    match kind {
        TaskKind::Reformulate => 0,
        TaskKind::IntentClassification => 1,
        TaskKind::SchemaLinking => 2,
        TaskKind::PlanGeneration => 3,
        TaskKind::SqlGeneration => 4,
    }
}

/// When (and whether) to fire a duplicate request.
#[derive(Debug, Clone, PartialEq)]
pub struct HedgePolicy {
    /// Master switch. Disabled means pure pass-through: no extra
    /// threads, no histograms consulted, zero hedges.
    pub enabled: bool,
    /// Latency percentile the hedge delay is derived from (e.g. `95.0`
    /// fires a duplicate once the primary is slower than p95).
    pub percentile: f64,
    /// Floor on the derived delay. Keeps ordinary jitter from firing
    /// hedges when the observed distribution is very tight — the floor
    /// is what bounds wasted duplicate calls.
    pub min_delay: Duration,
    /// Ceiling on the derived delay, so a spike-polluted histogram can
    /// not push the delay past the point of uselessness.
    pub max_delay: Duration,
    /// Samples a task kind's histogram needs before hedging engages for
    /// that kind. Cold starts run unhedged.
    pub min_observations: u64,
    /// How often the waiter re-checks the primary while counting down
    /// the hedge delay.
    pub poll_interval: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            enabled: true,
            percentile: 95.0,
            min_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            min_observations: 20,
            poll_interval: Duration::from_micros(500),
        }
    }
}

impl HedgePolicy {
    /// A policy that never hedges; [`HedgedModel`] becomes a transparent
    /// pass-through (the configuration-off baseline, like
    /// [`crate::BatchConfig::disabled`]).
    pub fn disabled() -> HedgePolicy {
        HedgePolicy {
            enabled: false,
            ..HedgePolicy::default()
        }
    }
}

/// Point-in-time hedge counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HedgeStats {
    /// Duplicates fired (each is one extra model round trip).
    pub fired: u64,
    /// Races where the duplicate's result was the one returned.
    pub won: u64,
    /// Races where the duplicate fired but the primary's result was
    /// returned (the duplicate round trip bought nothing).
    pub wasted: u64,
}

#[derive(Default)]
struct StatCells {
    fired: AtomicU64,
    won: AtomicU64,
    wasted: AtomicU64,
}

/// The primary's completion slot, shared between the spawned primary
/// thread and the waiting caller.
struct Race {
    primary: Mutex<Option<Result<CompletionResponse, ModelError>>>,
    done: Condvar,
}

impl Race {
    fn lock(&self) -> MutexGuard<'_, Option<Result<CompletionResponse, ModelError>>> {
        self.primary
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Wraps a model with percentile-triggered duplicate dispatch. See the
/// [module docs](self) for the full contract.
pub struct HedgedModel<M> {
    inner: Arc<M>,
    policy: HedgePolicy,
    clock: Arc<dyn Clock>,
    metrics: Option<Arc<MetricsRegistry>>,
    slo: Option<Arc<SloTracker>>,
    latency: [LogLinearHistogram; KINDS.len()],
    counts: [AtomicU64; KINDS.len()],
    stats: StatCells,
}

impl<M: LanguageModel + 'static> HedgedModel<M> {
    /// Wrap `inner` under `policy`, timing calls on the system clock.
    pub fn new(inner: M, policy: HedgePolicy) -> HedgedModel<M> {
        HedgedModel {
            inner: Arc::new(inner),
            policy,
            clock: Arc::new(SystemClock::new()),
            metrics: None,
            slo: None,
            latency: Default::default(),
            counts: Default::default(),
            stats: StatCells::default(),
        }
    }

    /// Time calls (and count down hedge delays) on `clock` instead of
    /// the system clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> HedgedModel<M> {
        self.clock = clock;
        self
    }

    /// Count `hedge.fired` / `hedge.won` / `hedge.wasted` into
    /// `metrics`, and observe each fired delay as `hedge.delay.ms`.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> HedgedModel<M> {
        self.metrics = Some(metrics);
        self
    }

    /// Record one SLO verdict per **logical request** into `slo`: the
    /// winner's latency and outcome. Wasted hedge completions are never
    /// recorded — with duplicates in flight, "requests" and "model
    /// calls" diverge, and the SLO window must count the former.
    pub fn with_slo(mut self, slo: Arc<SloTracker>) -> HedgedModel<M> {
        self.slo = Some(slo);
        self
    }

    /// The wrapped model.
    pub fn inner(&self) -> &Arc<M> {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> &HedgePolicy {
        &self.policy
    }

    /// Current hedge counters.
    pub fn stats(&self) -> HedgeStats {
        HedgeStats {
            fired: self.stats.fired.load(Ordering::SeqCst),
            won: self.stats.won.load(Ordering::SeqCst),
            wasted: self.stats.wasted.load(Ordering::SeqCst),
        }
    }

    /// Seed `kind`'s latency histogram, e.g. so a benchmark can engage
    /// hedging from the first request instead of warming up in-band.
    pub fn preheat(&self, kind: TaskKind, samples: &[Duration]) {
        let idx = kind_index(kind);
        for sample in samples {
            self.latency[idx].observe(sample.as_secs_f64() * 1e3);
            self.counts[idx].fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The delay after which a duplicate would fire for `kind`:
    /// `clamp(p<percentile>, min_delay, max_delay)` over the observed
    /// latencies, or `None` while disabled or under-observed (in which
    /// case calls run unhedged).
    pub fn hedge_delay(&self, kind: TaskKind) -> Option<Duration> {
        if !self.policy.enabled {
            return None;
        }
        let idx = kind_index(kind);
        if self.counts[idx].load(Ordering::SeqCst) < self.policy.min_observations {
            return None;
        }
        let p_ms = self.latency[idx]
            .snapshot()
            .percentile(self.policy.percentile);
        let derived = Duration::from_secs_f64((p_ms / 1e3).max(0.0));
        Some(derived.clamp(self.policy.min_delay, self.policy.max_delay))
    }

    fn observe(&self, kind: TaskKind, elapsed: Duration) {
        let idx = kind_index(kind);
        self.latency[idx].observe(elapsed.as_secs_f64() * 1e3);
        self.counts[idx].fetch_add(1, Ordering::SeqCst);
    }

    fn incr(&self, name: &str) {
        if let Some(metrics) = &self.metrics {
            metrics.incr(name, 1);
        }
    }

    /// Terminal accounting for one logical request: one latency sample
    /// into the per-kind histogram and (if attached) exactly one SLO
    /// verdict, no matter how many copies ran.
    fn settle(
        &self,
        kind: TaskKind,
        start: Duration,
        result: Result<CompletionResponse, ModelError>,
    ) -> Result<CompletionResponse, ModelError> {
        let elapsed = self.clock.now().saturating_sub(start);
        self.observe(kind, elapsed);
        if let Some(slo) = &self.slo {
            slo.record(elapsed.as_secs_f64() * 1e3, result.is_err());
        }
        result
    }

    /// Race the already-running primary against an inline duplicate.
    fn run_hedged(
        &self,
        request: &CompletionRequest,
        race: &Arc<Race>,
        primary_token: &CancelToken,
        hedge_token: &CancelToken,
        label: &'static str,
    ) -> Result<CompletionResponse, ModelError> {
        self.stats.fired.fetch_add(1, Ordering::SeqCst);
        self.incr(&format!("hedge.fired.{label}"));
        let hedged = cancel::with_current(hedge_token, || self.inner.complete(request));

        let mut slot = race.lock();
        if let Some(primary) = slot.take() {
            // The primary landed while the duplicate was running. Prefer
            // whichever copy succeeded; both failing returns the
            // primary's error so the error surface is deterministic.
            return match (primary, hedged) {
                (Ok(p), _) => {
                    self.stats.wasted.fetch_add(1, Ordering::SeqCst);
                    self.incr(&format!("hedge.wasted.{label}"));
                    Ok(p)
                }
                (Err(_), Ok(h)) => {
                    self.stats.won.fetch_add(1, Ordering::SeqCst);
                    self.incr(&format!("hedge.won.{label}"));
                    Ok(h)
                }
                (Err(p), Err(_)) => {
                    self.stats.wasted.fetch_add(1, Ordering::SeqCst);
                    self.incr(&format!("hedge.wasted.{label}"));
                    Err(p)
                }
            };
        }
        match hedged {
            Ok(h) => {
                // The duplicate beat the primary: cancel the loser (its
                // retry backoffs abandon immediately) and return. The
                // primary thread publishes into the race slot and exits;
                // nobody reads that publication.
                primary_token.cancel();
                self.stats.won.fetch_add(1, Ordering::SeqCst);
                self.incr(&format!("hedge.won.{label}"));
                Ok(h)
            }
            Err(_) => {
                // The duplicate failed; the primary is the only hope
                // left, so fall back to plain waiting on it.
                self.stats.wasted.fetch_add(1, Ordering::SeqCst);
                self.incr(&format!("hedge.wasted.{label}"));
                loop {
                    if let Some(primary) = slot.take() {
                        return primary;
                    }
                    slot = race
                        .done
                        .wait(slot)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }
}

impl<M: LanguageModel + 'static> LanguageModel for HedgedModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let kind = request.prompt.task;
        let label = kind_label(kind);
        let start = self.clock.now();
        let Some(delay) = self.hedge_delay(kind) else {
            // Disabled or cold: pass through, but keep feeding the
            // histogram so warm-up happens in-band.
            let result = self.inner.complete(request);
            return self.settle(kind, start, result);
        };
        if let Some(metrics) = &self.metrics {
            metrics.observe_duration("hedge.delay.ms", delay);
        }

        let race = Arc::new(Race {
            primary: Mutex::new(None),
            done: Condvar::new(),
        });
        let primary_token = CancelToken::new();
        let hedge_token = CancelToken::new();
        {
            let inner = Arc::clone(&self.inner);
            let request = request.clone();
            let race = Arc::clone(&race);
            let token = primary_token.clone();
            let hedge_token = hedge_token.clone();
            std::thread::spawn(move || {
                let result = cancel::with_current(&token, || inner.complete(&request));
                *race.lock() = Some(result);
                // If a duplicate is still in flight it just lost the
                // race; stop it from burning further wall clock.
                hedge_token.cancel();
                race.done.notify_all();
            });
        }

        // Count down the hedge delay, returning early if the primary
        // lands first. `poll_interval` bounds how stale the elapsed
        // check can get; the condvar wakes us the moment the primary
        // publishes.
        let mut slot = race.lock();
        let result = loop {
            if let Some(primary) = slot.take() {
                break primary;
            }
            if self.clock.now().saturating_sub(start) >= delay {
                drop(slot);
                break self.run_hedged(request, &race, &primary_token, &hedge_token, label);
            }
            let (guard, _) = race
                .done
                .wait_timeout(slot, self.policy.poll_interval)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            slot = guard;
        };
        self.settle(kind, start, result)
    }

    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        // Batch dispatches are already latency-amortized across their
        // members; hedging applies to the individual-call path that the
        // batch scheduler sits *below* in the serving stack.
        self.inner.complete_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;
    use genedit_telemetry::SloConfig;
    use std::sync::atomic::AtomicUsize;
    use std::time::Instant;

    /// Per-call latency behavior; the payload is always derived from the
    /// request alone, so every copy of a request answers identically.
    #[derive(Clone, Copy)]
    enum Step {
        Ready,
        SleepMs(u64),
        BlockUntilCancelled,
        FailTransient,
        FailAfterMs(u64),
    }

    struct ScriptedModel {
        script: Vec<Step>,
        calls: AtomicUsize,
        saw_cancel: AtomicUsize,
    }

    impl ScriptedModel {
        fn new(script: Vec<Step>) -> ScriptedModel {
            ScriptedModel {
                script,
                calls: AtomicUsize::new(0),
                saw_cancel: AtomicUsize::new(0),
            }
        }

        fn payload(request: &CompletionRequest) -> CompletionResponse {
            CompletionResponse::Text(format!(
                "ans:{}:{}",
                kind_label(request.prompt.task),
                request.seed
            ))
        }
    }

    impl LanguageModel for ScriptedModel {
        fn name(&self) -> &str {
            "scripted"
        }

        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            let step = self.script.get(n).copied().unwrap_or(Step::Ready);
            match step {
                Step::Ready => Ok(Self::payload(request)),
                Step::SleepMs(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    Ok(Self::payload(request))
                }
                Step::BlockUntilCancelled => {
                    let token = cancel::current().unwrap_or_default();
                    let cap = Instant::now() + Duration::from_secs(5);
                    while !token.is_cancelled() && Instant::now() < cap {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    if token.is_cancelled() {
                        self.saw_cancel.fetch_add(1, Ordering::SeqCst);
                    }
                    Ok(Self::payload(request))
                }
                Step::FailTransient => Err(ModelError::Transient("scripted".into())),
                Step::FailAfterMs(ms) => {
                    std::thread::sleep(Duration::from_millis(ms));
                    Err(ModelError::Timeout)
                }
            }
        }
    }

    fn request() -> CompletionRequest {
        CompletionRequest::new(Prompt::new(TaskKind::SqlGeneration, "q"))
    }

    /// A policy whose delay engages immediately after preheating.
    fn eager_policy() -> HedgePolicy {
        HedgePolicy {
            min_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(2),
            min_observations: 4,
            ..HedgePolicy::default()
        }
    }

    fn preheated<M: LanguageModel + 'static>(model: HedgedModel<M>) -> HedgedModel<M> {
        model.preheat(TaskKind::SqlGeneration, &[Duration::from_millis(1); 8]);
        model
    }

    #[test]
    fn disabled_policy_is_a_pure_pass_through() {
        let hedged = HedgedModel::new(
            ScriptedModel::new(vec![Step::Ready; 4]),
            HedgePolicy::disabled(),
        );
        for _ in 0..4 {
            let r = hedged.complete(&request()).expect("ok");
            assert_eq!(r, ScriptedModel::payload(&request()));
        }
        assert_eq!(hedged.inner().calls.load(Ordering::SeqCst), 4);
        assert_eq!(hedged.stats(), HedgeStats::default());
        assert_eq!(hedged.hedge_delay(TaskKind::SqlGeneration), None);
    }

    #[test]
    fn cold_kind_runs_unhedged_until_min_observations() {
        let policy = HedgePolicy {
            min_observations: 3,
            ..eager_policy()
        };
        let hedged = HedgedModel::new(ScriptedModel::new(vec![Step::Ready; 8]), policy);
        assert_eq!(hedged.hedge_delay(TaskKind::SqlGeneration), None);
        for _ in 0..3 {
            hedged.complete(&request()).expect("ok");
        }
        // Warm-up happened in-band: the kind is now hedge-eligible.
        assert_eq!(
            hedged.hedge_delay(TaskKind::SqlGeneration),
            Some(Duration::from_millis(2))
        );
        // Other kinds stay cold.
        assert_eq!(hedged.hedge_delay(TaskKind::PlanGeneration), None);
        assert_eq!(hedged.stats().fired, 0);
    }

    #[test]
    fn delay_is_percentile_derived_and_clamped() {
        let policy = HedgePolicy {
            percentile: 95.0,
            min_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            min_observations: 10,
            ..HedgePolicy::default()
        };
        let hedged = HedgedModel::new(ScriptedModel::new(vec![]), policy);
        // Tight distribution: p95 ~1ms, clamped up to the 5ms floor.
        hedged.preheat(TaskKind::SqlGeneration, &[Duration::from_millis(1); 32]);
        assert_eq!(
            hedged.hedge_delay(TaskKind::SqlGeneration),
            Some(Duration::from_millis(5))
        );
        // Heavy tail: p95 ~200ms, clamped down to the 50ms ceiling.
        hedged.preheat(TaskKind::PlanGeneration, &[Duration::from_millis(200); 32]);
        assert_eq!(
            hedged.hedge_delay(TaskKind::PlanGeneration),
            Some(Duration::from_millis(50))
        );
        // In-range percentile passes through (log-linear buckets are
        // ~±5% wide, so compare loosely).
        hedged.preheat(TaskKind::SchemaLinking, &[Duration::from_millis(20); 32]);
        let d = hedged
            .hedge_delay(TaskKind::SchemaLinking)
            .expect("warm")
            .as_secs_f64()
            * 1e3;
        assert!((15.0..=26.0).contains(&d), "delay {d}ms not near 20ms");
    }

    #[test]
    fn hedge_fires_wins_and_cancels_the_straggling_primary() {
        let metrics = Arc::new(MetricsRegistry::new());
        // Call 0 (primary) straggles until cancelled; call 1 (the
        // duplicate) answers immediately.
        let model = ScriptedModel::new(vec![Step::BlockUntilCancelled, Step::Ready]);
        let hedged =
            preheated(HedgedModel::new(model, eager_policy()).with_metrics(Arc::clone(&metrics)));
        let out = hedged.complete(&request()).expect("hedge answers");
        assert_eq!(out, ScriptedModel::payload(&request()));
        assert_eq!(
            hedged.stats(),
            HedgeStats {
                fired: 1,
                won: 1,
                wasted: 0
            }
        );
        assert_eq!(metrics.counter("hedge.fired.sql"), 1);
        assert_eq!(metrics.counter("hedge.won.sql"), 1);
        // The losing primary saw its token fire (give the detached
        // thread a beat to observe it).
        let cap = Instant::now() + Duration::from_secs(2);
        while hedged.inner().saw_cancel.load(Ordering::SeqCst) == 0 && Instant::now() < cap {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(hedged.inner().saw_cancel.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn primary_win_counts_the_duplicate_as_wasted() {
        // Call 0 (primary) sleeps past the delay but finishes; call 1
        // (the duplicate) straggles until the primary's publication
        // cancels it.
        let model = ScriptedModel::new(vec![Step::SleepMs(15), Step::BlockUntilCancelled]);
        let hedged = preheated(HedgedModel::new(model, eager_policy()));
        let out = hedged.complete(&request()).expect("primary answers");
        assert_eq!(out, ScriptedModel::payload(&request()));
        let stats = hedged.stats();
        assert_eq!((stats.fired, stats.won, stats.wasted), (1, 0, 1));
        assert_eq!(hedged.inner().saw_cancel.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn both_copies_failing_returns_the_primary_error() {
        // Call 0 (primary) straggles 30ms then times out; call 1 (the
        // duplicate) fails fast. The primary's error is the one
        // surfaced, so the error path is deterministic.
        let model = ScriptedModel::new(vec![Step::FailAfterMs(30), Step::FailTransient]);
        let hedged = preheated(HedgedModel::new(model, eager_policy()));
        let err = hedged.complete(&request()).unwrap_err();
        assert_eq!(err, ModelError::Timeout);
        assert_eq!(
            hedged.stats(),
            HedgeStats {
                fired: 1,
                won: 0,
                wasted: 1
            }
        );
    }

    #[test]
    fn hedged_and_unhedged_results_are_byte_identical() {
        // Same deterministic payloads, wildly different timing scripts.
        let plain = ScriptedModel::new(vec![Step::Ready; 8]);
        let spiky = ScriptedModel::new(vec![
            Step::BlockUntilCancelled,
            Step::Ready,
            Step::SleepMs(15),
            Step::BlockUntilCancelled,
            Step::Ready,
            Step::Ready,
        ]);
        let hedged = preheated(HedgedModel::new(spiky, eager_policy()));
        for seed in 0..3u64 {
            let mut req = request();
            req.seed = seed;
            let a = plain.complete(&req).expect("plain");
            let b = hedged.complete(&req).expect("hedged");
            assert_eq!(a, b, "hedging changed the payload for seed {seed}");
        }
    }

    #[test]
    fn one_logical_request_records_one_slo_verdict() {
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let slo = Arc::new(SloTracker::new(
            SloConfig::default_rules("llm-call", 0.99, 1e9),
            Arc::clone(&clock),
        ));
        // Every primary straggles; every duplicate answers: 4 logical
        // requests, 8 model calls, all hedges won.
        let model = ScriptedModel::new(vec![
            Step::BlockUntilCancelled,
            Step::Ready,
            Step::BlockUntilCancelled,
            Step::Ready,
            Step::BlockUntilCancelled,
            Step::Ready,
            Step::BlockUntilCancelled,
            Step::Ready,
        ]);
        let hedged = preheated(HedgedModel::new(model, eager_policy()).with_slo(Arc::clone(&slo)));
        for _ in 0..4 {
            hedged.complete(&request()).expect("ok");
        }
        assert_eq!(hedged.stats().fired, 4);
        assert_eq!(hedged.inner().calls.load(Ordering::SeqCst), 8);
        let report = slo.evaluate();
        // One verdict per request: wasted/won duplicates never inflate
        // the SLO window (8 events here would mean double counting).
        assert_eq!(report.window.total, 4);
        assert_eq!(report.window.bad, 0);
    }
}
