//! The language-model interface, call accounting, and the typed error
//! surface every resilience layer above it is built on.

use crate::prompt::{Plan, Prompt, TaskKind};
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// A completion request: the structured prompt plus a seed the caller may
/// vary to sample multiple candidates (the paper generates "one or more
/// candidate SQL queries", §3).
#[derive(Debug, Clone)]
pub struct CompletionRequest {
    /// The structured prompt to complete.
    pub prompt: Prompt,
    /// Candidate-sampling seed. Two requests with the same prompt and seed
    /// return identical responses (the oracle is deterministic).
    pub seed: u64,
}

impl CompletionRequest {
    /// Request with the default seed 0.
    pub fn new(prompt: Prompt) -> CompletionRequest {
        CompletionRequest { prompt, seed: 0 }
    }

    /// Request with an explicit candidate-sampling seed.
    pub fn with_seed(prompt: Prompt, seed: u64) -> CompletionRequest {
        CompletionRequest { prompt, seed }
    }
}

/// A typed completion. Real deployments parse these out of model text;
/// keeping them typed removes a failure mode that is orthogonal to the
/// paper's claims.
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionResponse {
    /// A generated SQL query.
    Sql(String),
    /// A chain-of-thought plan.
    Plan(Plan),
    /// Free text (reformulations).
    Text(String),
    /// A list of items (intent keys, schema element keys, …).
    Items(Vec<String>),
}

impl CompletionResponse {
    /// The SQL payload, if this is a [`CompletionResponse::Sql`].
    pub fn as_sql(&self) -> Option<&str> {
        match self {
            CompletionResponse::Sql(s) => Some(s),
            _ => None,
        }
    }

    /// The plan payload, if this is a [`CompletionResponse::Plan`].
    pub fn as_plan(&self) -> Option<&Plan> {
        match self {
            CompletionResponse::Plan(p) => Some(p),
            _ => None,
        }
    }

    /// The text payload, if this is a [`CompletionResponse::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            CompletionResponse::Text(t) => Some(t),
            _ => None,
        }
    }

    /// The item list, if this is a [`CompletionResponse::Items`].
    pub fn as_items(&self) -> Option<&[String]> {
        match self {
            CompletionResponse::Items(v) => Some(v),
            _ => None,
        }
    }
}

/// Why a model call failed. Every transport- and parse-level failure a
/// production deployment sees maps onto one of these variants; the
/// pipeline's degradation ladder keys off them rather than off strings.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A retryable transport hiccup (connection reset, 5xx, …).
    Transient(String),
    /// The call exceeded its deadline.
    Timeout,
    /// The model answered, but the payload could not be parsed into a
    /// [`CompletionResponse`]. Carries the raw text for diagnostics.
    Malformed {
        /// The unparseable payload, verbatim.
        raw: String,
    },
    /// The provider throttled the call and suggested a wait.
    RateLimited {
        /// The provider-suggested backoff before the next call.
        retry_after: Duration,
    },
    /// A resilience wrapper gave up: `attempts` calls were made (0 when a
    /// circuit breaker shed the call without trying) and `last` is the
    /// final underlying error.
    Exhausted {
        /// Calls actually made before giving up.
        attempts: usize,
        /// The final underlying error.
        last: Box<ModelError>,
    },
}

impl ModelError {
    /// Whether a retry could plausibly succeed. `Exhausted` is terminal —
    /// a wrapper already spent its budget producing it.
    pub fn is_retryable(&self) -> bool {
        !matches!(self, ModelError::Exhausted { .. })
    }

    /// Short stable label for metrics keys and span attributes.
    pub fn label(&self) -> &'static str {
        match self {
            ModelError::Transient(_) => "transient",
            ModelError::Timeout => "timeout",
            ModelError::Malformed { .. } => "malformed",
            ModelError::RateLimited { .. } => "rate-limited",
            ModelError::Exhausted { .. } => "exhausted",
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Transient(msg) => write!(f, "transient model error: {msg}"),
            ModelError::Timeout => write!(f, "model call timed out"),
            ModelError::Malformed { raw } => {
                let preview: String = raw.chars().take(48).collect();
                write!(f, "malformed model response: {preview:?}")
            }
            ModelError::RateLimited { retry_after } => {
                write!(f, "rate limited (retry after {retry_after:?})")
            }
            ModelError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "model call exhausted after {attempts} attempt(s): {last}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// The model interface every operator calls through.
///
/// `Send + Sync` is part of the contract: the serving runtime clones one
/// pipeline per worker thread over a shared model, so every model — and
/// every wrapper in the resilience/tracing stack — must be safe to call
/// concurrently from multiple threads. All implementations in this
/// workspace are either immutable or guard their state with `Mutex`.
pub trait LanguageModel: Send + Sync {
    /// Model identifier ("gpt-4o" in the paper; "oracle" here).
    fn name(&self) -> &str;
    /// Complete one request.
    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError>;

    /// Complete a batch of requests in one backend round trip.
    ///
    /// The default implementation calls [`LanguageModel::complete`] once
    /// per request, so every existing model keeps working unchanged.
    /// Backends with native batch endpoints (or a shared network round
    /// trip to amortize) override this; [`crate::BatchScheduler`] calls
    /// it with the micro-batches it coalesces. Responses are positional:
    /// `result[i]` answers `requests[i]`, and implementations must return
    /// exactly `requests.len()` entries.
    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        requests.iter().map(|r| self.complete(r)).collect()
    }
}

/// Per-task-kind call accounting, used by the operator latency/cost
/// benchmarks (the paper swaps GPT-4o-mini into schema linking "to reduce
/// primarily cost and then latency", §3.3.3 — measuring calls and prompt
/// volume is how that decision is made).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ModelUsage {
    /// Completed calls per task-kind label (see [`kind_label`]).
    pub calls: BTreeMap<&'static str, usize>,
    /// Rendered prompt characters per task-kind label.
    pub prompt_chars: BTreeMap<&'static str, usize>,
}

impl ModelUsage {
    /// Total calls across every task kind.
    pub fn total_calls(&self) -> usize {
        self.calls.values().sum()
    }

    /// Total rendered prompt characters across every task kind.
    pub fn total_prompt_chars(&self) -> usize {
        self.prompt_chars.values().sum()
    }

    /// Fold another usage record into this one, so the harness can sum
    /// accounting across per-domain runs.
    pub fn merge(&mut self, other: &ModelUsage) {
        for (kind, n) in &other.calls {
            *self.calls.entry(kind).or_insert(0) += n;
        }
        for (kind, chars) in &other.prompt_chars {
            *self.prompt_chars.entry(kind).or_insert(0) += chars;
        }
    }
}

/// Short label for a task kind, used as the accounting and telemetry key.
pub fn kind_label(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::Reformulate => "reformulate",
        TaskKind::IntentClassification => "intent",
        TaskKind::SchemaLinking => "schema-linking",
        TaskKind::PlanGeneration => "plan",
        TaskKind::SqlGeneration => "sql",
    }
}

/// Wraps any model and records usage.
pub struct RecordingModel<M> {
    inner: M,
    usage: Mutex<ModelUsage>,
}

impl<M: LanguageModel> RecordingModel<M> {
    /// Wrap `inner` with zeroed counters.
    pub fn new(inner: M) -> RecordingModel<M> {
        RecordingModel {
            inner,
            usage: Mutex::new(ModelUsage::default()),
        }
    }

    /// Lock the counters, absorbing poisoning: a panic elsewhere must not
    /// cascade out of the accounting layer.
    fn usage_lock(&self) -> std::sync::MutexGuard<'_, ModelUsage> {
        self.usage
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Snapshot of the accumulated usage counters.
    pub fn usage(&self) -> ModelUsage {
        self.usage_lock().clone()
    }

    /// Zero the usage counters.
    pub fn reset_usage(&self) {
        *self.usage_lock() = ModelUsage::default();
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<M: LanguageModel> LanguageModel for RecordingModel<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        {
            let mut u = self.usage_lock();
            let label = kind_label(request.prompt.task);
            *u.calls.entry(label).or_insert(0) += 1;
            *u.prompt_chars.entry(label).or_insert(0) += request.prompt.render().len();
        }
        self.inner.complete(request)
    }

    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        {
            let mut u = self.usage_lock();
            for request in requests {
                let label = kind_label(request.prompt.task);
                *u.calls.entry(label).or_insert(0) += 1;
                *u.prompt_chars.entry(label).or_insert(0) += request.prompt.render().len();
            }
        }
        self.inner.complete_batch(requests)
    }
}

/// Wraps a model and records one `llm.complete` span per call into a
/// borrowed [`Tracer`](genedit_telemetry::Tracer) — task kind, prompt
/// size, and sampling seed. The
/// pipeline constructs one per generation so every model call lands
/// inside the operator span that issued it.
pub struct TracedModel<'t, M> {
    inner: M,
    tracer: &'t genedit_telemetry::Tracer,
}

impl<'t, M: LanguageModel> TracedModel<'t, M> {
    /// Wrap `inner`, recording one span per call into `tracer`.
    pub fn new(inner: M, tracer: &'t genedit_telemetry::Tracer) -> TracedModel<'t, M> {
        TracedModel { inner, tracer }
    }
}

impl<M: LanguageModel> LanguageModel for TracedModel<'_, M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let span = self.tracer.span(genedit_telemetry::names::LLM_COMPLETE);
        span.attr("task", kind_label(request.prompt.task))
            .attr("prompt_chars", request.prompt.render().len())
            .attr("seed", request.seed);
        let response = self.inner.complete(request);
        if let Err(err) = &response {
            span.attr("error", err.label());
        }
        span.finish();
        response
    }
}

impl<M: LanguageModel + ?Sized> LanguageModel for &M {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        (**self).complete(request)
    }
    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        (**self).complete_batch(requests)
    }
}

impl<M: LanguageModel + ?Sized> LanguageModel for std::sync::Arc<M> {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        (**self).complete(request)
    }
    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        (**self).complete_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;

    struct Echo;
    impl LanguageModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            Ok(CompletionResponse::Text(request.prompt.question.clone()))
        }
    }

    struct AlwaysFails;
    impl LanguageModel for AlwaysFails {
        fn name(&self) -> &str {
            "fails"
        }
        fn complete(&self, _: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            Err(ModelError::Timeout)
        }
    }

    #[test]
    fn errors_propagate_and_are_still_recorded() {
        // RecordingModel counts the attempt even when it fails…
        let m = RecordingModel::new(AlwaysFails);
        let err = m
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::SqlGeneration,
                "q",
            )))
            .unwrap_err();
        assert_eq!(err, ModelError::Timeout);
        assert_eq!(m.usage().total_calls(), 1);
        // …and TracedModel marks the span with the error label.
        let tracer = genedit_telemetry::Tracer::new("test");
        let t = TracedModel::new(AlwaysFails, &tracer);
        t.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SqlGeneration,
            "q",
        )))
        .unwrap_err();
        let trace = tracer.finish();
        let span = trace.find(genedit_telemetry::names::LLM_COMPLETE).unwrap();
        assert_eq!(
            span.attr("error"),
            Some(&genedit_telemetry::AttrValue::Str("timeout".into()))
        );
    }

    #[test]
    fn recording_counts_by_kind() {
        let m = RecordingModel::new(Echo);
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::Reformulate,
            "a",
        )))
        .unwrap();
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SqlGeneration,
            "b",
        )))
        .unwrap();
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SqlGeneration,
            "c",
        )))
        .unwrap();
        let u = m.usage();
        assert_eq!(u.calls.get("reformulate"), Some(&1));
        assert_eq!(u.calls.get("sql"), Some(&2));
        assert_eq!(u.total_calls(), 3);
        assert!(u.total_prompt_chars() > 0);
        m.reset_usage();
        assert_eq!(m.usage().total_calls(), 0);
    }

    #[test]
    fn response_accessors() {
        assert_eq!(CompletionResponse::Sql("x".into()).as_sql(), Some("x"));
        assert!(CompletionResponse::Sql("x".into()).as_plan().is_none());
        assert_eq!(
            CompletionResponse::Items(vec!["a".into()])
                .as_items()
                .map(|i| i.len()),
            Some(1)
        );
    }

    #[test]
    fn usage_merge_sums_by_kind() {
        let a = RecordingModel::new(Echo);
        a.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::Reformulate,
            "a",
        )))
        .unwrap();
        a.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SqlGeneration,
            "b",
        )))
        .unwrap();
        let b = RecordingModel::new(Echo);
        b.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SqlGeneration,
            "c",
        )))
        .unwrap();
        let mut merged = a.usage();
        merged.merge(&b.usage());
        assert_eq!(merged.calls.get("reformulate"), Some(&1));
        assert_eq!(merged.calls.get("sql"), Some(&2));
        assert_eq!(
            merged.total_prompt_chars(),
            a.usage().total_prompt_chars() + b.usage().total_prompt_chars()
        );
    }

    #[test]
    fn poisoned_usage_lock_does_not_panic() {
        let m = std::sync::Arc::new(RecordingModel::new(Echo));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.usage.lock().unwrap();
            panic!("poison the usage lock");
        })
        .join();
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::Reformulate,
            "a",
        )))
        .unwrap();
        assert_eq!(m.usage().total_calls(), 1);
        m.reset_usage();
        assert_eq!(m.usage().total_calls(), 0);
    }

    #[test]
    fn traced_model_records_call_spans() {
        let tracer = genedit_telemetry::Tracer::new("test");
        let m = TracedModel::new(Echo, &tracer);
        m.complete(&CompletionRequest::with_seed(
            Prompt::new(TaskKind::SqlGeneration, "q"),
            7,
        ))
        .unwrap();
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::Reformulate,
            "q",
        )))
        .unwrap();
        let trace = tracer.finish();
        assert_eq!(trace.count(genedit_telemetry::names::LLM_COMPLETE), 2);
        let first = trace.find(genedit_telemetry::names::LLM_COMPLETE).unwrap();
        assert_eq!(
            first.attr("task"),
            Some(&genedit_telemetry::AttrValue::Str("sql".into()))
        );
        assert_eq!(
            first.attr("seed"),
            Some(&genedit_telemetry::AttrValue::UInt(7))
        );
        assert!(matches!(
            first.attr("prompt_chars"),
            Some(genedit_telemetry::AttrValue::UInt(n)) if *n > 0
        ));
    }

    #[test]
    fn trait_object_and_ref_impls() {
        let m = Echo;
        let r: &dyn LanguageModel = &m;
        assert_eq!(r.name(), "echo");
        let arc: std::sync::Arc<dyn LanguageModel> = std::sync::Arc::new(Echo);
        assert_eq!(arc.name(), "echo");
    }
}
