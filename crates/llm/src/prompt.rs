//! Structured prompts.
//!
//! GenEdit's operators communicate with the model through prompts whose
//! structure the paper shows in Fig. 2: retrieved examples (decomposed,
//! with pseudo-SQL), instructions, schema elements, and — for the final
//! generation call — the CoT plan. This crate keeps prompts *structured*
//! (typed sections) and renders them to text on demand; the oracle model
//! inspects the structure, real deployments would send the rendered text.

use genedit_knowledge::FragmentKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// What the model is being asked to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Operator 1: rewrite the question into the canonical form.
    Reformulate,
    /// Operator 2: classify the user intents of the question.
    IntentClassification,
    /// Operator 5: identify relevant schema elements.
    SchemaLinking,
    /// First generation call: produce the CoT plan (§3.1.2).
    PlanGeneration,
    /// Second generation call: produce SQL from the plan.
    SqlGeneration,
}

/// An example section entry: a decomposed sub-statement with NL
/// description (§3.2.1), or a full query for baselines that do not
/// decompose.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptExample {
    /// Natural-language description of what the SQL does.
    pub description: String,
    /// The example SQL (fragment or full query).
    pub sql: String,
    /// The fragment kind for decomposed examples; `None` marks a
    /// traditional full-query example.
    pub kind: Option<FragmentKind>,
    /// The domain term this example grounds, when tied to one.
    pub term: Option<String>,
}

/// An instruction section entry (§3.2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptInstruction {
    /// The instruction text.
    pub text: String,
    /// Optional SQL fragment illustrating the instruction.
    pub sql_hint: Option<String>,
    /// The domain term this instruction grounds, when tied to one.
    pub term: Option<String>,
}

/// A schema section entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptSchemaElement {
    /// Table name.
    pub table: String,
    /// Column name; `None` describes the table itself.
    pub column: Option<String>,
    /// Catalogued description of the element.
    pub description: String,
    /// Representative values, for value-grounded linking.
    pub top_values: Vec<String>,
}

impl PromptSchemaElement {
    /// Uppercased `TABLE` or `TABLE.COLUMN` key for this element.
    pub fn key(&self) -> String {
        match &self.column {
            Some(c) => format!("{}.{}", self.table.to_uppercase(), c.to_uppercase()),
            None => self.table.to_uppercase(),
        }
    }
}

/// One step of a CoT plan: NL description plus optional pseudo-SQL, the
/// paper's `(description, "... FRAGMENT ...")` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStep {
    /// Natural-language description of the step.
    pub description: String,
    /// Pseudo-SQL without the `...` affixes; rendered with them.
    pub pseudo_sql: Option<String>,
    /// The scope (CTE name or `main`) this step contributes to.
    pub scope: String,
    /// The fragment kind this step corresponds to, when known.
    pub kind: Option<FragmentKind>,
}

/// A chain-of-thought plan (§3.1.2): an ordered list of steps, one or more
/// of which describe a CTE of the output query.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Plan {
    /// Ordered plan steps.
    pub steps: Vec<PlanStep>,
}

impl Plan {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the plan has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Strip pseudo-SQL from every step (the "w/o Pseudo-SQL" ablation).
    pub fn without_pseudo_sql(&self) -> Plan {
        Plan {
            steps: self
                .steps
                .iter()
                .map(|s| PlanStep {
                    pseudo_sql: None,
                    ..s.clone()
                })
                .collect(),
        }
    }

    /// Render as the JSON object the paper describes: "an ordered list of
    /// steps where each element is a pair of step description in natural
    /// language and pseudo-SQL".
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"steps\": [");
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let pseudo = s
                .pseudo_sql
                .as_deref()
                .map(|p| format!("\"... {} ...\"", p.replace('"', "\\\"")))
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"step\": {}, \"description\": \"{}\", \"pseudo_sql\": {}}}",
                i + 1,
                s.description.replace('"', "\\\""),
                pseudo
            );
        }
        out.push_str("]}");
        out
    }
}

/// A structured prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prompt {
    /// Which operator this prompt drives.
    pub task: TaskKind,
    /// The (possibly reformulated) natural-language question.
    pub question: String,
    /// The original question before reformulation, when different.
    pub original_question: Option<String>,
    /// Example section entries.
    pub examples: Vec<PromptExample>,
    /// Instruction section entries.
    pub instructions: Vec<PromptInstruction>,
    /// Schema section entries.
    pub schema: Vec<PromptSchemaElement>,
    /// The CoT plan, for SQL generation from a plan.
    pub plan: Option<Plan>,
    /// BIRD-style evidence strings attached to the task, used by baselines.
    pub evidence: Vec<String>,
    /// Errors from prior generation attempts (self-correction context).
    pub errors: Vec<String>,
    /// Retrieval hints / extra guidance.
    pub hints: Vec<String>,
    /// Candidate intent keys for intent classification.
    pub intent_candidates: Vec<String>,
    /// How much internal decomposition/selection/revision compute the
    /// *method* spends beyond a single forward pass (1.0 = plain
    /// prompting). Agentic systems like CHESS and MAC-SQL run sampling and
    /// revision loops that effectively raise the complexity they can
    /// handle; the oracle scales its capacity model by this factor.
    pub reasoning_effort: f64,
}

impl Prompt {
    /// A bare prompt for `task` with every section empty.
    pub fn new(task: TaskKind, question: impl Into<String>) -> Prompt {
        Prompt {
            task,
            question: question.into(),
            original_question: None,
            examples: Vec::new(),
            instructions: Vec::new(),
            schema: Vec::new(),
            plan: None,
            evidence: Vec::new(),
            errors: Vec::new(),
            hints: Vec::new(),
            intent_candidates: Vec::new(),
            reasoning_effort: 1.0,
        }
    }

    /// Number of retry attempts already made (used by the oracle to vary
    /// retry outcomes deterministically).
    pub fn attempt(&self) -> usize {
        self.errors.len()
    }

    /// All domain terms covered by this prompt's knowledge sections —
    /// instructions, examples, and evidence. A term requirement is "met"
    /// when the term appears here (the oracle's causal contract).
    ///
    /// Instructions and evidence cover terms by *mentioning* them — they
    /// are explanatory prose. Examples cover a term only through their
    /// explicit `term` tag: a decomposed fragment that happens to contain
    /// `OWNERSHIP_FLAG = 'COC'` shows a past filter but does not explain
    /// that "our" maps to it, which is precisely why the paper's
    /// instructions ablation bites hardest (Table 2).
    pub fn covered_terms(&self) -> BTreeSet<String> {
        let mut terms = BTreeSet::new();
        for i in &self.instructions {
            if let Some(t) = &i.term {
                terms.insert(t.to_uppercase());
            }
            collect_upper_tokens(&i.text, &mut terms);
        }
        for e in &self.examples {
            if let Some(t) = &e.term {
                terms.insert(t.to_uppercase());
            }
        }
        for ev in &self.evidence {
            collect_upper_tokens(ev, &mut terms);
        }
        terms
    }

    /// Tables present in the schema section, uppercased.
    pub fn schema_tables(&self) -> BTreeSet<String> {
        self.schema.iter().map(|s| s.table.to_uppercase()).collect()
    }

    /// Fully-qualified columns present in the schema section.
    pub fn schema_columns(&self) -> BTreeSet<String> {
        self.schema
            .iter()
            .filter(|s| s.column.is_some())
            .map(|s| s.key())
            .collect()
    }

    /// Fragment kinds covered by decomposed examples, plus whether any
    /// full-query (non-decomposed) examples are present.
    pub fn example_support(&self) -> (BTreeSet<FragmentKind>, bool) {
        let mut kinds = BTreeSet::new();
        let mut full_query = false;
        for e in &self.examples {
            match e.kind {
                Some(k) => {
                    kinds.insert(k);
                }
                None => full_query = true,
            }
        }
        (kinds, full_query)
    }

    /// Render to text, Fig. 2 style. Used for size accounting and by the
    /// examples/demo binaries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let task = match self.task {
            TaskKind::Reformulate => "Reformulate the question into canonical form.",
            TaskKind::IntentClassification => "Classify the user intents of the question.",
            TaskKind::SchemaLinking => "Identify the schema elements relevant to the question.",
            TaskKind::PlanGeneration => {
                "Produce a step-by-step plan for writing the SQL query. Each step \
                 is a natural-language description with pseudo-SQL."
            }
            TaskKind::SqlGeneration => {
                "Write the SQL query following the plan and the provided knowledge."
            }
        };
        let _ = writeln!(out, "## Task\n{task}\n");
        let _ = writeln!(out, "## Question\n{}\n", self.question);
        if !self.intent_candidates.is_empty() {
            let _ = writeln!(
                out,
                "## Candidate intents\n{}\n",
                self.intent_candidates.join(", ")
            );
        }
        if !self.schema.is_empty() {
            out.push_str("## Schema\n");
            for s in &self.schema {
                let mut line = s.key();
                if !s.description.is_empty() {
                    let _ = write!(line, " -- {}", s.description);
                }
                if !s.top_values.is_empty() {
                    let _ = write!(line, " [top: {}]", s.top_values.join(", "));
                }
                let _ = writeln!(out, "{line}");
            }
            out.push('\n');
        }
        if !self.examples.is_empty() {
            out.push_str("## Examples\n");
            for e in &self.examples {
                let term = e
                    .term
                    .as_deref()
                    .map(|t| format!("[{t}] "))
                    .unwrap_or_default();
                let _ = writeln!(out, "-- {term}{}", e.description);
                match e.kind {
                    Some(_) => {
                        let _ = writeln!(out, "... {} ...", e.sql);
                    }
                    None => {
                        let _ = writeln!(out, "{}", e.sql);
                    }
                }
            }
            out.push('\n');
        }
        if !self.instructions.is_empty() {
            out.push_str("## Instructions\n");
            for i in &self.instructions {
                match &i.sql_hint {
                    Some(h) => {
                        let _ = writeln!(out, "- {} (e.g. `{h}`)", i.text);
                    }
                    None => {
                        let _ = writeln!(out, "- {}", i.text);
                    }
                }
            }
            out.push('\n');
        }
        if !self.evidence.is_empty() {
            out.push_str("## Evidence\n");
            for e in &self.evidence {
                let _ = writeln!(out, "- {e}");
            }
            out.push('\n');
        }
        if let Some(plan) = &self.plan {
            let _ = writeln!(out, "## Plan\n{}\n", plan.to_json());
        }
        if !self.errors.is_empty() {
            out.push_str("## Errors from previous attempt\n");
            for e in &self.errors {
                let _ = writeln!(out, "- {e}");
            }
            out.push('\n');
        }
        if !self.hints.is_empty() {
            out.push_str("## Hints\n");
            for h in &self.hints {
                let _ = writeln!(out, "- {h}");
            }
            out.push('\n');
        }
        out
    }
}

/// Pull upper-case acronym-like tokens (length ≥ 2) out of free text, so a
/// term mentioned inline ("QoQFP is computed as…") counts as covered.
fn collect_upper_tokens(text: &str, out: &mut BTreeSet<String>) {
    for token in text.split(|c: char| !c.is_alphanumeric()) {
        if token.len() >= 2 && token.chars().any(|c| c.is_ascii_uppercase()) {
            out.insert(token.to_uppercase());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covered_terms_from_all_sections() {
        let mut p = Prompt::new(TaskKind::SqlGeneration, "q");
        p.instructions.push(PromptInstruction {
            text: "QoQFP means quarter over quarter financial performance".into(),
            sql_hint: None,
            term: Some("QoQFP".into()),
        });
        p.examples.push(PromptExample {
            description: "RPV calculation".into(),
            sql: "X".into(),
            kind: Some(FragmentKind::TermDefinition),
            term: Some("RPV".into()),
        });
        p.evidence.push("COC marks our own organizations".into());
        let terms = p.covered_terms();
        assert!(terms.contains("QOQFP"));
        assert!(terms.contains("RPV"));
        assert!(terms.contains("COC"));
        assert!(!terms.contains("ZZZ"));
    }

    #[test]
    fn schema_sets() {
        let mut p = Prompt::new(TaskKind::SqlGeneration, "q");
        p.schema.push(PromptSchemaElement {
            table: "sports_financials".into(),
            column: None,
            description: String::new(),
            top_values: vec![],
        });
        p.schema.push(PromptSchemaElement {
            table: "sports_financials".into(),
            column: Some("country".into()),
            description: String::new(),
            top_values: vec![],
        });
        assert!(p.schema_tables().contains("SPORTS_FINANCIALS"));
        assert!(p.schema_columns().contains("SPORTS_FINANCIALS.COUNTRY"));
    }

    #[test]
    fn example_support_distinguishes_decomposed() {
        let mut p = Prompt::new(TaskKind::SqlGeneration, "q");
        p.examples.push(PromptExample {
            description: "filter".into(),
            sql: "WHERE A = 1".into(),
            kind: Some(FragmentKind::Where),
            term: None,
        });
        p.examples.push(PromptExample {
            description: "full".into(),
            sql: "SELECT 1".into(),
            kind: None,
            term: None,
        });
        let (kinds, full) = p.example_support();
        assert!(kinds.contains(&FragmentKind::Where));
        assert!(full);
    }

    #[test]
    fn plan_json_shape() {
        let plan = Plan {
            steps: vec![
                PlanStep {
                    description: "Begin by looking at the financial data".into(),
                    pseudo_sql: Some("FROM SPORTS_FINANCIALS".into()),
                    scope: "FINANCIALS".into(),
                    kind: Some(FragmentKind::From),
                },
                PlanStep {
                    description: "No pseudo here".into(),
                    pseudo_sql: None,
                    scope: "main".into(),
                    kind: None,
                },
            ],
        };
        let j = plan.to_json();
        assert!(j.contains("\"step\": 1"));
        assert!(j.contains("... FROM SPORTS_FINANCIALS ..."));
        assert!(j.contains("\"pseudo_sql\": null"));
    }

    #[test]
    fn without_pseudo_sql_strips_all() {
        let plan = Plan {
            steps: vec![PlanStep {
                description: "d".into(),
                pseudo_sql: Some("X".into()),
                scope: "main".into(),
                kind: None,
            }],
        };
        assert!(plan.without_pseudo_sql().steps[0].pseudo_sql.is_none());
    }

    #[test]
    fn render_contains_sections() {
        let mut p = Prompt::new(TaskKind::SqlGeneration, "Show me the top 5 orgs");
        p.errors.push("binding error: no such column X".into());
        p.plan = Some(Plan::default());
        let text = p.render();
        assert!(text.contains("## Question"));
        assert!(text.contains("## Errors"));
        assert!(text.contains("## Plan"));
        assert_eq!(p.attempt(), 1);
    }
}
