//! Cross-request micro-batching in front of any [`LanguageModel`].
//!
//! A production text-to-SQL service runs many pipelines concurrently,
//! and at any instant several of them are blocked on the *same kind* of
//! model call — eight workers all waiting on a reformulation, or an
//! ensemble fanning out candidate SQL generations. Remote LLM backends
//! amortize beautifully over such shapes: one batched round trip costs
//! barely more than a single call. [`BatchScheduler`] exploits that by
//! coalescing concurrent [`LanguageModel::complete`] calls into
//! per-[`TaskKind`] micro-batches and dispatching them through
//! [`LanguageModel::complete_batch`].
//!
//! # Coalescing policy
//!
//! Each task kind owns an independent lane (batching never mixes kinds —
//! prompts of different kinds have nothing to amortize). The first caller
//! to find a lane without an active collector becomes that lane's
//! **leader**: it collects arrivals until the batch reaches
//! [`BatchConfig::max_batch_size`] or [`BatchConfig::max_wait`] elapses
//! on the injected [`Clock`], then drains the oldest pending requests
//! (FIFO) and dispatches them as one `complete_batch` call. Requests left
//! behind are picked up by the next leader — a fresh arrival, or a
//! leftover caller that wakes and finds no collector active.
//!
//! # Determinism
//!
//! Responses are routed back to callers positionally, so over a
//! deterministic model the scheduler is **byte-identical** to unbatched
//! execution for any interleaving: batch composition and timing affect
//! only latency, never which response a request receives. The injectable
//! [`Clock`] keeps tests deterministic — under a
//! [`SimulatedClock`](crate::SimulatedClock) the collection window
//! elapses instantly, with no wall-clock sleeps.
//!
//! ```
//! use genedit_llm::{
//!     BatchConfig, BatchScheduler, CompletionRequest, CompletionResponse, LanguageModel,
//!     ModelError, Prompt, TaskKind,
//! };
//! use std::sync::Arc;
//!
//! struct Echo;
//! impl LanguageModel for Echo {
//!     fn name(&self) -> &str {
//!         "echo"
//!     }
//!     fn complete(
//!         &self,
//!         request: &CompletionRequest,
//!     ) -> Result<CompletionResponse, ModelError> {
//!         Ok(CompletionResponse::Text(request.prompt.question.clone()))
//!     }
//! }
//!
//! let scheduler = Arc::new(BatchScheduler::new(Echo, BatchConfig::default()));
//! let request = CompletionRequest::new(Prompt::new(TaskKind::Reformulate, "q"));
//! assert_eq!(
//!     scheduler.complete(&request),
//!     Ok(CompletionResponse::Text("q".into()))
//! );
//! ```

use crate::model::{kind_label, CompletionRequest, CompletionResponse, LanguageModel, ModelError};
use crate::prompt::TaskKind;
use crate::resilient::{Clock, SystemClock};
use genedit_telemetry::MetricsRegistry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Coalescing knobs for a [`BatchScheduler`].
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Largest batch one dispatch may carry. `<= 1` disables batching
    /// entirely: `complete` passes straight through to the inner model
    /// with zero coordination overhead.
    pub max_batch_size: usize,
    /// How long a leader holds the collection window open waiting for
    /// more arrivals before dispatching a partial batch.
    pub max_wait: Duration,
    /// Leader re-check cadence inside the collection window. Smaller
    /// slices react to a filling batch sooner at the cost of more
    /// wakeups; the window never overshoots `max_wait` by more than one
    /// slice.
    pub poll_interval: Duration,
    /// Depth-adaptive collection window. When set, the *effective*
    /// window replaces `max_wait`: it widens as the lane's pending queue
    /// deepens (more arrivals are worth waiting for) and shrinks back to
    /// the idle floor when traffic is sparse (a lone request should not
    /// pay a full window of added latency). `None` keeps the fixed
    /// `max_wait` window.
    pub adaptive: Option<AdaptiveWindow>,
}

/// Linear depth→window schedule for [`BatchConfig::adaptive`]: a lane
/// with one pending request waits `idle_wait`, a lane at `full_depth`
/// (or deeper) waits `loaded_wait`, and depths in between interpolate
/// linearly. The leader re-evaluates the schedule every poll slice, so
/// a window widens *while open* as a burst lands behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveWindow {
    /// Effective window when the lane holds a single request.
    pub idle_wait: Duration,
    /// Effective window at (and beyond) `full_depth` pending requests.
    pub loaded_wait: Duration,
    /// Pending depth at which the window reaches `loaded_wait`.
    pub full_depth: usize,
}

impl Default for AdaptiveWindow {
    fn default() -> AdaptiveWindow {
        AdaptiveWindow {
            idle_wait: Duration::from_micros(500),
            loaded_wait: Duration::from_millis(4),
            full_depth: 8,
        }
    }
}

impl AdaptiveWindow {
    /// The effective collection window for a lane currently `depth`
    /// requests deep.
    pub fn window_for(&self, depth: usize) -> Duration {
        if depth <= 1 {
            return self.idle_wait;
        }
        if depth >= self.full_depth {
            return self.loaded_wait;
        }
        let span = self.loaded_wait.as_secs_f64() - self.idle_wait.as_secs_f64();
        let frac = (depth - 1) as f64 / (self.full_depth - 1).max(1) as f64;
        Duration::from_secs_f64((self.idle_wait.as_secs_f64() + span * frac).max(0.0))
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            max_batch_size: 8,
            max_wait: Duration::from_millis(2),
            poll_interval: Duration::from_micros(250),
            adaptive: None,
        }
    }
}

impl BatchConfig {
    /// A config that disables coalescing: calls pass through one by one.
    pub fn disabled() -> BatchConfig {
        BatchConfig {
            max_batch_size: 1,
            ..BatchConfig::default()
        }
    }

    /// Whether this config actually batches anything.
    pub fn enabled(&self) -> bool {
        self.max_batch_size > 1
    }
}

/// One caller's queued request, identified inside its lane.
struct Entry {
    id: u64,
    request: CompletionRequest,
}

#[derive(Default)]
struct LaneState {
    pending: VecDeque<Entry>,
    /// Completed responses awaiting pickup by their callers.
    results: HashMap<u64, Result<CompletionResponse, ModelError>>,
    /// Whether a leader is currently holding this lane's collection
    /// window open. Cleared before dispatch, so the next batch can start
    /// collecting while the previous one is in flight.
    collecting: bool,
    /// Whether a dispatched batch for this lane is currently inside the
    /// inner model. At most one dispatch per lane is in flight
    /// (continuous batching): while a slow backend works, the next
    /// window keeps absorbing arrivals instead of queueing shreds of
    /// work behind the round trip.
    inflight: bool,
    next_id: u64,
}

/// One task kind's coalescing lane: its queue state plus the condvar
/// waiting callers park on.
#[derive(Default)]
struct Lane {
    state: Mutex<LaneState>,
    wake: Condvar,
}

impl Lane {
    fn lock(&self) -> MutexGuard<'_, LaneState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Index of a task kind's lane. Kept in one place so the lane array and
/// the dispatch path cannot disagree.
fn lane_index(kind: TaskKind) -> usize {
    match kind {
        TaskKind::Reformulate => 0,
        TaskKind::IntentClassification => 1,
        TaskKind::SchemaLinking => 2,
        TaskKind::PlanGeneration => 3,
        TaskKind::SqlGeneration => 4,
    }
}

const LANES: usize = 5;

/// Fronts any [`LanguageModel`] and coalesces concurrent `complete`
/// calls into per-[`TaskKind`] micro-batches (see the [module
/// docs](self) for the policy). Implements [`LanguageModel`] itself, so
/// it drops into any pipeline or wrapper stack unchanged; share one
/// scheduler behind an `Arc` across every thread whose calls should
/// coalesce.
pub struct BatchScheduler<M> {
    inner: M,
    config: BatchConfig,
    clock: Arc<dyn Clock>,
    metrics: Option<Arc<MetricsRegistry>>,
    lanes: [Lane; LANES],
}

impl<M: LanguageModel> BatchScheduler<M> {
    /// Scheduler over the system clock.
    pub fn new(inner: M, config: BatchConfig) -> BatchScheduler<M> {
        BatchScheduler::with_clock(inner, config, Arc::new(SystemClock::new()))
    }

    /// Scheduler over an injected clock — a
    /// [`SimulatedClock`](crate::SimulatedClock) makes the collection
    /// window elapse instantly, so tests exercise coalescing without
    /// wall-clock sleeps.
    pub fn with_clock(inner: M, config: BatchConfig, clock: Arc<dyn Clock>) -> BatchScheduler<M> {
        BatchScheduler {
            inner,
            config,
            clock,
            metrics: None,
            lanes: Default::default(),
        }
    }

    /// Attach a metrics registry: every dispatch records its batch size,
    /// coalesce wait, and per-kind occupancy under `batch.*`.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> BatchScheduler<M> {
        self.metrics = Some(metrics);
        self
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The coalescing configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// Lead one collection window on `lane`: wait for the batch to fill
    /// (or the window to elapse), drain the oldest pending entries, and
    /// dispatch them as one `complete_batch`. Returns with the results
    /// published and every waiter notified. The caller's own entry may or
    /// may not be part of the dispatched batch — the outer loop in
    /// [`complete`](Self::complete) re-checks.
    fn lead<'l>(&self, lane: &'l Lane, kind: TaskKind, mut state: MutexGuard<'l, LaneState>) {
        state.collecting = true;
        let window_opened = self.clock.now();
        // With an adaptive schedule the effective window is re-derived
        // from the live queue depth every slice, so it widens while open
        // if a burst lands behind the leader and stays at the idle floor
        // for sparse traffic.
        let mut effective_wait = match &self.config.adaptive {
            Some(adaptive) => adaptive.window_for(state.pending.len()),
            None => self.config.max_wait,
        };
        loop {
            if let Some(adaptive) = &self.config.adaptive {
                effective_wait = adaptive.window_for(state.pending.len());
            }
            if state.pending.len() >= self.config.max_batch_size {
                break;
            }
            let elapsed = self.clock.now().saturating_sub(window_opened);
            if elapsed >= effective_wait {
                break;
            }
            let remaining = effective_wait - elapsed;
            drop(state);
            self.clock.sleep(self.config.poll_interval.min(remaining));
            state = lane.lock();
        }
        // Continuous batching: at most one dispatch per lane is inside
        // the inner model. While the previous round trip runs, this
        // window keeps absorbing arrivals — a slow backend naturally
        // deepens the next batch instead of accumulating a convoy of
        // near-empty ones behind its latency.
        while state.inflight {
            let (next, _) = lane
                .wake
                .wait_timeout(state, Duration::from_millis(10))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
        let take = state.pending.len().min(self.config.max_batch_size);
        let batch: Vec<Entry> = state.pending.drain(..take).collect();
        // Collection is over before dispatch begins: a new arrival can
        // open the next window while this batch's round trip is in
        // flight, pipelining collection with dispatch.
        state.collecting = false;
        if batch.is_empty() {
            drop(state);
            lane.wake.notify_all();
            return;
        }
        state.inflight = true;
        drop(state);
        let coalesce_wait = self.clock.now().saturating_sub(window_opened);
        let requests: Vec<CompletionRequest> = batch.iter().map(|e| e.request.clone()).collect();
        let mut responses = self.inner.complete_batch(&requests);
        // A short response vector is an inner-model contract violation;
        // surface it per missing slot rather than panicking or hanging
        // the waiters.
        while responses.len() < batch.len() {
            responses.push(Err(ModelError::Malformed {
                raw: "batch dispatch returned fewer responses than requests".to_string(),
            }));
        }
        if let Some(metrics) = &self.metrics {
            let label = kind_label(kind);
            metrics.incr("batch.dispatched", 1);
            metrics.observe("batch.size", batch.len() as f64);
            metrics.observe_duration("batch.coalesce_wait.ms", coalesce_wait);
            metrics.observe(
                &format!("batch.occupancy.{label}"),
                batch.len() as f64 / self.config.max_batch_size as f64,
            );
            metrics.observe_duration("batch.window.ms", effective_wait);
        }
        let mut state = lane.lock();
        state.inflight = false;
        for (entry, response) in batch.into_iter().zip(responses) {
            state.results.insert(entry.id, response);
        }
        drop(state);
        lane.wake.notify_all();
    }
}

impl<M: LanguageModel> LanguageModel for BatchScheduler<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        if !self.config.enabled() {
            return self.inner.complete(request);
        }
        let kind = request.prompt.task;
        let lane = &self.lanes[lane_index(kind)];
        let mut state = lane.lock();
        let id = state.next_id;
        state.next_id += 1;
        state.pending.push_back(Entry {
            id,
            request: request.clone(),
        });
        loop {
            if let Some(response) = state.results.remove(&id) {
                return response;
            }
            if !state.collecting && !state.pending.is_empty() {
                // No collector active and work is queued (this caller's
                // entry, or leftovers from an over-full window): lead the
                // next window. An empty pending queue means this entry is
                // already in an in-flight dispatch — just wait.
                self.lead(lane, kind, state);
                state = lane.lock();
                continue;
            }
            // A leader is collecting; park until results land. The
            // timeout is a liveness backstop (re-examine the lane even if
            // a wakeup is lost), not part of the batching policy.
            let (next, _) = lane
                .wake
                .wait_timeout(state, Duration::from_millis(10))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state = next;
        }
    }

    fn complete_batch(
        &self,
        requests: &[CompletionRequest],
    ) -> Vec<Result<CompletionResponse, ModelError>> {
        // Already a batch: nothing to coalesce, hand it straight down.
        self.inner.complete_batch(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;
    use crate::resilient::SimulatedClock;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Echoes the question; counts individual and batched dispatches.
    struct CountingModel {
        singles: AtomicUsize,
        batches: AtomicUsize,
        largest: AtomicUsize,
    }

    impl CountingModel {
        fn new() -> CountingModel {
            CountingModel {
                singles: AtomicUsize::new(0),
                batches: AtomicUsize::new(0),
                largest: AtomicUsize::new(0),
            }
        }
    }

    impl LanguageModel for CountingModel {
        fn name(&self) -> &str {
            "counting"
        }
        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            self.singles.fetch_add(1, Ordering::SeqCst);
            Ok(CompletionResponse::Text(request.prompt.question.clone()))
        }
        fn complete_batch(
            &self,
            requests: &[CompletionRequest],
        ) -> Vec<Result<CompletionResponse, ModelError>> {
            self.batches.fetch_add(1, Ordering::SeqCst);
            self.largest.fetch_max(requests.len(), Ordering::SeqCst);
            requests
                .iter()
                .map(|r| Ok(CompletionResponse::Text(r.prompt.question.clone())))
                .collect()
        }
    }

    fn request(kind: TaskKind, question: &str) -> CompletionRequest {
        CompletionRequest::new(Prompt::new(kind, question))
    }

    #[test]
    fn single_caller_gets_its_own_answer() {
        let scheduler = BatchScheduler::with_clock(
            CountingModel::new(),
            BatchConfig::default(),
            Arc::new(SimulatedClock::new()),
        );
        let response = scheduler.complete(&request(TaskKind::Reformulate, "alone"));
        assert_eq!(response, Ok(CompletionResponse::Text("alone".into())));
        assert_eq!(scheduler.inner().batches.load(Ordering::SeqCst), 1);
        assert_eq!(scheduler.inner().singles.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn disabled_config_passes_through() {
        let scheduler = BatchScheduler::new(CountingModel::new(), BatchConfig::disabled());
        scheduler
            .complete(&request(TaskKind::SqlGeneration, "q"))
            .unwrap();
        assert_eq!(scheduler.inner().singles.load(Ordering::SeqCst), 1);
        assert_eq!(scheduler.inner().batches.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_same_kind_calls_coalesce() {
        let scheduler = Arc::new(BatchScheduler::new(
            CountingModel::new(),
            BatchConfig {
                max_batch_size: 8,
                max_wait: Duration::from_millis(20),
                poll_interval: Duration::from_millis(1),
                adaptive: None,
            },
        ));
        let threads = 8;
        let answers: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let scheduler = Arc::clone(&scheduler);
                    scope.spawn(move || {
                        let question = format!("q{i}");
                        let response = scheduler
                            .complete(&request(TaskKind::SqlGeneration, &question))
                            .unwrap();
                        (question, response)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (question, response) in answers {
            assert_eq!(response, CompletionResponse::Text(question));
        }
        // All 8 calls fit one window: strictly fewer dispatches than
        // callers, and at least one genuinely multi-request batch.
        let batches = scheduler.inner().batches.load(Ordering::SeqCst);
        assert!(
            batches < threads,
            "no coalescing happened ({batches} dispatches)"
        );
        assert!(scheduler.inner().largest.load(Ordering::SeqCst) >= 2);
    }

    #[test]
    fn different_kinds_never_share_a_batch() {
        let scheduler = Arc::new(BatchScheduler::new(
            CountingModel::new(),
            BatchConfig {
                max_batch_size: 8,
                max_wait: Duration::from_millis(20),
                poll_interval: Duration::from_millis(1),
                adaptive: None,
            },
        ));
        std::thread::scope(|scope| {
            for kind in [TaskKind::Reformulate, TaskKind::SqlGeneration] {
                for i in 0..3 {
                    let scheduler = Arc::clone(&scheduler);
                    scope.spawn(move || {
                        scheduler
                            .complete(&request(kind, &format!("q{i}")))
                            .unwrap();
                    });
                }
            }
        });
        // 6 calls across 2 kinds: at least one dispatch per kind.
        assert!(scheduler.inner().batches.load(Ordering::SeqCst) >= 2);
        assert!(scheduler.inner().largest.load(Ordering::SeqCst) <= 3);
    }

    #[test]
    fn short_batch_responses_surface_as_errors_not_hangs() {
        struct ShortModel;
        impl LanguageModel for ShortModel {
            fn name(&self) -> &str {
                "short"
            }
            fn complete(&self, _: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
                Ok(CompletionResponse::Text("one".into()))
            }
            fn complete_batch(
                &self,
                _requests: &[CompletionRequest],
            ) -> Vec<Result<CompletionResponse, ModelError>> {
                Vec::new()
            }
        }
        let scheduler = BatchScheduler::with_clock(
            ShortModel,
            BatchConfig::default(),
            Arc::new(SimulatedClock::new()),
        );
        let err = scheduler
            .complete(&request(TaskKind::Reformulate, "q"))
            .unwrap_err();
        assert!(matches!(err, ModelError::Malformed { .. }));
    }

    #[test]
    fn adaptive_window_interpolates_with_depth() {
        let schedule = AdaptiveWindow {
            idle_wait: Duration::from_millis(1),
            loaded_wait: Duration::from_millis(8),
            full_depth: 8,
        };
        assert_eq!(schedule.window_for(0), Duration::from_millis(1));
        assert_eq!(schedule.window_for(1), Duration::from_millis(1));
        assert_eq!(schedule.window_for(8), Duration::from_millis(8));
        assert_eq!(schedule.window_for(100), Duration::from_millis(8));
        let mid = schedule.window_for(4);
        assert!(mid > schedule.window_for(2) && mid < schedule.window_for(7));
    }

    #[test]
    fn adaptive_window_stays_at_idle_floor_for_sparse_traffic() {
        let metrics = Arc::new(MetricsRegistry::new());
        let idle = Duration::from_millis(30);
        let scheduler = BatchScheduler::with_clock(
            CountingModel::new(),
            BatchConfig {
                adaptive: Some(AdaptiveWindow {
                    idle_wait: idle,
                    loaded_wait: Duration::from_millis(200),
                    full_depth: 8,
                }),
                ..BatchConfig::default()
            },
            Arc::new(SimulatedClock::new()),
        )
        .with_metrics(Arc::clone(&metrics));
        for i in 0..5 {
            scheduler
                .complete(&request(TaskKind::SqlGeneration, &format!("q{i}")))
                .unwrap();
        }
        // Sequential callers never find company: every window stayed at
        // the idle floor and every dispatch carried one request.
        let snapshot = metrics.snapshot();
        let window = &snapshot.histograms["batch.window.ms"];
        assert_eq!(window.count, 5);
        assert!((window.max - idle.as_secs_f64() * 1e3).abs() < 1e-6);
        assert_eq!(scheduler.inner().largest.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn adaptive_window_widens_under_a_burst() {
        let metrics = Arc::new(MetricsRegistry::new());
        let idle = Duration::from_millis(30);
        let loaded = Duration::from_millis(200);
        let scheduler = Arc::new(
            BatchScheduler::new(
                CountingModel::new(),
                BatchConfig {
                    max_batch_size: 8,
                    adaptive: Some(AdaptiveWindow {
                        idle_wait: idle,
                        loaded_wait: loaded,
                        full_depth: 8,
                    }),
                    poll_interval: Duration::from_millis(1),
                    ..BatchConfig::default()
                },
            )
            .with_metrics(Arc::clone(&metrics)),
        );
        // 8 concurrent submitters: whoever leads opens (at least) a 30ms
        // idle window — ample time for the rest of the burst to enqueue —
        // and the per-slice recomputation then widens the window until
        // the batch fills to 8 and dispatches on size.
        std::thread::scope(|scope| {
            for i in 0..8 {
                let scheduler = Arc::clone(&scheduler);
                scope.spawn(move || {
                    scheduler
                        .complete(&request(TaskKind::SqlGeneration, &format!("q{i}")))
                        .unwrap();
                });
            }
        });
        assert_eq!(scheduler.inner().largest.load(Ordering::SeqCst), 8);
        let snapshot = metrics.snapshot();
        let window = &snapshot.histograms["batch.window.ms"];
        assert!(
            window.max > idle.as_secs_f64() * 1e3 + 1e-6,
            "window never widened past the idle floor: max {}ms",
            window.max
        );
    }

    #[test]
    fn metrics_record_batch_sizes_and_occupancy() {
        let metrics = Arc::new(MetricsRegistry::new());
        let scheduler = BatchScheduler::with_clock(
            CountingModel::new(),
            BatchConfig::default(),
            Arc::new(SimulatedClock::new()),
        )
        .with_metrics(Arc::clone(&metrics));
        scheduler
            .complete(&request(TaskKind::PlanGeneration, "q"))
            .unwrap();
        let snapshot = metrics.snapshot();
        assert_eq!(snapshot.counters["batch.dispatched"], 1);
        assert_eq!(snapshot.histograms["batch.size"].count, 1);
        assert!(snapshot.histograms.contains_key("batch.occupancy.plan"));
        assert!(snapshot.histograms.contains_key("batch.coalesce_wait.ms"));
    }
}
