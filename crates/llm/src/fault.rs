//! Deterministic fault injection for chaos testing.
//!
//! [`FaultInjector`] wraps any [`LanguageModel`] and injects the failure
//! modes a production model API exhibits — transient errors, timeouts,
//! rate limits, malformed payloads, latency spikes, wrong-variant
//! responses, and garbled SQL — from a schedule derived purely from
//! `(seed, call counter)`. Two runs with the same seed and call sequence
//! therefore inject byte-identical faults, which is what makes chaos
//! sweeps and the fault property tests reproducible.
//!
//! The counter (not the request content) drives the schedule: a retried
//! request advances to the next slot, so a transient fault clears on
//! retry exactly as it would against a real flaky backend.

use crate::model::{CompletionRequest, CompletionResponse, LanguageModel, ModelError};
use crate::oracle::hash01;
use crate::prompt::TaskKind;
use crate::resilient::Clock;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// The categories of fault the injector can produce. Used to address a
/// single category when building a config ([`FaultConfig::only`]) or
/// reading a log ([`FaultLog::count`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `ModelError::Transient` transport error.
    Transient,
    /// `ModelError::Timeout`.
    Timeout,
    /// `ModelError::RateLimited`.
    RateLimited,
    /// `ModelError::Malformed` payload.
    Malformed,
    /// Response swapped to the wrong [`CompletionResponse`] variant.
    WrongVariant,
    /// SQL response garbled into unparseable text.
    GarbledSql,
    /// Latency spike (timing only, outcome unchanged).
    LatencySpike,
    /// A **panic** out of the model call — the poison-pill fault. Unlike
    /// every other category this does not return: it unwinds through the
    /// whole pipeline and is only survivable above a `catch_unwind`
    /// boundary (the serving runtime's per-request panic domain). It is
    /// therefore *not* part of [`FaultConfig::uniform`]; opt in via
    /// [`FaultConfig::panic_only`] or the `panic` field.
    Panic,
}

/// Per-category injection rates, each an independent probability in
/// `[0, 1]` evaluated per call. Error-side faults are checked in field
/// order and the first hit wins; response-side corruptions only apply to
/// calls that would otherwise succeed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultConfig {
    /// `ModelError::Transient` rate.
    pub transient: f64,
    /// `ModelError::Timeout` rate.
    pub timeout: f64,
    /// `ModelError::RateLimited` rate (`retry_after` = [`FaultConfig::retry_after`]).
    pub rate_limited: f64,
    /// `ModelError::Malformed` rate.
    pub malformed: f64,
    /// Rate of responses swapped to the wrong [`CompletionResponse`] variant.
    pub wrong_variant: f64,
    /// Rate of SQL responses garbled into unparseable text (SQL tasks only).
    pub garbled_sql: f64,
    /// Rate of latency spikes (the wrapped clock sleeps [`FaultConfig::spike`]).
    pub latency_spike: f64,
    /// Rate of injected **panics** ([`FaultKind::Panic`]): the call
    /// unwinds instead of returning. Checked before every other
    /// category — a poison pill preempts ordinary failure. Excluded from
    /// [`FaultConfig::uniform`]; callers must opt in because the panic
    /// only resolves above a `catch_unwind` boundary.
    pub panic: f64,
    /// Suggested wait attached to injected rate limits.
    pub retry_after: Duration,
    /// Duration of an injected latency spike.
    pub spike: Duration,
}

impl FaultConfig {
    /// A config injecting only transient errors — the headline knob of the
    /// chaos sweep.
    pub fn transient_only(rate: f64) -> FaultConfig {
        FaultConfig {
            transient: rate,
            ..FaultConfig::default()
        }
    }

    /// A config exercising every *returning* category at the same rate.
    /// Used by the property tests and the mixed-fault chaos rows.
    /// Panics are deliberately excluded: they unwind instead of
    /// returning, so they are only safe above a `catch_unwind` boundary
    /// (see [`FaultConfig::panic_only`]).
    pub fn uniform(rate: f64) -> FaultConfig {
        FaultConfig {
            transient: rate,
            timeout: rate,
            rate_limited: rate,
            malformed: rate,
            wrong_variant: rate,
            garbled_sql: rate,
            latency_spike: rate,
            panic: 0.0,
            retry_after: Duration::from_millis(250),
            spike: Duration::from_millis(500),
        }
    }

    /// A config injecting only poison-pill panics — the headline knob of
    /// the resilience sweep. The wrapped call unwinds at `rate`; callers
    /// must run under `catch_unwind` (the serving runtime does).
    pub fn panic_only(rate: f64) -> FaultConfig {
        FaultConfig {
            panic: rate,
            ..FaultConfig::default()
        }
    }

    /// A config injecting a single [`FaultKind`] at `rate`.
    pub fn only(kind: FaultKind, rate: f64) -> FaultConfig {
        let mut config = FaultConfig {
            retry_after: Duration::from_millis(250),
            spike: Duration::from_millis(500),
            ..FaultConfig::default()
        };
        *config.rate_mut(kind) = rate;
        config
    }

    /// The injection rate configured for `kind`.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Transient => self.transient,
            FaultKind::Timeout => self.timeout,
            FaultKind::RateLimited => self.rate_limited,
            FaultKind::Malformed => self.malformed,
            FaultKind::WrongVariant => self.wrong_variant,
            FaultKind::GarbledSql => self.garbled_sql,
            FaultKind::LatencySpike => self.latency_spike,
            FaultKind::Panic => self.panic,
        }
    }

    fn rate_mut(&mut self, kind: FaultKind) -> &mut f64 {
        match kind {
            FaultKind::Transient => &mut self.transient,
            FaultKind::Timeout => &mut self.timeout,
            FaultKind::RateLimited => &mut self.rate_limited,
            FaultKind::Malformed => &mut self.malformed,
            FaultKind::WrongVariant => &mut self.wrong_variant,
            FaultKind::GarbledSql => &mut self.garbled_sql,
            FaultKind::LatencySpike => &mut self.latency_spike,
            FaultKind::Panic => &mut self.panic,
        }
    }
}

/// Counts of injected faults, by category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultLog {
    /// Calls that passed through the injector (faulted or not).
    pub calls: u64,
    /// Injected transient transport errors.
    pub transient: u64,
    /// Injected timeouts.
    pub timeout: u64,
    /// Injected rate-limit errors.
    pub rate_limited: u64,
    /// Injected unparseable payloads.
    pub malformed: u64,
    /// Responses corrupted to the wrong variant.
    pub wrong_variant: u64,
    /// SQL responses garbled in place.
    pub garbled_sql: u64,
    /// Injected latency spikes (timing only, outcome unchanged).
    pub latency_spikes: u64,
    /// Injected panics (the call unwound instead of returning).
    pub panics: u64,
}

impl FaultLog {
    /// Injected error-side faults (calls that returned `Err`).
    pub fn errors(&self) -> u64 {
        self.transient + self.timeout + self.rate_limited + self.malformed
    }

    /// Injected faults of one category.
    pub fn count(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::Transient => self.transient,
            FaultKind::Timeout => self.timeout,
            FaultKind::RateLimited => self.rate_limited,
            FaultKind::Malformed => self.malformed,
            FaultKind::WrongVariant => self.wrong_variant,
            FaultKind::GarbledSql => self.garbled_sql,
            FaultKind::LatencySpike => self.latency_spikes,
            FaultKind::Panic => self.panics,
        }
    }

    /// Injected response corruptions (calls that returned a wrong `Ok`).
    pub fn corruptions(&self) -> u64 {
        self.wrong_variant + self.garbled_sql
    }

    /// Every injected *returning* fault: errors plus corruptions.
    /// Latency spikes (timing only) and panics (the call never returns a
    /// value at all — see [`FaultLog::panics`]) are tracked separately.
    pub fn total(&self) -> u64 {
        self.errors() + self.corruptions()
    }
}

/// Wraps a model and injects faults on a deterministic per-seed schedule.
pub struct FaultInjector<M> {
    inner: M,
    config: FaultConfig,
    seed: u64,
    clock: Option<Arc<dyn Clock>>,
    counter: Mutex<u64>,
    log: Mutex<FaultLog>,
}

impl<M: LanguageModel> FaultInjector<M> {
    /// Wrap `inner` with a fault schedule derived purely from `seed`.
    pub fn new(inner: M, config: FaultConfig, seed: u64) -> FaultInjector<M> {
        FaultInjector {
            inner,
            config,
            seed,
            clock: None,
            counter: Mutex::new(0),
            log: Mutex::new(FaultLog::default()),
        }
    }

    /// Attach a clock so latency spikes actually sleep (simulated clocks
    /// make them free and measurable). Without one, spikes only count.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> FaultInjector<M> {
        self.clock = Some(clock);
        self
    }

    /// Snapshot of the injected-fault counters.
    pub fn log(&self) -> FaultLog {
        *self.lock_log()
    }

    /// The wrapped model.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    fn lock_log(&self) -> MutexGuard<'_, FaultLog> {
        self.log
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Probability draw for slot `n`, category `category` — pure function
    /// of (seed, n, category), independent of request content.
    fn roll(&self, n: u64, category: &str) -> f64 {
        hash01(&["fault", category, &n.to_string()], self.seed)
    }
}

impl<M: LanguageModel> LanguageModel for FaultInjector<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let n = {
            let mut counter = self
                .counter
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            *counter += 1;
            *counter
        };
        self.lock_log().calls += 1;

        // The poison pill preempts every other category: the counter is
        // logged *before* unwinding so schedules stay reproducible and
        // observable even though this call never returns.
        if self.roll(n, "panic") < self.config.panic {
            self.lock_log().panics += 1;
            panic!("injected poison-pill panic #{n}");
        }

        if self.roll(n, "spike") < self.config.latency_spike {
            self.lock_log().latency_spikes += 1;
            if let Some(clock) = &self.clock {
                clock.sleep(self.config.spike);
            }
        }

        if self.roll(n, "transient") < self.config.transient {
            self.lock_log().transient += 1;
            return Err(ModelError::Transient(format!("injected fault #{n}")));
        }
        if self.roll(n, "timeout") < self.config.timeout {
            self.lock_log().timeout += 1;
            return Err(ModelError::Timeout);
        }
        if self.roll(n, "rate-limited") < self.config.rate_limited {
            self.lock_log().rate_limited += 1;
            return Err(ModelError::RateLimited {
                retry_after: self.config.retry_after,
            });
        }
        if self.roll(n, "malformed") < self.config.malformed {
            self.lock_log().malformed += 1;
            return Err(ModelError::Malformed {
                raw: format!("{{\"truncated\": \"#{n}"),
            });
        }

        let response = self.inner.complete(request)?;

        if self.roll(n, "wrong-variant") < self.config.wrong_variant {
            self.lock_log().wrong_variant += 1;
            // Swap to a variant no task accepts in this position: tasks
            // expecting text get an item list and vice versa.
            return Ok(match response {
                CompletionResponse::Text(_) => CompletionResponse::Items(vec![]),
                _ => CompletionResponse::Text(format!("wrong-variant #{n}")),
            });
        }
        if request.prompt.task == TaskKind::SqlGeneration
            && self.roll(n, "garbled") < self.config.garbled_sql
        {
            if let CompletionResponse::Sql(sql) = &response {
                self.lock_log().garbled_sql += 1;
                // "GARBLED<" never parses as SQL, so validation always
                // catches the corruption (a silent pass would hide it).
                let keep = sql.len() / 2;
                let mut cut = keep.max(1).min(sql.len());
                while cut > 0 && !sql.is_char_boundary(cut) {
                    cut -= 1;
                }
                return Ok(CompletionResponse::Sql(format!("GARBLED<{}", &sql[..cut])));
            }
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;
    use crate::resilient::SimulatedClock;

    struct Fixed;
    impl LanguageModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            Ok(match request.prompt.task {
                TaskKind::SqlGeneration => CompletionResponse::Sql("SELECT 1".into()),
                _ => CompletionResponse::Text("text".into()),
            })
        }
    }

    fn sql_request() -> CompletionRequest {
        CompletionRequest::new(Prompt::new(TaskKind::SqlGeneration, "q"))
    }

    fn run_schedule(seed: u64, calls: usize) -> (Vec<String>, FaultLog) {
        let injector = FaultInjector::new(Fixed, FaultConfig::uniform(0.3), seed);
        let outcomes = (0..calls)
            .map(|_| match injector.complete(&sql_request()) {
                Ok(r) => format!("ok:{r:?}"),
                Err(e) => format!("err:{}", e.label()),
            })
            .collect();
        (outcomes, injector.log())
    }

    #[test]
    fn same_seed_gives_byte_identical_schedules() {
        let (a, log_a) = run_schedule(42, 200);
        let (b, log_b) = run_schedule(42, 200);
        assert_eq!(a, b);
        assert_eq!(log_a, log_b);
        assert!(log_a.total() > 0, "30% uniform rate must inject something");
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let (a, _) = run_schedule(1, 200);
        let (b, _) = run_schedule(2, 200);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rate_is_a_transparent_passthrough() {
        let injector = FaultInjector::new(Fixed, FaultConfig::default(), 7);
        for _ in 0..50 {
            assert_eq!(
                injector.complete(&sql_request()),
                Ok(CompletionResponse::Sql("SELECT 1".into()))
            );
        }
        let log = injector.log();
        assert_eq!(log.calls, 50);
        assert_eq!(log.total(), 0);
        assert_eq!(log.latency_spikes, 0);
    }

    #[test]
    fn retry_advances_the_schedule_past_a_transient() {
        // Rate 1.0 for transient only: every call fails — proving faults
        // key off the counter, a retried identical request still draws a
        // fresh slot (here: all slots fault, but the counter moved).
        let injector = FaultInjector::new(Fixed, FaultConfig::transient_only(1.0), 7);
        assert!(injector.complete(&sql_request()).is_err());
        assert!(injector.complete(&sql_request()).is_err());
        assert_eq!(injector.log().transient, 2);
        assert_eq!(injector.log().calls, 2);
    }

    #[test]
    fn garbled_sql_is_unparseable_and_logged() {
        let config = FaultConfig {
            garbled_sql: 1.0,
            ..FaultConfig::default()
        };
        let injector = FaultInjector::new(Fixed, config, 7);
        let response = injector.complete(&sql_request()).expect("ok response");
        let sql = response.as_sql().expect("still the Sql variant");
        assert!(sql.starts_with("GARBLED<"), "{sql}");
        assert_eq!(injector.log().garbled_sql, 1);
        // Non-SQL tasks are never garbled.
        let text = injector
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::Reformulate,
                "q",
            )))
            .expect("ok response");
        assert_eq!(text, CompletionResponse::Text("text".into()));
    }

    #[test]
    fn wrong_variant_swaps_the_response_type() {
        let config = FaultConfig {
            wrong_variant: 1.0,
            ..FaultConfig::default()
        };
        let injector = FaultInjector::new(Fixed, config, 7);
        let sql = injector.complete(&sql_request()).expect("ok");
        assert!(sql.as_sql().is_none(), "{sql:?}");
        let text = injector
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::Reformulate,
                "q",
            )))
            .expect("ok");
        assert!(text.as_text().is_none(), "{text:?}");
        assert_eq!(injector.log().wrong_variant, 2);
    }

    #[test]
    fn panic_rate_unwinds_on_schedule_and_is_logged_first() {
        let injector = Arc::new(FaultInjector::new(Fixed, FaultConfig::panic_only(1.0), 7));
        for _ in 0..3 {
            let cloned = Arc::clone(&injector);
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                cloned.complete(&sql_request())
            }));
            assert!(caught.is_err(), "panic rate 1.0 must unwind every call");
        }
        let log = injector.log();
        assert_eq!(log.panics, 3, "panics are counted before unwinding");
        assert_eq!(log.count(FaultKind::Panic), 3);
        assert_eq!(log.calls, 3);
        assert_eq!(log.total(), 0, "panics are not returning faults");
    }

    #[test]
    fn panic_schedule_is_seed_deterministic() {
        let outcomes = |seed: u64| -> Vec<bool> {
            let injector = FaultInjector::new(Fixed, FaultConfig::panic_only(0.3), seed);
            (0..100)
                .map(|_| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let _ = injector.complete(&sql_request());
                    }))
                    .is_err()
                })
                .collect()
        };
        let a = outcomes(11);
        assert_eq!(a, outcomes(11), "same seed, same poison-pill slots");
        assert!(a.iter().any(|&p| p) && !a.iter().all(|&p| p));
    }

    #[test]
    fn uniform_config_never_panics() {
        assert_eq!(FaultConfig::uniform(0.9).panic, 0.0);
        assert_eq!(FaultConfig::uniform(0.9).rate(FaultKind::Panic), 0.0);
        let only = FaultConfig::only(FaultKind::Timeout, 0.7);
        assert_eq!(only.rate(FaultKind::Timeout), 0.7);
        assert_eq!(only.rate(FaultKind::Transient), 0.0);
    }

    #[test]
    fn latency_spikes_sleep_on_the_injected_clock() {
        let clock = Arc::new(SimulatedClock::new());
        let config = FaultConfig {
            latency_spike: 1.0,
            spike: Duration::from_millis(500),
            ..FaultConfig::default()
        };
        let injector =
            FaultInjector::new(Fixed, config, 7).with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        injector.complete(&sql_request()).expect("ok");
        injector.complete(&sql_request()).expect("ok");
        assert_eq!(clock.total_slept(), Duration::from_secs(1));
        assert_eq!(injector.log().latency_spikes, 2);
    }
}
