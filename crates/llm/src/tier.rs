//! Model tiers and cost accounting (§3.3.3).
//!
//! "We use GPT-4o across all operators, except for schema linking, where
//! we instead employ GPT-4o-mini to reduce primarily cost and then
//! latency." [`TieredModel`] reproduces that engineering decision: each
//! operator kind routes to a tier; the mini tier is ~15× cheaper per
//! prompt character (the 4o vs 4o-mini price ratio) but slightly weaker —
//! modeled as reduced reasoning effort for generation calls and lossy
//! recall for schema-linking calls.

use crate::model::{CompletionRequest, CompletionResponse, LanguageModel, ModelError};
use crate::oracle::hash01;
use crate::prompt::TaskKind;
use std::sync::Mutex;

/// A model tier with its relative price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelTier {
    /// The frontier model ("GPT-4o").
    Full,
    /// The small model ("GPT-4o-mini").
    Mini,
}

impl ModelTier {
    /// Cost units per 1 000 prompt characters (scaled from the public
    /// price ratio between the two models the paper names).
    pub fn cost_per_kchar(&self) -> f64 {
        match self {
            ModelTier::Full => 1.0,
            ModelTier::Mini => 0.066,
        }
    }

    /// Reasoning-effort multiplier the tier applies to generation calls.
    pub fn effort_factor(&self) -> f64 {
        match self {
            ModelTier::Full => 1.0,
            ModelTier::Mini => 0.55,
        }
    }

    /// Fraction of linked schema elements the tier drops (mini models
    /// link slightly worse).
    pub fn linking_loss(&self) -> f64 {
        match self {
            ModelTier::Full => 0.0,
            ModelTier::Mini => 0.08,
        }
    }
}

/// Which tier each operator kind runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierPolicy {
    /// Tier for question reformulation.
    pub reformulate: ModelTier,
    /// Tier for intent classification.
    pub intent: ModelTier,
    /// Tier for schema linking.
    pub schema_linking: ModelTier,
    /// Tier for CoT plan generation.
    pub plan: ModelTier,
    /// Tier for SQL generation.
    pub sql: ModelTier,
}

impl TierPolicy {
    /// Everything on the frontier model.
    pub fn all_full() -> TierPolicy {
        TierPolicy {
            reformulate: ModelTier::Full,
            intent: ModelTier::Full,
            schema_linking: ModelTier::Full,
            plan: ModelTier::Full,
            sql: ModelTier::Full,
        }
    }

    /// The paper's deployment (§3.3.3): mini for schema linking only.
    pub fn paper() -> TierPolicy {
        TierPolicy {
            schema_linking: ModelTier::Mini,
            ..TierPolicy::all_full()
        }
    }

    /// Everything on the small model (the cheap extreme).
    pub fn all_mini() -> TierPolicy {
        TierPolicy {
            reformulate: ModelTier::Mini,
            intent: ModelTier::Mini,
            schema_linking: ModelTier::Mini,
            plan: ModelTier::Mini,
            sql: ModelTier::Mini,
        }
    }

    /// The tier `kind` routes to under this policy.
    pub fn tier_for(&self, kind: TaskKind) -> ModelTier {
        match kind {
            TaskKind::Reformulate => self.reformulate,
            TaskKind::IntentClassification => self.intent,
            TaskKind::SchemaLinking => self.schema_linking,
            TaskKind::PlanGeneration => self.plan,
            TaskKind::SqlGeneration => self.sql,
        }
    }
}

/// Accumulated spend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostLedger {
    /// Total spend in abstract cost units (full call = 1.0).
    pub cost_units: f64,
    /// Calls routed to the frontier tier.
    pub full_calls: usize,
    /// Calls routed to the mini tier.
    pub mini_calls: usize,
}

/// Routes each operator call to its tier, accounts the spend, and applies
/// the tier's quality model.
pub struct TieredModel<M> {
    inner: M,
    policy: TierPolicy,
    ledger: Mutex<CostLedger>,
}

impl<M: LanguageModel> TieredModel<M> {
    /// Wrap `inner` under a tier policy with a zeroed ledger.
    pub fn new(inner: M, policy: TierPolicy) -> TieredModel<M> {
        TieredModel {
            inner,
            policy,
            ledger: Mutex::new(CostLedger::default()),
        }
    }

    /// The routing policy in force.
    pub fn policy(&self) -> TierPolicy {
        self.policy
    }

    /// Lock the ledger, absorbing poisoning: accounting must not cascade
    /// a panic from elsewhere.
    fn ledger_lock(&self) -> std::sync::MutexGuard<'_, CostLedger> {
        self.ledger
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Snapshot of the accumulated spend.
    pub fn ledger(&self) -> CostLedger {
        self.ledger_lock().clone()
    }

    /// Zero the spend ledger.
    pub fn reset_ledger(&self) {
        *self.ledger_lock() = CostLedger::default();
    }
}

impl<M: LanguageModel> LanguageModel for TieredModel<M> {
    fn name(&self) -> &str {
        "tiered-oracle"
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let tier = self.policy.tier_for(request.prompt.task);

        // Account the spend on the *rendered* prompt size.
        {
            let mut ledger = self.ledger_lock();
            let kchars = request.prompt.render().len() as f64 / 1000.0;
            ledger.cost_units += kchars * tier.cost_per_kchar();
            match tier {
                ModelTier::Full => ledger.full_calls += 1,
                ModelTier::Mini => ledger.mini_calls += 1,
            }
        }

        // Apply the tier's generation-quality model through the prompt's
        // reasoning-effort channel.
        let mut request = request.clone();
        request.prompt.reasoning_effort *= tier.effort_factor();
        let response = self.inner.complete(&request)?;

        // Mini-tier schema linking loses a slice of its recall.
        if request.prompt.task == TaskKind::SchemaLinking && tier.linking_loss() > 0.0 {
            if let CompletionResponse::Items(items) = &response {
                let kept: Vec<String> = items
                    .iter()
                    .filter(|key| {
                        hash01(
                            &["mini-linking", key, &request.prompt.question],
                            request.seed,
                        ) >= tier.linking_loss()
                    })
                    .cloned()
                    .collect();
                return Ok(CompletionResponse::Items(kept));
            }
        }
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompt::Prompt;

    struct Fixed;
    impl LanguageModel for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
            Ok(match request.prompt.task {
                TaskKind::SchemaLinking => {
                    CompletionResponse::Items((0..50).map(|i| format!("T.C{i}")).collect())
                }
                // Echo the effective effort so tests can observe routing.
                _ => CompletionResponse::Text(format!("{:.2}", request.prompt.reasoning_effort)),
            })
        }
    }

    #[test]
    fn policy_routing() {
        let p = TierPolicy::paper();
        assert_eq!(p.tier_for(TaskKind::SchemaLinking), ModelTier::Mini);
        assert_eq!(p.tier_for(TaskKind::SqlGeneration), ModelTier::Full);
        assert_eq!(
            TierPolicy::all_mini().tier_for(TaskKind::PlanGeneration),
            ModelTier::Mini
        );
    }

    #[test]
    fn ledger_accumulates_by_tier() {
        let m = TieredModel::new(Fixed, TierPolicy::paper());
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SchemaLinking,
            "q",
        )))
        .unwrap();
        m.complete(&CompletionRequest::new(Prompt::new(
            TaskKind::SqlGeneration,
            "q",
        )))
        .unwrap();
        let ledger = m.ledger();
        assert_eq!(ledger.mini_calls, 1);
        assert_eq!(ledger.full_calls, 1);
        assert!(ledger.cost_units > 0.0);
        m.reset_ledger();
        assert_eq!(m.ledger(), CostLedger::default());
    }

    #[test]
    fn mini_is_cheaper_for_the_same_prompt() {
        let full = TieredModel::new(Fixed, TierPolicy::all_full());
        let mini = TieredModel::new(Fixed, TierPolicy::all_mini());
        let prompt = Prompt::new(TaskKind::SqlGeneration, "the same long question text here");
        full.complete(&CompletionRequest::new(prompt.clone()))
            .unwrap();
        mini.complete(&CompletionRequest::new(prompt)).unwrap();
        assert!(mini.ledger().cost_units < full.ledger().cost_units / 10.0);
    }

    #[test]
    fn mini_linking_drops_some_items() {
        let m = TieredModel::new(Fixed, TierPolicy::paper());
        let r = m
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::SchemaLinking,
                "q",
            )))
            .unwrap();
        let kept = r.as_items().unwrap().len();
        assert!(kept < 50, "mini linking should lose items");
        assert!(kept > 30, "but only a small slice");
        // Full tier keeps everything.
        let m = TieredModel::new(Fixed, TierPolicy::all_full());
        let r = m
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::SchemaLinking,
                "q",
            )))
            .unwrap();
        assert_eq!(r.as_items().unwrap().len(), 50);
    }

    #[test]
    fn mini_reduces_generation_effort() {
        let m = TieredModel::new(Fixed, TierPolicy::all_mini());
        let r = m
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::SqlGeneration,
                "q",
            )))
            .unwrap();
        assert_eq!(r.as_text().unwrap(), "0.55");
        let m = TieredModel::new(Fixed, TierPolicy::all_full());
        let r = m
            .complete(&CompletionRequest::new(Prompt::new(
                TaskKind::SqlGeneration,
                "q",
            )))
            .unwrap();
        assert_eq!(r.as_text().unwrap(), "1.00");
    }
}
