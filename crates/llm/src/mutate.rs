//! AST mutators.
//!
//! The oracle model corrupts the gold query once per unmet knowledge
//! requirement (see crate docs). Each mutator implements one corruption
//! class the paper attributes generation failures to (§1 "Recommending
//! Edits"): misunderstood context (dropped/wrong filters), wrong
//! calculations (missing `-1 *`, wrong aggregate), and retrieval misses
//! (wrong table/column). The mutators are also used by the scripted SME
//! simulator to *diagnose* a wrong query by diffing against gold.

use genedit_sql::ast::*;

/// Apply `f` to every expression in the query (including CTEs, subqueries,
/// ON conditions, group/order lists). `f` receives a mutable reference and
/// may replace the node wholesale.
pub fn visit_exprs_mut(query: &mut Query, f: &mut dyn FnMut(&mut Expr)) {
    for cte in &mut query.ctes {
        visit_exprs_mut(&mut cte.query, f);
    }
    visit_set_expr(&mut query.body, f);
    for o in &mut query.order_by {
        visit_expr(&mut o.expr, f);
    }
}

fn visit_set_expr(body: &mut SetExpr, f: &mut dyn FnMut(&mut Expr)) {
    match body {
        SetExpr::Select(s) => {
            for item in &mut s.items {
                if let SelectItem::Expr { expr, .. } = item {
                    visit_expr(expr, f);
                }
            }
            if let Some(from) = &mut s.from {
                visit_table_ref(from, f);
            }
            if let Some(w) = &mut s.selection {
                visit_expr(w, f);
            }
            for g in &mut s.group_by {
                visit_expr(g, f);
            }
            if let Some(h) = &mut s.having {
                visit_expr(h, f);
            }
        }
        SetExpr::SetOp { left, right, .. } => {
            visit_set_expr(left, f);
            visit_set_expr(right, f);
        }
    }
}

fn visit_table_ref(tr: &mut TableRef, f: &mut dyn FnMut(&mut Expr)) {
    match tr {
        TableRef::Named { .. } => {}
        TableRef::Derived { query, .. } => visit_exprs_mut(query, f),
        TableRef::Join {
            left, right, on, ..
        } => {
            visit_table_ref(left, f);
            visit_table_ref(right, f);
            if let Some(on) = on {
                visit_expr(on, f);
            }
        }
    }
}

fn visit_expr(e: &mut Expr, f: &mut dyn FnMut(&mut Expr)) {
    // Children first so replacements at the parent see mutated children.
    match e {
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } => visit_expr(expr, f),
        Expr::Binary { left, right, .. } => {
            visit_expr(left, f);
            visit_expr(right, f);
        }
        Expr::IsNull { expr, .. } => visit_expr(expr, f),
        Expr::InList { expr, list, .. } => {
            visit_expr(expr, f);
            for i in list {
                visit_expr(i, f);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            visit_expr(expr, f);
            visit_exprs_mut(subquery, f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            visit_expr(expr, f);
            visit_expr(low, f);
            visit_expr(high, f);
        }
        Expr::Like { expr, pattern, .. } => {
            visit_expr(expr, f);
            visit_expr(pattern, f);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(op) = operand {
                visit_expr(op, f);
            }
            for (w, t) in branches {
                visit_expr(w, f);
                visit_expr(t, f);
            }
            if let Some(el) = else_expr {
                visit_expr(el, f);
            }
        }
        Expr::Cast { expr, .. } => visit_expr(expr, f),
        Expr::Function(call) => {
            for a in &mut call.args {
                visit_expr(a, f);
            }
            if let Some(spec) = &mut call.over {
                for p in &mut spec.partition_by {
                    visit_expr(p, f);
                }
                for o in &mut spec.order_by {
                    visit_expr(&mut o.expr, f);
                }
            }
        }
        Expr::Exists { subquery, .. } => visit_exprs_mut(subquery, f),
        Expr::ScalarSubquery(subquery) => visit_exprs_mut(subquery, f),
    }
    f(e);
}

/// Rename every column reference `from` → `to` (case-insensitive match).
/// Returns how many references changed.
pub fn rename_column(query: &mut Query, from: &str, to: &str) -> usize {
    let mut n = 0;
    visit_exprs_mut(query, &mut |e| {
        if let Expr::Column { name, .. } = e {
            if name.eq_ignore_ascii_case(from) {
                *name = to.to_string();
                n += 1;
            }
        }
    });
    n
}

/// Rename every base-table reference `from` → `to`. Returns change count.
pub fn rename_table(query: &mut Query, from: &str, to: &str) -> usize {
    let mut n = 0;
    fn walk_ref(tr: &mut TableRef, from: &str, to: &str, n: &mut usize) {
        match tr {
            TableRef::Named { name, .. } => {
                if name.eq_ignore_ascii_case(from) {
                    *name = to.to_string();
                    *n += 1;
                }
            }
            TableRef::Derived { query, .. } => walk_query(query, from, to, n),
            TableRef::Join { left, right, .. } => {
                walk_ref(left, from, to, n);
                walk_ref(right, from, to, n);
            }
        }
    }
    fn walk_set(body: &mut SetExpr, from: &str, to: &str, n: &mut usize) {
        match body {
            SetExpr::Select(s) => {
                if let Some(fr) = &mut s.from {
                    walk_ref(fr, from, to, n);
                }
            }
            SetExpr::SetOp { left, right, .. } => {
                walk_set(left, from, to, n);
                walk_set(right, from, to, n);
            }
        }
    }
    fn walk_query(q: &mut Query, from: &str, to: &str, n: &mut usize) {
        for cte in &mut q.ctes {
            walk_query(&mut cte.query, from, to, n);
        }
        walk_set(&mut q.body, from, to, n);
    }
    walk_query(query, from, to, &mut n);
    n
}

/// Replace every string literal equal to `from` with `to`.
pub fn replace_string_literal(query: &mut Query, from: &str, to: &str) -> usize {
    let mut n = 0;
    visit_exprs_mut(query, &mut |e| {
        if let Expr::Literal(Literal::String(s)) = e {
            if s == from {
                *s = to.to_string();
                n += 1;
            }
        }
    });
    n
}

/// Swap one aggregate/function name for another everywhere.
pub fn rename_function(query: &mut Query, from: &str, to: &str) -> usize {
    let mut n = 0;
    visit_exprs_mut(query, &mut |e| {
        if let Expr::Function(call) = e {
            if call.name.eq_ignore_ascii_case(from) {
                call.name = to.to_ascii_uppercase();
                n += 1;
            }
        }
    });
    n
}

/// Remove every `-1 * x` / `x * -1` factor, leaving `x` — the mistake the
/// paper's example instruction exists to prevent ("Apply a -1 multiplier
/// when calculating the change in performance metrics").
pub fn strip_neg_one_multiplier(query: &mut Query) -> usize {
    let mut n = 0;
    visit_exprs_mut(query, &mut |e| {
        let replacement = match e {
            Expr::Binary {
                op: BinaryOp::Mul,
                left,
                right,
            } => {
                if is_neg_one(left) {
                    Some((**right).clone())
                } else if is_neg_one(right) {
                    Some((**left).clone())
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(r) = replacement {
            *e = r;
            n += 1;
        }
    });
    n
}

fn is_neg_one(e: &Expr) -> bool {
    matches!(e, Expr::Literal(Literal::Integer(-1)))
        || matches!(e, Expr::Literal(Literal::Float(f)) if *f == -1.0)
        || matches!(e, Expr::Unary { op: UnaryOp::Neg, expr }
            if matches!(**expr, Expr::Literal(Literal::Integer(1))))
}

/// Flip ASC↔DESC on every ORDER BY (query level and window specs).
pub fn flip_order_directions(query: &mut Query) -> usize {
    let mut n = query.order_by.len();
    for o in &mut query.order_by {
        o.desc = !o.desc;
    }
    for cte in &mut query.ctes {
        n += flip_order_directions(&mut cte.query);
    }
    visit_exprs_mut(query, &mut |e| {
        if let Expr::Function(call) = e {
            if let Some(spec) = &mut call.over {
                for o in &mut spec.order_by {
                    o.desc = !o.desc;
                    n += 1;
                }
            }
        }
    });
    n
}

/// Remove WHERE conjuncts whose rendered text contains `marker`
/// (case-insensitive). Applies in every SELECT of the query. Returns how
/// many conjuncts were removed.
pub fn drop_where_conjunct(query: &mut Query, marker: &str) -> usize {
    let mut n = 0;
    fn rebuild(conjuncts: Vec<Expr>) -> Option<Expr> {
        let mut it = conjuncts.into_iter();
        let first = it.next()?;
        Some(it.fold(first, Expr::and))
    }
    fn walk_select(s: &mut Select, marker: &str, n: &mut usize) {
        if let Some(selection) = s.selection.take() {
            let parts = split_owned_conjuncts(selection);
            let kept: Vec<Expr> = parts
                .into_iter()
                .filter(|c| {
                    let keep = !c
                        .to_string()
                        .to_uppercase()
                        .contains(&marker.to_uppercase());
                    if !keep {
                        *n += 1;
                    }
                    keep
                })
                .collect();
            s.selection = rebuild(kept);
        }
        if let Some(from) = &mut s.from {
            walk_ref(from, marker, n);
        }
    }
    fn walk_ref(tr: &mut TableRef, marker: &str, n: &mut usize) {
        match tr {
            TableRef::Named { .. } => {}
            TableRef::Derived { query, .. } => walk_query(query, marker, n),
            TableRef::Join { left, right, .. } => {
                walk_ref(left, marker, n);
                walk_ref(right, marker, n);
            }
        }
    }
    fn walk_set(body: &mut SetExpr, marker: &str, n: &mut usize) {
        match body {
            SetExpr::Select(s) => walk_select(s, marker, n),
            SetExpr::SetOp { left, right, .. } => {
                walk_set(left, marker, n);
                walk_set(right, marker, n);
            }
        }
    }
    fn walk_query(q: &mut Query, marker: &str, n: &mut usize) {
        for cte in &mut q.ctes {
            walk_query(&mut cte.query, marker, n);
        }
        walk_set(&mut q.body, marker, n);
    }
    walk_query(query, marker, &mut n);
    n
}

/// Split an owned expression on top-level ANDs.
pub fn split_owned_conjuncts(e: Expr) -> Vec<Expr> {
    match e {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_owned_conjuncts(*left);
            out.extend(split_owned_conjuncts(*right));
            out
        }
        other => vec![other],
    }
}

/// Truncate rendered SQL to produce a *syntactic* error — models the
/// cut-off generations long queries suffer without planning.
pub fn truncate_sql(sql: &str, fraction_kept: f64) -> String {
    let keep = ((sql.len() as f64) * fraction_kept.clamp(0.1, 0.95)) as usize;
    let mut cut = keep.min(sql.len().saturating_sub(1)).max(1);
    while cut > 0 && !sql.is_char_boundary(cut) {
        cut -= 1;
    }
    sql[..cut].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_sql::parse_statement;

    fn q(sql: &str) -> Query {
        let Statement::Query(q) = parse_statement(sql).unwrap();
        q
    }

    #[test]
    fn rename_column_everywhere() {
        let mut query = q("WITH c AS (SELECT rev FROM t WHERE rev > 0) \
             SELECT rev FROM c ORDER BY rev");
        assert_eq!(rename_column(&mut query, "REV", "revenue"), 4);
        assert!(!query.to_string().to_lowercase().contains("rev "));
    }

    #[test]
    fn rename_table_skips_columns() {
        let mut query = q("SELECT fin FROM fin JOIN other ON fin.x = other.x");
        assert_eq!(rename_table(&mut query, "fin", "financials"), 1);
        let s = query.to_string();
        assert!(s.contains("FROM financials"));
        // Column named fin untouched.
        assert!(s.contains("SELECT fin"));
    }

    #[test]
    fn literal_replacement() {
        let mut query = q("SELECT * FROM t WHERE c = 'Canada' OR c = 'USA'");
        assert_eq!(replace_string_literal(&mut query, "Canada", "CA"), 1);
        assert!(query.to_string().contains("'CA'"));
        assert!(query.to_string().contains("'USA'"));
    }

    #[test]
    fn aggregate_swap() {
        let mut query = q("SELECT SUM(x), SUM(y), AVG(z) FROM t");
        assert_eq!(rename_function(&mut query, "sum", "AVG"), 2);
        assert_eq!(query.to_string().matches("AVG").count(), 3);
    }

    #[test]
    fn neg_one_stripping() {
        let mut query = q("SELECT -1 * (a - b), (a - b) * -1, 2 * a FROM t");
        assert_eq!(strip_neg_one_multiplier(&mut query), 2);
        let s = query.to_string();
        assert!(!s.contains("-1"));
        assert!(s.contains("2 * a"));
    }

    #[test]
    fn order_direction_flip() {
        let mut query = q("SELECT ROW_NUMBER() OVER (ORDER BY a DESC) FROM t ORDER BY b");
        let n = flip_order_directions(&mut query);
        assert_eq!(n, 2);
        let s = query.to_string();
        assert!(s.contains("OVER (ORDER BY a)"));
        assert!(s.contains("ORDER BY b DESC"));
    }

    #[test]
    fn conjunct_dropping_matches_marker() {
        let mut query = q(
            "WITH c AS (SELECT x FROM t WHERE owned = 'COC' AND country = 'Canada') \
             SELECT x FROM c WHERE x > 0",
        );
        assert_eq!(drop_where_conjunct(&mut query, "owned"), 1);
        let s = query.to_string();
        assert!(!s.to_lowercase().contains("owned"));
        assert!(s.contains("country = 'Canada'"));
        assert!(s.contains("x > 0"));
    }

    #[test]
    fn dropping_sole_conjunct_removes_where() {
        let mut query = q("SELECT x FROM t WHERE owned = 'COC'");
        assert_eq!(drop_where_conjunct(&mut query, "OWNED"), 1);
        assert!(query.as_select().unwrap().selection.is_none());
    }

    #[test]
    fn truncation_produces_parse_error() {
        let sql = "SELECT a, b FROM t WHERE a > 1 GROUP BY a";
        let broken = truncate_sql(sql, 0.5);
        assert!(broken.len() < sql.len());
        // Not all truncations are invalid, but this one cuts mid-clause.
        assert!(parse_statement(&broken).is_err() || broken.len() < sql.len());
    }

    #[test]
    fn corrupted_query_remains_printable() {
        let mut query = q(
            "SELECT SUM(CASE WHEN q = '2023Q1' THEN rev ELSE 0 END) FROM fin WHERE owned = 'COC'",
        );
        drop_where_conjunct(&mut query, "owned");
        rename_function(&mut query, "SUM", "AVG");
        let rendered = query.to_string();
        assert!(parse_statement(&rendered).is_ok());
    }
}
