//! Cooperative cancellation for in-flight generations and model calls.
//!
//! The serving runtime hands each worker a [`CancelToken`] carrying the
//! request's deadline and a caller-cancellable flag. The pipeline checks
//! it **between operators** (never mid-operator — operators are the unit
//! of useful work) and returns a partial, clearly-marked result instead
//! of burning model calls on an answer nobody is waiting for.
//!
//! This module also owns the **cancel scope**: a thread-local token the
//! model-call stack consults *inside* an operator. Two layers read it:
//!
//! - [`crate::resilient::ResilientModel`] slices its backoff sleeps and
//!   aborts the retry schedule as soon as the scope's token fires, so a
//!   hedge-lost or caller-cancelled request stops burning wall clock.
//! - [`crate::hedge::HedgedModel`] runs each copy of a hedged pair under
//!   its own scope and cancels the loser's token the moment a winner is
//!   chosen.
//!
//! The token lived in `genedit_core::cancel` until the hedging layer
//! needed it below the core crate in the dependency graph; `genedit_core`
//! still re-exports it, so `genedit_core::CancelToken` remains valid.

use genedit_telemetry::clock::Clock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation signal: an explicit flag plus an optional
/// deadline. Cloning shares the flag — cancelling any clone cancels all.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that never fires unless [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(deadline),
        }
    }

    /// Request cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token has fired — explicitly cancelled, or past its
    /// deadline.
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::SeqCst) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The deadline, when one was attached.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// Run `f` with `token` installed as the thread's current cancel scope.
///
/// Scopes nest: the innermost token wins, and the previous scope is
/// restored when `f` returns (including on unwind, via a drop guard).
/// Layers below the pipeline — retry backoff, hedged dispatch — consult
/// [`current`] so a request abandoned above them stops promptly without
/// every call-site having to thread a token parameter through.
pub fn with_current<T>(token: &CancelToken, f: impl FnOnce() -> T) -> T {
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            CURRENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    CURRENT.with(|stack| stack.borrow_mut().push(token.clone()));
    let _pop = Pop;
    f()
}

/// The innermost cancel scope installed on this thread, if any.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

/// Granularity at which [`sleep_cancellable`] re-checks its token. Small
/// enough that a hedge-lost request abandons a multi-second backoff in
/// milliseconds, large enough that slicing adds no measurable overhead.
const SLEEP_SLICE: Duration = Duration::from_millis(5);

/// Sleep `total` on `clock`, waking early if `token` fires.
///
/// Returns `true` if the full duration was slept, `false` if the sleep
/// was abandoned because the token was (or became) cancelled. Without a
/// token this is exactly `clock.sleep(total)`. The sleep is sliced into
/// 5 ms steps so the total simulated/real time is preserved
/// while cancellation latency stays bounded.
pub fn sleep_cancellable(clock: &dyn Clock, total: Duration, token: Option<&CancelToken>) -> bool {
    let Some(token) = token else {
        clock.sleep(total);
        return true;
    };
    let mut remaining = total;
    loop {
        if token.is_cancelled() {
            return false;
        }
        if remaining.is_zero() {
            return true;
        }
        let step = remaining.min(SLEEP_SLICE);
        clock.sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genedit_telemetry::clock::SimulatedClock;

    #[test]
    fn cancel_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn deadline_fires_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        far.cancel();
        assert!(far.is_cancelled());
    }

    #[test]
    fn scope_nests_and_restores() {
        assert!(current().is_none());
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        inner.cancel();
        with_current(&outer, || {
            assert!(!current().map(|t| t.is_cancelled()).unwrap_or(true));
            with_current(&inner, || {
                assert!(current().map(|t| t.is_cancelled()).unwrap_or(false));
            });
            // Inner scope popped: the outer (uncancelled) token is back.
            assert!(!current().map(|t| t.is_cancelled()).unwrap_or(true));
        });
        assert!(current().is_none());
    }

    #[test]
    fn scope_restores_on_unwind() {
        let token = CancelToken::new();
        let caught = std::panic::catch_unwind(|| {
            with_current(&token, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert!(current().is_none());
    }

    #[test]
    fn full_sleep_without_token_or_with_quiet_token() {
        let clock = SimulatedClock::new();
        assert!(sleep_cancellable(&clock, Duration::from_secs(30), None));
        let quiet = CancelToken::new();
        assert!(sleep_cancellable(
            &clock,
            Duration::from_secs(30),
            Some(&quiet)
        ));
        // Slicing preserves the total simulated duration.
        assert_eq!(clock.total_slept(), Duration::from_secs(60));
    }

    #[test]
    fn cancelled_token_skips_the_sleep() {
        let clock = SimulatedClock::new();
        let token = CancelToken::new();
        token.cancel();
        assert!(!sleep_cancellable(
            &clock,
            Duration::from_secs(30),
            Some(&token)
        ));
        assert_eq!(clock.total_slept(), Duration::ZERO);
    }
}
