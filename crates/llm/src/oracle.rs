//! The deterministic oracle model.
//!
//! ## The causal contract
//!
//! The oracle reproduces the *relative* behaviour of an LLM in a
//! Text-to-SQL pipeline, which is all the paper's evaluation measures:
//!
//! 1. **Enterprise terms** — if a task's domain term (QoQFP, RPV, "our")
//!    is not covered by the prompt's instructions/examples/evidence, the
//!    term's registered corruption is applied to the gold query
//!    (misinterpretation).
//! 2. **Schema grounding** — if a required table is missing from the
//!    linked schema, the model substitutes a plausible-but-wrong table;
//!    an *overloaded* schema section (no linking / poor filtering) causes
//!    column confusion with probability growing in context size × query
//!    complexity.
//! 3. **Bounded reasoning** — without a plan, queries whose complexity
//!    exceeds the model's capacity accumulate structural drift, and far
//!    over capacity the generation truncates (a syntactic error). A CoT
//!    plan removes the overflow; steps lacking pseudo-SQL keep a per-step
//!    drift chance (§3.1.2's argument, and the w/o-Pseudo-SQL ablation).
//! 4. **Self-correction** — corruptions that fail loudly (hallucinated
//!    names, truncation) are repaired on retry with high probability;
//!    silent wrong-answer corruptions persist, because the loop only sees
//!    errors (§2.1).
//!
//! All stochastic choices are FNV-hashed from (task id, site, attempt,
//! seed): the same run always produces the same results.

use crate::knowledge::{Corruption, TaskRegistry};
use crate::model::{CompletionRequest, CompletionResponse, LanguageModel, ModelError};
use crate::prompt::{Plan, PlanStep, Prompt, TaskKind};
use genedit_knowledge::{decompose, describe_fragment, FragmentKind};
use genedit_sql::analysis::complexity;
use genedit_sql::ast::Query;

/// Tunable parameters of the oracle's failure model.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Complexity units the model handles in one un-planned shot.
    pub capacity: u32,
    /// One structural drift per this many units of overflow.
    pub overflow_unit: u32,
    /// Probability an NL-only plan step drifts (divided by the method's
    /// reasoning effort).
    pub drift_probability: f64,
    /// Residual per-step drift even with pseudo-SQL: grounded steps can
    /// still be subtly wrong when the underlying knowledge is imprecise.
    pub pseudo_drift_probability: f64,
    /// Probability each overflow drift site actually fires when
    /// generating without a plan.
    pub overflow_drift_probability: f64,
    /// Fraction of tasks with benchmark "imprecision" (§3.3.1) — an
    /// unavoidable, method-independent drift applied identically for every
    /// method and attempt. This is why no method saturates BIRD.
    pub noise_rate: f64,
    /// Probability that a needed-but-unlinked column gets hallucinated.
    pub column_miss_penalty: f64,
    /// Upper bound on the overload confusion probability.
    pub overload_cap: f64,
    /// Probability that a non-canonical question (no reformulation
    /// operator in the pipeline) gets subtly misread. GenEdit's operator 1
    /// exists exactly to remove this class of failure (§2.1).
    pub canonical_form_penalty: f64,
    /// Probability a plan step without example support loses its
    /// pseudo-SQL at plan-generation time.
    pub omission_probability: f64,
    /// Probability a full-query (non-decomposed) example still supports a
    /// step.
    pub full_query_support: f64,
    /// Schema-section size above which context overload starts.
    pub overload_threshold: usize,
    /// Scale of overload confusion: p = excess/scale × complexity/20.
    pub overload_scale: f64,
    /// Schema size assumed when the prompt ships the full schema
    /// (baselines without linking leave the schema section empty and
    /// attach everything).
    pub full_schema_equivalent: usize,
    /// Probability a retry fixes a corruption whose error was reported.
    pub retry_fix_probability: f64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            capacity: 18,
            overflow_unit: 6,
            drift_probability: 0.08,
            pseudo_drift_probability: 0.035,
            overflow_drift_probability: 0.5,
            noise_rate: 0.2,
            omission_probability: 0.8,
            full_query_support: 0.25,
            overload_threshold: 12,
            overload_scale: 240.0,
            full_schema_equivalent: 200,
            column_miss_penalty: 0.65,
            overload_cap: 0.5,
            canonical_form_penalty: 0.2,
            retry_fix_probability: 0.9,
        }
    }
}

/// The oracle language model. See module docs for the failure model.
pub struct OracleModel {
    config: OracleConfig,
    registry: TaskRegistry,
}

impl OracleModel {
    /// Oracle with the default (calibrated) failure model.
    pub fn new(registry: TaskRegistry) -> OracleModel {
        OracleModel {
            config: OracleConfig::default(),
            registry,
        }
    }

    /// Oracle with an explicit failure-model configuration.
    pub fn with_config(registry: TaskRegistry, config: OracleConfig) -> OracleModel {
        OracleModel { config, registry }
    }

    /// The private task registry backing the oracle.
    pub fn registry(&self) -> &TaskRegistry {
        &self.registry
    }

    /// The failure-model configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    // ------------------------------------------------------------------
    // Operator implementations
    // ------------------------------------------------------------------

    fn reformulate(&self, question: &str) -> String {
        let trimmed = question.trim().trim_end_matches(['.', '?', '!']);
        let lower = trimmed.to_lowercase();
        if lower.starts_with("show me") {
            return trimmed.to_string();
        }
        // Strip a leading interrogative, then canonicalize to "Show me …"
        // (§2.1: "One example of changes to the query to conform to the
        // canonical format is to always begin with 'Show me …'").
        const PREFIXES: &[&str] = &[
            "identify", "list", "find", "give me", "what are", "what is", "which", "show",
            "display", "return", "tell me", "how many", "count",
        ];
        let mut rest = trimmed;
        let mut counting = false;
        for p in PREFIXES {
            if lower.starts_with(p) {
                counting = *p == "how many" || *p == "count";
                rest = trimmed[p.len()..].trim_start();
                break;
            }
        }
        if counting {
            format!("Show me the number of {rest}")
        } else {
            format!("Show me {rest}")
        }
    }

    fn classify_intent(&self, prompt: &Prompt) -> Vec<String> {
        let task = self.registry.lookup(&prompt.question);
        if let Some(t) = task {
            if prompt.intent_candidates.iter().any(|c| c == &t.intent) {
                return vec![t.intent.clone()];
            }
        }
        // Fall back to token overlap against candidate keys.
        let q_tokens: std::collections::BTreeSet<String> = prompt
            .question
            .split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(|t| t.to_lowercase())
            .collect();
        let mut best: Option<(usize, &String)> = None;
        for c in &prompt.intent_candidates {
            let overlap = c
                .split('_')
                .filter(|w| q_tokens.contains(&w.to_lowercase()))
                .count();
            if best.map(|(b, _)| overlap > b).unwrap_or(true) {
                best = Some((overlap, c));
            }
        }
        best.map(|(_, c)| vec![c.clone()]).unwrap_or_default()
    }

    fn link_schema(&self, prompt: &Prompt, seed: u64) -> Vec<String> {
        let task = match self.registry.lookup(&prompt.question) {
            Some(t) => t,
            None => return prompt.schema.iter().map(|s| s.key()).collect(),
        };
        let gold = task.gold_query();
        let needed_cols = genedit_sql::analysis::referenced_columns(&gold);
        let mut out = Vec::new();
        for el in &prompt.schema {
            let table_needed = task
                .required_tables
                .iter()
                .any(|t| t.eq_ignore_ascii_case(&el.table));
            let keep = if table_needed {
                match &el.column {
                    None => true,
                    Some(c) => {
                        if needed_cols.contains(&c.to_uppercase()) {
                            // Imperfect recall: occasionally misses a
                            // needed column (drives some linking failures).
                            hash01(&[&task.task_id, "recall", &el.key()], seed) >= 0.05
                        } else {
                            // Keep some same-table context columns.
                            hash01(&[&task.task_id, "ctx", &el.key()], seed) < 0.4
                        }
                    }
                }
            } else {
                // Distractors slip through with low probability.
                hash01(&[&task.task_id, "distract", &el.key()], seed) < 0.06
            };
            if keep {
                out.push(el.key());
            }
        }
        out
    }

    fn generate_plan(&self, prompt: &Prompt, seed: u64) -> Plan {
        let task = match self.registry.lookup(&prompt.question) {
            Some(t) => t,
            None => return Plan::default(),
        };
        let gold = task.gold_query();
        let fragments = decompose(&gold);
        let (supported_kinds, full_query_examples) = prompt.example_support();

        let mut steps = Vec::new();
        for (i, frag) in fragments.iter().enumerate() {
            // CTE-definition fragments duplicate their inner clauses;
            // represent each CTE by its clause steps instead, matching the
            // paper's step granularity.
            if frag.kind == FragmentKind::CteDefinition {
                steps.push(PlanStep {
                    description: format!("Build the intermediate result {} as a CTE.", frag.scope),
                    pseudo_sql: None,
                    scope: frag.scope.clone(),
                    kind: Some(FragmentKind::CteDefinition),
                });
                continue;
            }
            let supported = supported_kinds.contains(&frag.kind)
                || (full_query_examples
                    && hash01(&[&task.task_id, "fq", &i.to_string()], seed)
                        < self.config.full_query_support);
            // Omission pressure grows with plan size: short plans over
            // simple queries need no example grounding, long analytic
            // plans do (this keeps the w/o-Examples ablation focused on
            // the Challenging stratum, as in Table 2).
            let omission_p =
                self.config.omission_probability * (fragments.len() as f64 / 15.0).min(1.0).powi(2);
            let omit =
                !supported && hash01(&[&task.task_id, "omit", &i.to_string()], seed) < omission_p;
            steps.push(PlanStep {
                description: describe_fragment(frag, &task.question),
                pseudo_sql: if omit { None } else { Some(frag.sql.clone()) },
                scope: frag.scope.clone(),
                kind: Some(frag.kind),
            });
        }
        Plan { steps }
    }

    fn generate_sql(&self, prompt: &Prompt, seed: u64) -> String {
        let task = match self.registry.lookup(&prompt.question) {
            Some(t) => t,
            None => {
                // Unknown question: an honest model guesses from schema.
                let table = prompt
                    .schema
                    .first()
                    .map(|s| s.table.clone())
                    .unwrap_or_else(|| "UNKNOWN_TABLE".to_string());
                return format!("SELECT * FROM {table} LIMIT 10");
            }
        };
        let mut gold = task.gold_query();
        let attempt = prompt.attempt();
        let cscore = complexity(&gold).total();

        // --- 0. benchmark imprecision ----------------------------------
        // Method-, attempt-, and seed-independent: the same slice of tasks
        // is "imprecise" for everyone, as BIRD's noisy gold is in reality.
        // Imprecision grows with query complexity — BIRD's challenging
        // gold queries are the noisiest — which is why no method's
        // Challenging column approaches its Simple column (Table 1).
        let noise_p = (self.config.noise_rate * (1.0 + cscore as f64 / 40.0)).min(0.5);
        if hash01(&[&task.task_id, "benchmark-noise"], 0) < noise_p {
            apply_drift(&mut gold, hash_u64(&[&task.task_id, "noise-site"], 0));
        }

        // --- 0b. canonical-form misreading ------------------------------
        // Pipelines that skip query reformulation occasionally misread
        // non-canonical phrasing; deterministic per task so retries don't
        // clear it (the misreading persists).
        let canonical_p = self.config.canonical_form_penalty / prompt.reasoning_effort.max(0.1);
        if !prompt
            .question
            .to_lowercase()
            .trim_start()
            .starts_with("show me")
            && hash01(&[&task.task_id, "canonical"], 0) < canonical_p
        {
            apply_drift(&mut gold, hash_u64(&[&task.task_id, "canonical-site"], 0));
        }

        // --- 1. enterprise-term requirements ---------------------------
        let covered = prompt.covered_terms();
        let mut corruptions: Vec<Corruption> = Vec::new();
        for req in &task.required_terms {
            if !covered.contains(&req.term.to_uppercase()) {
                corruptions.push(req.corruption.clone());
            }
        }

        // --- 2. schema grounding ---------------------------------------
        let full_visibility = prompt.schema.is_empty();
        if !full_visibility {
            let tables = prompt.schema_tables();
            for t in &task.required_tables {
                if !tables.contains(&t.to_uppercase()) {
                    let to = task
                        .distractor_table
                        .clone()
                        .unwrap_or_else(|| format!("{t}_DETAILS"));
                    corruptions.push(Corruption::RenameTable {
                        from: t.clone(),
                        to,
                    });
                }
            }
            // Needed columns missing from the linked schema are sometimes
            // hallucinated (a loud, retry-fixable failure).
            let linked_cols: std::collections::BTreeSet<String> = prompt
                .schema
                .iter()
                .filter_map(|el| el.column.as_ref().map(|c| c.to_uppercase()))
                .collect();
            for col in &task.required_columns {
                if !linked_cols.contains(&col.to_uppercase())
                    && hash01(&[&task.task_id, "colmiss", col], seed)
                        < self.config.column_miss_penalty
                {
                    corruptions.push(Corruption::RenameColumn {
                        from: col.clone(),
                        to: format!("{}_ADJ", col.to_uppercase()),
                    });
                }
            }
        }
        let schema_size = if full_visibility {
            self.config.full_schema_equivalent
        } else {
            prompt.schema.len()
        };
        let excess = schema_size.saturating_sub(self.config.overload_threshold);
        if excess > 0 {
            // Confusion grows with context size and quadratically with
            // query complexity: a dumped schema barely hurts single-table
            // lookups but wrecks multi-CTE analytics (Table 2's
            // w/o-Schema-Linking row keeps Simple and halves Challenging).
            let p = ((excess as f64 / self.config.overload_scale) * (cscore as f64 / 25.0).powi(2))
                .min(self.config.overload_cap);
            // Context overload causes *silent* misreads (a dropped filter,
            // a wrong constant) — the model happily produces valid SQL
            // answering a slightly different question, so self-correction
            // cannot see it. (Attempt-independent for the same reason.)
            if hash01(&[&task.task_id, "overload"], seed) < p {
                apply_drift(&mut gold, hash_u64(&[&task.task_id, "overload-site"], seed));
            }
        }

        // --- 3. bounded reasoning --------------------------------------
        let mut truncate = false;
        let effort = prompt.reasoning_effort.max(0.1);
        match &prompt.plan {
            Some(plan) if !plan.is_empty() => {
                for (i, step) in plan.steps.iter().enumerate() {
                    let needs_pseudo =
                        !matches!(step.kind, Some(FragmentKind::CteDefinition) | None);
                    if !needs_pseudo {
                        continue;
                    }
                    // NL-only steps drift at a rate that compounds with
                    // plan length (describing many steps in prose strains
                    // consistency); pseudo-SQL-grounded steps keep only a
                    // small flat residual — grounding is what makes long
                    // plans workable (§3.1.2).
                    // Both channels scale inversely with the model tier's
                    // effective effort: a weaker generation model drifts
                    // more even on grounded steps.
                    let p = if step.pseudo_sql.is_none() {
                        self.config.drift_probability * (plan.steps.len() as f64 / 10.0) / effort
                    } else {
                        self.config.pseudo_drift_probability / effort
                    };
                    if hash01(
                        &[&task.task_id, "drift", &i.to_string(), &attempt.to_string()],
                        seed,
                    ) < p
                    {
                        apply_drift(
                            &mut gold,
                            hash_u64(&[&task.task_id, "driftsite", &i.to_string()], seed),
                        );
                    }
                }
            }
            _ => {
                let effective_capacity = (self.config.capacity as f64 * effort) as u32;
                let overflow = cscore.saturating_sub(effective_capacity);
                let n = overflow / self.config.overflow_unit.max(1);
                for k in 0..n {
                    let fires = hash01(
                        &[
                            &task.task_id,
                            "overflow-p",
                            &k.to_string(),
                            &attempt.to_string(),
                        ],
                        seed,
                    ) < self.config.overflow_drift_probability;
                    if fires {
                        apply_drift(
                            &mut gold,
                            hash_u64(
                                &[
                                    &task.task_id,
                                    "overflow",
                                    &k.to_string(),
                                    &attempt.to_string(),
                                ],
                                seed,
                            ),
                        );
                    }
                }
                if overflow > effective_capacity && attempt == 0 {
                    truncate = true;
                }
            }
        }

        // --- 4. self-correction ----------------------------------------
        if attempt > 0 {
            let errors_text = prompt.errors.join(" ").to_uppercase();
            corruptions.retain(|c| match c.error_marker() {
                Some(marker) if errors_text.contains(&marker.to_uppercase()) => {
                    // The error named the hallucinated identifier; the
                    // model usually repairs it.
                    hash01(&[&task.task_id, "fix", marker, &attempt.to_string()], seed)
                        >= self.config.retry_fix_probability
                }
                _ => true,
            });
        }

        for c in &corruptions {
            c.apply(&mut gold);
        }

        let sql = gold.to_string();
        if truncate {
            crate::mutate::truncate_sql(&sql, 0.62)
        } else {
            sql
        }
    }
}

impl LanguageModel for OracleModel {
    fn name(&self) -> &str {
        "oracle"
    }

    fn complete(&self, request: &CompletionRequest) -> Result<CompletionResponse, ModelError> {
        let prompt = &request.prompt;
        Ok(match prompt.task {
            TaskKind::Reformulate => CompletionResponse::Text(self.reformulate(&prompt.question)),
            TaskKind::IntentClassification => {
                CompletionResponse::Items(self.classify_intent(prompt))
            }
            TaskKind::SchemaLinking => {
                CompletionResponse::Items(self.link_schema(prompt, request.seed))
            }
            TaskKind::PlanGeneration => {
                CompletionResponse::Plan(self.generate_plan(prompt, request.seed))
            }
            TaskKind::SqlGeneration => {
                CompletionResponse::Sql(self.generate_sql(prompt, request.seed))
            }
        })
    }
}

/// Apply one structural drift corruption chosen by `salt` from the
/// corruptions applicable to this query. Returns true when something
/// changed.
pub fn apply_drift(gold: &mut Query, salt: u64) -> bool {
    let rendered = gold.to_string();
    let mut candidates: Vec<Corruption> = Vec::new();

    for frag in decompose(gold) {
        if frag.kind == FragmentKind::Where {
            let marker = frag.sql.trim_start_matches("WHERE ").to_string();
            // Skip `IN (…)` prefilters: in the pivot-style queries of this
            // workload they are redundant with CASE conditions, so
            // dropping them would be a semantic no-op (an unobservable
            // corruption).
            if marker.to_uppercase().contains(" IN (") {
                continue;
            }
            candidates.push(Corruption::DropWhereConjunct { marker });
        }
    }
    // Only swaps that change results: COUNT(*)→SUM(*) would be a no-op
    // (SUM over the all-ones stream), so COUNT stays out of this list.
    for (from, to) in [
        ("SUM", "AVG"),
        ("AVG", "MAX"),
        ("MIN", "MAX"),
        ("MAX", "MIN"),
    ] {
        if rendered.contains(&format!("{from}(")) {
            candidates.push(Corruption::SwapAggregate {
                from: from.into(),
                to: to.into(),
            });
        }
    }
    // Order flips only matter to EX when ordering selects rows (LIMIT) or
    // feeds a window; otherwise the row multiset is unchanged.
    if rendered.contains("ORDER BY") && (rendered.contains("LIMIT") || rendered.contains("OVER ("))
    {
        candidates.push(Corruption::FlipOrderDirections);
    }
    if rendered.contains("-1 *") || rendered.contains("* -1") {
        candidates.push(Corruption::StripNegOneMultiplier);
    }
    if let Some(lit) = first_string_literal(&rendered) {
        candidates.push(Corruption::ReplaceStringLiteral {
            from: lit.clone(),
            to: format!("{lit}?"),
        });
    }

    if candidates.is_empty() {
        return false;
    }
    let pick = (salt % candidates.len() as u64) as usize;
    candidates[pick].apply(gold) > 0
}

fn first_string_literal(sql: &str) -> Option<String> {
    let start = sql.find('\'')?;
    let rest = &sql[start + 1..];
    let end = rest.find('\'')?;
    let lit = &rest[..end];
    if lit.is_empty() {
        None
    } else {
        Some(lit.to_string())
    }
}

/// Deterministic hash → [0, 1).
pub fn hash01(parts: &[&str], seed: u64) -> f64 {
    (hash_u64(parts, seed) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic FNV-1a over the parts and seed, finished with a
/// splitmix64 mixer (raw FNV's high bits avalanche poorly, which would
/// bias every probability threshold in the oracle).
pub fn hash_u64(parts: &[&str], seed: u64) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325 ^ seed.wrapping_mul(0x9e3779b97f4a7c15);
    for p in parts {
        for &b in p.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer
    hash = hash.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = hash;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::{Difficulty, TaskKnowledge, TermRequirement};
    use crate::prompt::{PromptInstruction, PromptSchemaElement};

    fn sample_task() -> TaskKnowledge {
        TaskKnowledge {
            task_id: "fin-1".into(),
            question: "Identify our 5 sports organisations with the best QoQFP in Canada".into(),
            db_name: "sports".into(),
            gold_sql: "SELECT ORG_NAME, SUM(REVENUE) AS R FROM SPORTS_FINANCIALS \
                       WHERE COUNTRY = 'Canada' AND OWNERSHIP_FLAG = 'COC' \
                       GROUP BY ORG_NAME ORDER BY R DESC LIMIT 5"
                .into(),
            intent: "financial_performance".into(),
            difficulty: Difficulty::Moderate,
            required_terms: vec![TermRequirement {
                term: "QoQFP".into(),
                corruption: Corruption::DropWhereConjunct {
                    marker: "OWNERSHIP_FLAG".into(),
                },
            }],
            required_tables: vec!["SPORTS_FINANCIALS".into()],
            required_columns: vec!["ORG_NAME".into(), "REVENUE".into()],
            evidence: vec![],
            distractor_table: Some("SPORTS_ROSTER".into()),
            distractor_column: Some(("REVENUE".into(), "INCOME_TOTAL".into())),
        }
    }

    fn oracle() -> OracleModel {
        let mut reg = TaskRegistry::new();
        reg.register(sample_task());
        // Tests assert gold fidelity, so the benchmark-noise floor is off.
        let config = OracleConfig {
            noise_rate: 0.0,
            ..OracleConfig::default()
        };
        OracleModel::with_config(reg, config)
    }

    fn schema_elements() -> Vec<PromptSchemaElement> {
        ["ORG_NAME", "REVENUE", "COUNTRY", "OWNERSHIP_FLAG"]
            .iter()
            .map(|c| PromptSchemaElement {
                table: "SPORTS_FINANCIALS".into(),
                column: Some((*c).to_string()),
                description: String::new(),
                top_values: vec![],
            })
            .chain(std::iter::once(PromptSchemaElement {
                table: "SPORTS_FINANCIALS".into(),
                column: None,
                description: String::new(),
                top_values: vec![],
            }))
            .collect()
    }

    fn qoqfp_instruction() -> PromptInstruction {
        PromptInstruction {
            text: "QoQFP means quarter-over-quarter financial performance of our (COC) orgs".into(),
            sql_hint: Some("OWNERSHIP_FLAG = 'COC'".into()),
            term: Some("QoQFP".into()),
        }
    }

    #[test]
    fn reformulation_is_canonical() {
        let o = oracle();
        assert_eq!(
            o.reformulate("Identify our 5 best organisations"),
            "Show me our 5 best organisations"
        );
        assert_eq!(o.reformulate("Show me the revenue"), "Show me the revenue");
        assert_eq!(
            o.reformulate("How many organisations are in Canada?"),
            "Show me the number of organisations are in Canada"
        );
    }

    #[test]
    fn with_term_knowledge_generation_is_gold() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::SqlGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.schema = schema_elements();
        p.instructions.push(qoqfp_instruction());
        let sql = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_sql()
            .unwrap()
            .to_string();
        assert!(sql.contains("OWNERSHIP_FLAG = 'COC'"), "{sql}");
    }

    #[test]
    fn without_term_knowledge_corruption_applies() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::SqlGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.schema = schema_elements();
        // No instruction covering QoQFP.
        let sql = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_sql()
            .unwrap()
            .to_string();
        assert!(!sql.contains("OWNERSHIP_FLAG"), "{sql}");
    }

    #[test]
    fn evidence_also_covers_terms() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::SqlGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.schema = schema_elements();
        p.evidence
            .push("QoQFP is computed over COC organizations only".into());
        let sql = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_sql()
            .unwrap()
            .to_string();
        assert!(sql.contains("OWNERSHIP_FLAG"), "{sql}");
    }

    #[test]
    fn missing_table_in_schema_causes_wrong_table() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::SqlGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.instructions.push(qoqfp_instruction());
        p.schema = vec![PromptSchemaElement {
            table: "SPORTS_ROSTER".into(),
            column: None,
            description: String::new(),
            top_values: vec![],
        }];
        let sql = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_sql()
            .unwrap()
            .to_string();
        assert!(sql.contains("SPORTS_ROSTER"), "{sql}");
    }

    #[test]
    fn determinism() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::SqlGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.schema = schema_elements();
        let a = o.complete(&CompletionRequest::new(p.clone()));
        let b = o.complete(&CompletionRequest::new(p));
        assert_eq!(a, b);
    }

    #[test]
    fn plan_steps_cover_gold_fragments() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::PlanGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        // Full decomposed example support: every step keeps pseudo-SQL.
        for kind in [
            FragmentKind::Projection,
            FragmentKind::From,
            FragmentKind::Where,
            FragmentKind::GroupBy,
            FragmentKind::OrderBy,
            FragmentKind::Limit,
        ] {
            p.examples.push(crate::prompt::PromptExample {
                description: format!("{kind} example"),
                sql: "X".into(),
                kind: Some(kind),
                term: None,
            });
        }
        let plan = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_plan()
            .unwrap()
            .clone();
        assert!(plan.len() >= 5);
        let with_pseudo = plan.steps.iter().filter(|s| s.pseudo_sql.is_some()).count();
        assert_eq!(with_pseudo, plan.len(), "{plan:?}");
        assert!(plan.steps.iter().any(|s| s
            .pseudo_sql
            .as_deref()
            .map(|x| x.contains("FROM SPORTS_FINANCIALS"))
            .unwrap_or(false)));
    }

    #[test]
    fn plan_without_examples_loses_some_pseudo_sql() {
        // Omission pressure scales with plan length; with certain omission
        // and a long plan, every groundable step must lose its pseudo-SQL.
        let mut task = sample_task();
        task.gold_sql = "WITH A AS (SELECT ORG_NAME, SUM(REVENUE) AS R FROM SPORTS_FINANCIALS \
             WHERE COUNTRY = 'Canada' AND OWNERSHIP_FLAG = 'COC' GROUP BY ORG_NAME \
             HAVING SUM(REVENUE) > 0), \
             B AS (SELECT ORG_NAME, R, ROW_NUMBER() OVER (ORDER BY R DESC) AS RNK FROM A \
             WHERE R > 1), \
             C AS (SELECT ORG_NAME, R FROM B WHERE RNK <= 10 AND R < 100000) \
             SELECT ORG_NAME, R FROM C WHERE R > 2 ORDER BY R DESC LIMIT 5"
            .into();
        let mut reg = TaskRegistry::new();
        reg.register(task);
        let o = OracleModel::with_config(
            reg,
            OracleConfig {
                omission_probability: 1.0,
                ..OracleConfig::default()
            },
        );
        let p = Prompt::new(
            TaskKind::PlanGeneration,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        let plan = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_plan()
            .unwrap()
            .clone();
        assert!(plan.len() >= 15, "expected a long plan, got {}", plan.len());
        let groundable = plan
            .steps
            .iter()
            .filter(|s| !matches!(s.kind, Some(FragmentKind::CteDefinition) | None));
        for step in groundable {
            assert!(step.pseudo_sql.is_none(), "step kept pseudo: {step:?}");
        }
    }

    #[test]
    fn intent_classification_picks_registered_intent() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::IntentClassification,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.intent_candidates = vec!["tv_viewership".into(), "financial_performance".into()];
        let items = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_items()
            .unwrap()
            .to_vec();
        assert_eq!(items, vec!["financial_performance"]);
    }

    #[test]
    fn schema_linking_keeps_needed_columns() {
        let o = oracle();
        let mut p = Prompt::new(
            TaskKind::SchemaLinking,
            "Show me our 5 sports organisations with the best QoQFP in Canada",
        );
        p.schema = schema_elements();
        p.schema.push(PromptSchemaElement {
            table: "SPORTS_ROSTER".into(),
            column: Some("PLAYER".into()),
            description: String::new(),
            top_values: vec![],
        });
        let items = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_items()
            .unwrap()
            .to_vec();
        assert!(items.iter().any(|k| k == "SPORTS_FINANCIALS.ORG_NAME"));
        assert!(items.iter().any(|k| k == "SPORTS_FINANCIALS"));
        // The roster distractor is (almost always) filtered.
        assert!(
            items
                .iter()
                .filter(|k| k.starts_with("SPORTS_ROSTER"))
                .count()
                <= 1
        );
    }

    #[test]
    fn unknown_question_degrades_gracefully() {
        let o = oracle();
        let mut p = Prompt::new(TaskKind::SqlGeneration, "question about penguins entirely");
        p.schema = schema_elements();
        let sql = o
            .complete(&CompletionRequest::new(p))
            .unwrap()
            .as_sql()
            .unwrap()
            .to_string();
        assert!(sql.contains("LIMIT 10"));
    }

    #[test]
    fn drift_changes_query() {
        let task = sample_task();
        let mut q = task.gold_query();
        let before = q.to_string();
        let changed = apply_drift(&mut q, 1);
        assert!(changed);
        assert_ne!(before, q.to_string());
    }

    #[test]
    fn hash01_in_unit_interval_and_deterministic() {
        for i in 0..100u64 {
            let v = hash01(&["a", "b"], i);
            assert!((0.0..1.0).contains(&v));
        }
        assert_eq!(hash01(&["x"], 5), hash01(&["x"], 5));
        assert_ne!(hash01(&["x"], 5), hash01(&["x"], 6));
    }
}
